//! A taco-style command-line code generator: parse an index notation
//! expression, schedule it, and print the concrete index notation and
//! generated C kernel.
//!
//! ```text
//! cargo run --bin taco -- "A(i,j) = B(i,k) * C(k,j)" -f A:ds -f B:ds -f C:ds \
//!     -reorder k,j -precompute "B(i,k) * C(k,j)":j:w
//! ```
//!
//! Options (taco CLI inspired):
//!
//! ```text
//!   -f TENSOR:MODES      per-mode format, `d` dense / `s` compressed
//!                        (e.g. `ds` = CSR, `sss` = CSF); default all-dense
//!   -d N                 dimension of every index variable (default 16)
//!   -reorder A,B         exchange two index variables
//!   -precompute EXPR:VAR:WS
//!                        apply the workspace transformation to EXPR over
//!                        VAR, storing into a dense workspace WS
//!   -kind KIND           compute | assemble | fused (default: fused for
//!                        sparse results, compute otherwise)
//!   -print-suggestions   run the Section V-C heuristics and print them
//! ```

use std::process::ExitCode;
use taco_core::parse::{parse_assignment, Declarations};
use taco_core::IndexStmt;
use taco_ir::expr::{IndexVar, TensorVar};
use taco_lower::{KernelKind, LowerOptions};
use taco_tensor::{Format, ModeFormat};

struct Args {
    expr: String,
    formats: Vec<(String, String)>,
    dim: usize,
    reorders: Vec<(String, String)>,
    precomputes: Vec<(String, String, String)>,
    kind: Option<String>,
    suggestions: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        expr: String::new(),
        formats: Vec::new(),
        dim: 16,
        reorders: Vec::new(),
        precomputes: Vec::new(),
        kind: None,
        suggestions: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-f" => {
                let v = it.next().ok_or("missing value after -f")?;
                let (t, m) = v.split_once(':').ok_or("expected -f tensor:modes")?;
                out.formats.push((t.to_string(), m.to_string()));
            }
            "-d" => {
                out.dim = it
                    .next()
                    .ok_or("missing value after -d")?
                    .parse()
                    .map_err(|_| "invalid -d value")?;
            }
            "-reorder" => {
                let v = it.next().ok_or("missing value after -reorder")?;
                let (x, y) = v.split_once(',').ok_or("expected -reorder a,b")?;
                out.reorders.push((x.to_string(), y.to_string()));
            }
            "-precompute" => {
                let v = it.next().ok_or("missing value after -precompute")?;
                let parts: Vec<&str> = v.rsplitn(3, ':').collect();
                if parts.len() != 3 {
                    return Err("expected -precompute expr:var:workspace".to_string());
                }
                out.precomputes.push((
                    parts[2].to_string(),
                    parts[1].to_string(),
                    parts[0].to_string(),
                ));
            }
            "-kind" => out.kind = Some(it.next().ok_or("missing value after -kind")?),
            "-print-suggestions" => out.suggestions = true,
            other if out.expr.is_empty() && !other.starts_with('-') => {
                out.expr = other.to_string();
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if out.expr.is_empty() {
        return Err("usage: taco \"A(i,j) = B(i,k) * C(k,j)\" [-f T:modes] [-d N] ...".into());
    }
    Ok(out)
}

fn run(args: &Args) -> Result<(), String> {
    let mut decls = Declarations::with_default_dim(args.dim);
    for (t, m) in &args.formats {
        decls = decls.format_str(t, m).map_err(|e| e.to_string())?;
    }
    let assignment = parse_assignment(&args.expr, &decls).map_err(|e| e.to_string())?;
    println!("index notation:    {assignment}");

    let mut stmt = IndexStmt::new(assignment.clone()).map_err(|e| e.to_string())?;
    println!("concretized:       {stmt}");

    for (a, b) in &args.reorders {
        stmt.reorder(&IndexVar::new(a), &IndexVar::new(b)).map_err(|e| e.to_string())?;
        println!("after reorder:     {stmt}");
    }
    for (expr_str, var, ws_name) in &args.precomputes {
        let sub = parse_assignment(&format!("__t({var}) = {expr_str}"), &decls)
            .map_err(|e| format!("in -precompute expression: {e}"))?;
        // Strip the implicit sums the helper parse added.
        let mut target = sub.rhs().clone();
        while let taco_ir::expr::IndexExpr::Sum(_, inner) = target {
            target = *inner;
        }
        let v = IndexVar::new(var);
        let ws = TensorVar::new(
            ws_name.clone(),
            vec![args.dim],
            Format::new(vec![ModeFormat::Dense]),
        );
        stmt.precompute(&target, &[(v.clone(), v.clone(), v.clone())], &ws)
            .map_err(|e| e.to_string())?;
        println!("after precompute:  {stmt}");
    }

    if args.suggestions {
        let s = stmt.suggestions();
        if s.is_empty() {
            println!("\nno heuristic suggestions (Section V-C)");
        } else {
            println!("\nheuristic suggestions (Section V-C):");
            for sg in s {
                println!("  [{:?}] {}", sg.reason, sg.description);
            }
        }
    }

    let sparse_result = assignment.lhs().tensor().format().has_compressed();
    let kind = match args.kind.as_deref() {
        Some("compute") => KernelKind::Compute,
        Some("assemble") => KernelKind::Assemble,
        Some("fused") => KernelKind::Fused,
        Some(other) => return Err(format!("unknown -kind `{other}`")),
        None if sparse_result => KernelKind::Fused,
        None => KernelKind::Compute,
    };
    let opts = LowerOptions { kind, ..LowerOptions::compute("kernel") };
    let kernel = stmt.compile(opts).map_err(|e| e.to_string())?;
    println!("\ngenerated kernel ({kind:?}):\n{}", kernel.to_c());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
