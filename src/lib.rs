//! # taco-workspaces
//!
//! A from-scratch Rust reproduction of **“Tensor Algebra Compilation with
//! Workspaces”** (Kjolstad, Ahrens, Kamil, Amarasinghe — CGO 2019): a sparse
//! tensor algebra compiler extended with *concrete index notation* and the
//! *workspace transformation*.
//!
//! The facade re-exports the whole stack:
//!
//! | Crate | Paper section | Contents |
//! |-------|---------------|----------|
//! | [`tensor`] | §II | per-level Dense/Compressed storage (CSR/DCSR/CSF), builders, generators, Table I stand-ins |
//! | [`ir`] | §III–V | index notation, concrete index notation, `reorder`, `precompute` (the workspace transformation), result reuse, policy heuristics |
//! | [`lower`] | §VI | merge lattices and lowering to imperative IR; compute / assemble / fused kernels |
//! | [`llir`] | §VI, Fig. 6 | the C-like imperative IR, pretty printer and slot-resolved executor |
//! | [`core`] | §III, §VI | the `IndexStmt` scheduling API, compilation pipeline, execution, dense oracle |
//! | [`verify`] | §VI | static verifier over the imperative IR: definite initialization, symbolic bounds, parallel write-set races (DESIGN.md §12) |
//! | [`native`] | §VI | native codegen backend: compiles the emitted C with the system toolchain into a content-addressed `.so` cache and runs kernels through a stable `extern "C"` ABI (DESIGN.md §15) |
//! | [`kernels`] | §VII–VIII | hand-written baselines (Eigen/MKL/SPLATT stand-ins) and generated-equivalent kernels |
//! | [`runtime`] | §V-C, §VII | the serving layer: concurrent compiled-kernel cache (fingerprint-keyed, single-flight) and the measurement-driven schedule autotuner |
//! | [`serve`] | §VII | multi-tenant serving daemon over the engine: bounded admission, tenant quotas, EDF deadline scheduling, overload shedding, graceful drain (DESIGN.md §14) |
//!
//! ## Quickstart
//!
//! ```
//! use taco_workspaces::prelude::*;
//!
//! // A(i,j) = sum(k, B(i,k) * C(k,j)) with every matrix CSR (Figure 2).
//! let n = 8;
//! let a = TensorVar::new("A", vec![n, n], Format::csr());
//! let b = TensorVar::new("B", vec![n, n], Format::csr());
//! let c = TensorVar::new("C", vec![n, n], Format::csr());
//! let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
//!
//! let mul = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
//! let mut stmt = IndexStmt::new(IndexAssignment::assign(
//!     a.access([i.clone(), j.clone()]),
//!     sum(k.clone(), mul.clone()),
//! ))?;
//!
//! // Schedule: reorder to linear combinations of rows, then precompute the
//! // multiplication into a dense row workspace (the workspace
//! // transformation of Section V).
//! stmt.reorder(&k, &j)?;
//! let w = TensorVar::new("w", vec![n], Format::dvec());
//! stmt.precompute(&mul, &[(j.clone(), j.clone(), j.clone())], &w)?;
//!
//! let kernel = stmt.compile(LowerOptions::fused("spgemm"))?;
//! println!("{}", kernel.to_c()); // the kernel of Figures 1d + 8
//! # Ok::<(), taco_workspaces::core::CoreError>(())
//! ```

pub use taco_core as core;
pub use taco_ir as ir;
pub use taco_kernels as kernels;
pub use taco_llir as llir;
pub use taco_lower as lower;
pub use taco_native as native;
pub use taco_runtime as runtime;
pub use taco_serve as serve;
pub use taco_tensor as tensor;
pub use taco_verify as verify;

/// Commonly used items, for `use taco_workspaces::prelude::*`.
pub mod prelude {
    pub use taco_core::{
        analyze_cost, binding_env, stmt_workspaces, Aborted, AbortReason, Bound, BudgetResource,
        CancelToken, CompiledKernel, CoreError, CostEnv, CostReport, DegradeRung, ExecReport,
        FallbackEvent, IndexStmt, Progress, ResourceBudget, SupervisedOutcome, Supervisor,
        VerifyMode, VerifyReport,
    };
    pub use taco_ir::concrete::{AssignOp, ConcreteStmt};
    pub use taco_ir::expr::{sum, IndexExpr, IndexVar, TensorVar};
    pub use taco_ir::notation::IndexAssignment;
    pub use taco_llir::WorkspaceKind;
    pub use taco_lower::{KernelKind, LowerOptions};
    pub use taco_runtime::{
        Backend, CacheStats, Engine, EngineConfig, EngineError, EngineEvent, NativeStats, TuneKey,
    };
    pub use taco_serve::{
        Outcome, Priority, Rejected, Request, Server, ServerStats, TenantPolicy, Ticket,
    };
    pub use taco_tensor::{Csf3, Csr, DenseTensor, Format, LevelType, ModeFormat, Tensor};
}
