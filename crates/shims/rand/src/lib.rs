//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so external
//! crates cannot be fetched. This shim implements exactly the subset of the
//! `rand` 0.8 API the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`] and [`Rng::gen_range`] — backed by SplitMix64. Streams are
//! deterministic in the seed (the workspace's own requirement) but do **not**
//! match upstream `rand`'s output bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from the standard distribution (stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64: u64, i32: u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator: SplitMix64 (Steele, Lea & Flood 2014).
    ///
    /// Upstream `StdRng` is ChaCha-based; this shim favors a tiny, allocation-
    /// free generator since nothing here is cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Alias of [`StdRng`]; upstream's `SmallRng` is a distinct fast generator
    /// but the deterministic contract is the same.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.gen_range(5usize..5);
    }
}
