//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment for this workspace has no network access, so external
//! crates cannot be fetched. This shim keeps the workspace's `harness = false`
//! benches compiling and running: it implements [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros with a plain wall-clock
//! measurement loop (median of `sample_size` samples, printed to stdout). No
//! statistical analysis, plots, or baseline comparison.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter tag.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's timing loop.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Median time per iteration from the last [`Bencher::iter`] call.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();

        // Split the measurement budget into `sample_size` samples.
        let per_sample = self.measurement_time.checked_div(self.sample_size as u32).unwrap_or_default();
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u32
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample);
        }
        samples.sort();
        self.measured = Some(samples[samples.len() / 2]);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I: Display, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            measured: None,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), bencher.measured);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: Display, T: ?Sized, R: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Finishes the group (upstream writes reports here; the shim prints as it
    /// goes, so this is a no-op consuming the group).
    pub fn finish(self) {}

    fn report(&self, id: &str, measured: Option<Duration>) {
        match measured {
            Some(t) => println!("{}/{:<40} time: [{:>12.3?}]", self.name, id, t),
            None => println!("{}/{:<40} time: [not measured]", self.name, id),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        self.benchmark_group(id).bench_function("bench", routine);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("busy_loop", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("kernel", 42).to_string(), "kernel/42");
    }
}
