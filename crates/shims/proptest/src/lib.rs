//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no network access, so external
//! crates cannot be fetched. This shim implements the subset of the proptest
//! 1.x API the workspace's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` line, numeric range strategies
//! (`1usize..24`, `0.0f64..0.5`, ...), [`prop_assert!`] and
//! [`prop_assert_eq!`]. Case generation is deterministic: each test derives a
//! seed from its own name, so failures reproduce exactly across runs. There is
//! no shrinking — a failing case reports the sampled arguments instead.

use std::fmt::Write as _;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of sampled values for one property (subset of
/// `proptest::test_runner::TestRunner`).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    state: u64,
}

impl TestRunner {
    /// Creates a runner whose stream is deterministic in `name`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the property name: stable across runs and platforms.
        let mut seed = 0xCBF29CE484222325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001B3);
        }
        TestRunner { config, state: seed }
    }

    /// Number of cases this runner generates.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Samples one value from `strategy`.
    pub fn sample<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.new_value(self)
    }
}

/// Value-generation strategy (heavily reduced from `proptest::strategy`).
pub trait Strategy {
    type Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (runner.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return runner.next_u64() as $t;
                }
                lo + (runner.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (runner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Constant strategy (stand-in for `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Formats one sampled argument for the failure report.
pub fn format_arg(out: &mut String, name: &str, value: &dyn std::fmt::Debug) {
    let _ = write!(out, "\n    {name} = {value:?}");
}

/// Defines property tests (reduced form of `proptest::proptest!`).
///
/// Each property becomes a normal `#[test]` that loops over `cases`
/// deterministic samples of its argument strategies. The body runs in a
/// closure returning `Result<(), String>`, which is what lets
/// [`prop_assert!`]/[`prop_assert_eq!`] report failures with the sampled
/// arguments attached.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = runner.sample(&($strategy));)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(message) = outcome {
                    let mut report = ::std::string::String::new();
                    $($crate::format_arg(&mut report, stringify!($arg), &$arg);)+
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  sampled arguments:{}",
                        stringify!($name), case + 1, runner.cases(), message, report,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not the
/// process) so the harness can attach the sampled arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), left, right,
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n    both: {:?}",
                stringify!($left), stringify!($right), left,
            ));
        }
    }};
}

/// Everything a property-test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        format_arg, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(a in 1usize..24, b in 0.0f64..0.5, s in 0u64..1000) {
            prop_assert!((1..24).contains(&a));
            prop_assert!((0.0..0.5).contains(&b));
            prop_assert!(s < 1000);
        }

        #[test]
        fn eq_assertion_passes(n in 1usize..10) {
            prop_assert_eq!(n + n, 2 * n);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let cfg = ProptestConfig::with_cases(4);
        let mut a = TestRunner::new(cfg.clone(), "some_property");
        let mut b = TestRunner::new(cfg, "some_property");
        for _ in 0..16 {
            assert_eq!(a.sample(&(0usize..1000)), b.sample(&(0usize..1000)));
        }
    }

    #[test]
    fn failure_reports_arguments() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(2))]
                #[test]
                fn always_fails(v in 0usize..10) {
                    prop_assert!(v > 100, "v was {}", v);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("always_fails"), "report names the property: {msg}");
        assert!(msg.contains("v ="), "report includes sampled arguments: {msg}");
    }
}
