use std::error::Error;
use std::fmt;

/// Errors produced while lowering concrete index notation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LowerError {
    /// A forall variable does not index any tensor, so its range cannot be
    /// inferred.
    NoRangeForVar(String),
    /// An access requires random access (locate) into a compressed level,
    /// which compressed formats do not support — reorder or precompute into
    /// a workspace first (the motivation of Section V).
    CannotLocateSparse {
        /// Tensor name.
        tensor: String,
        /// Level that would have to be randomly accessed.
        level: usize,
    },
    /// The result tensor has a compressed level that is not supported in
    /// this position (compressed result levels must be innermost, under
    /// dense levels).
    UnsupportedResultFormat(String),
    /// A union (addition) over a dense operand at a coiterated variable is
    /// not supported by this lowerer.
    DenseUnionUnsupported(String),
    /// The same tensor is accessed twice with different index variables in
    /// one kernel, which the position-naming scheme does not support.
    DuplicateTensorAccess(String),
    /// The statement shape is not supported by the lowerer.
    Unsupported(String),
    /// Assembly was requested for a kernel whose result is dense (nothing
    /// to assemble).
    NothingToAssemble,
    /// The schedule scatters into a sparse result inside a reduction loop —
    /// compressed formats do not support random inserts (Section V: "avoid
    /// expensive inserts"); precompute into a workspace first.
    SparseScatter {
        /// The sparse result tensor.
        result: String,
        /// The reduction variable whose loop encloses the insert.
        var: String,
    },
    /// A forall marked parallel lowers to a loop shape the parallel
    /// executor cannot chunk deterministically (coiteration while-loops,
    /// position loops over a compressed operand, or appends into a sparse
    /// result not owned row-by-row by the parallel variable).
    UnsupportedParallelLoop {
        /// The parallelized index variable.
        var: String,
        /// Why the loop cannot be parallelized.
        reason: String,
    },
    /// A tensor mode is iterated before an outer mode's variable is bound
    /// (the loop order conflicts with the tensor's mode order).
    UnboundVariable {
        /// Tensor whose access needs the variable.
        tensor: String,
        /// The unbound index variable.
        var: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NoRangeForVar(v) => {
                write!(f, "cannot infer a range for index variable `{v}`: it indexes no tensor")
            }
            LowerError::CannotLocateSparse { tensor, level } => write!(
                f,
                "tensor `{tensor}` would need random access into compressed level {level}; \
                 reorder the loops or precompute into a dense workspace"
            ),
            LowerError::UnsupportedResultFormat(t) => write!(
                f,
                "result `{t}`: compressed result levels must be innermost under dense levels"
            ),
            LowerError::DenseUnionUnsupported(v) => write!(
                f,
                "union over a dense operand at coiterated variable `{v}` is not supported"
            ),
            LowerError::DuplicateTensorAccess(t) => {
                write!(f, "tensor `{t}` is accessed more than once with different variables")
            }
            LowerError::Unsupported(d) => write!(f, "unsupported statement shape: {d}"),
            LowerError::NothingToAssemble => {
                write!(f, "assembly kernel requested but the result is dense")
            }
            LowerError::SparseScatter { result, var } => write!(
                f,
                "sparse result `{result}` would be scattered into inside the reduction loop \
                 over `{var}`; compressed formats do not support random inserts — precompute \
                 into a dense workspace (Section V of the paper)"
            ),
            LowerError::UnsupportedParallelLoop { var, reason } => {
                write!(f, "cannot lower parallel loop over `{var}`: {reason}")
            }
            LowerError::UnboundVariable { tensor, var } => write!(
                f,
                "tensor `{tensor}` is iterated before its outer variable `{var}` is bound; \
                 reorder the loops to follow the tensor's mode order"
            ),
        }
    }
}

impl Error for LowerError {}
