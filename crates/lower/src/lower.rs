//! The lowering recursion: concrete index notation → imperative IR.

use crate::lattice::{IterKey, MergeLattice};
use crate::{LowerError, Result};
use std::collections::{HashMap, HashSet};
use taco_ir::concrete::{AssignOp, ConcreteStmt};
use taco_ir::expr::{Access, IndexExpr, IndexVar, TensorVar};
use taco_llir::{ArrayTy, Expr, Kernel, Param, Stmt, WorkspaceKind};

/// What the generated kernel does with the result's sparse index structures
/// (paper Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Values only; sparse result structures are pre-assembled inputs
    /// (numeric kernel, e.g. Figures 1d, 5b, 10).
    Compute,
    /// Index structures only; no values are computed (symbolic kernel,
    /// Figure 8).
    Assemble,
    /// Assembles index structures and computes values in one pass (the
    /// paper's SpGEMM evaluation configuration).
    Fused,
}

/// Options controlling lowering.
#[derive(Debug, Clone)]
pub struct LowerOptions {
    /// Kernel (function) name.
    pub name: String,
    /// Kernel kind.
    pub kind: KernelKind,
    /// Sort workspace coordinate lists before appending them to the result
    /// (Figure 8 line 23: "the sort is optional and only needed if the
    /// result must be ordered").
    pub sort_output: bool,
    /// Allocate workspaces in single precision (the mixed-precision option
    /// of Section III).
    pub f32_workspaces: bool,
    /// Worker-thread count for loops the schedule marked parallel
    /// (`IndexStmt::parallelize`). `None` lets the executor decide at run
    /// time (the `TACO_THREADS` environment variable, then available
    /// parallelism). Has no effect on serial loops.
    pub num_threads: Option<usize>,
    /// Storage backend for rank-1 workspaces (Section VII: "a workspace can
    /// also be implemented with other data structures such as hash maps").
    /// `Dense` lowers the paper's array workspaces; `Hash` and `CoordList`
    /// lower map workspaces whose footprint scales with touched entries —
    /// the graceful-degradation rungs of the budget and retry ladders.
    pub workspace_kind: WorkspaceKind,
}

impl LowerOptions {
    /// Compute-kernel options with the given name.
    pub fn compute(name: impl Into<String>) -> LowerOptions {
        LowerOptions {
            name: name.into(),
            kind: KernelKind::Compute,
            sort_output: true,
            f32_workspaces: false,
            num_threads: None,
            workspace_kind: WorkspaceKind::Dense,
        }
    }

    /// Fused assemble-and-compute options with the given name.
    pub fn fused(name: impl Into<String>) -> LowerOptions {
        LowerOptions { kind: KernelKind::Fused, ..LowerOptions::compute(name) }
    }

    /// Assembly (symbolic) options with the given name.
    pub fn assemble(name: impl Into<String>) -> LowerOptions {
        LowerOptions { kind: KernelKind::Assemble, ..LowerOptions::compute(name) }
    }

    /// Disables output sorting (MKL-style unsorted results, Section VIII-B).
    pub fn unsorted(mut self) -> LowerOptions {
        self.sort_output = false;
        self
    }

    /// Enables single-precision workspaces.
    pub fn with_f32_workspaces(mut self) -> LowerOptions {
        self.f32_workspaces = true;
        self
    }

    /// Pins the worker-thread count for parallel loops (`0` or `None`-like
    /// behavior is restored by never calling this).
    pub fn with_threads(mut self, n: usize) -> LowerOptions {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Selects the workspace storage backend. Non-dense kinds only lower
    /// statements whose workspaces are rank-1 and fully drained by their
    /// consumer; other shapes return [`LowerError::Unsupported`], which the
    /// budget/retry ladders treat as "skip this rung".
    pub fn with_workspace_kind(mut self, kind: WorkspaceKind) -> LowerOptions {
        self.workspace_kind = kind;
        self
    }
}

/// Bound-relevant metadata for one workspace the lowerer emitted: which
/// `Alloc`/`MapInit` names belong to a workspace, its storage backend, and
/// the dimension expressions its dense footprint is a product of. The
/// static cost analysis keys its per-workspace bounds off this record
/// instead of re-deriving workspace identity from the kernel body.
#[derive(Debug, Clone)]
pub struct WorkspaceMeta {
    /// Workspace (array or map) name as it appears in the kernel body.
    pub name: String,
    /// Storage backend the workspace was lowered with.
    pub kind: WorkspaceKind,
    /// Dimension expressions, one per workspace mode, in terms of the
    /// kernel's scalar dimension parameters (or integer literals).
    pub dims: Vec<Expr>,
    /// Whether a dense workspace carries a coordinate list (`{name}_list`)
    /// and guard set (`{name}_set`) alongside the value array.
    pub needs_list: bool,
}

/// A lowered kernel plus the binding metadata the runtime needs.
#[derive(Debug, Clone)]
pub struct LoweredKernel {
    /// The imperative-IR kernel.
    pub kernel: Kernel,
    /// The result tensor variable.
    pub result: TensorVar,
    /// Operand tensor variables, in first-use order.
    pub operands: Vec<TensorVar>,
    /// The kernel kind this was lowered as.
    pub kind: KernelKind,
    /// Name of the nonzero-count scalar output (fused/assemble kernels with
    /// sparse results).
    pub nnz_output: Option<String>,
    /// Workspaces the kernel allocates, sorted by name.
    pub workspaces: Vec<WorkspaceMeta>,
}

/// Lowers a concrete index notation statement to an imperative kernel.
///
/// # Errors
///
/// Returns a [`LowerError`] when the statement requires an unsupported
/// shape — most importantly [`LowerError::CannotLocateSparse`] when a
/// schedule would require random access into a compressed structure, which
/// is exactly the situation the workspace transformation exists to avoid.
pub fn lower(stmt: &ConcreteStmt, opts: &LowerOptions) -> Result<LoweredKernel> {
    let mut lw = Lowerer::new(stmt, opts)?;
    let mut body = lw.lower_stmt(stmt, &Ctx::default())?;

    // Rank-1 sparse results close their pos array at the kernel end (their
    // "parent loop" is the kernel root).
    if let Some(0) = lw.result_sparse_level {
        if lw.append_used && opts.kind != KernelKind::Compute {
            let pos_arr = format!("{}1_pos", lw.result.name());
            body.push(Stmt::store(pos_arr, Expr::int(1), Expr::var(lw.counter_name())));
        }
    }

    // Sparse-driven parent loops (DCSR-style operands) close the append
    // level's pos entries only for the rows they visit; rows absent from
    // every operand keep the zero the buffer was initialized with. Carry
    // the running append counter across those gaps so the finished pos
    // array is monotone segment boundaries, exactly as if a dense loop had
    // closed every row.
    if lw.append_pos_may_skip {
        if let Some(l) = lw.result_sparse_level {
            let mut parents = Expr::var(dim_name(lw.result.name(), 0));
            for k in 1..l {
                parents = parents * Expr::var(dim_name(lw.result.name(), k));
            }
            let pos_arr = pos_name(lw.result.name(), l);
            let p = "pFin";
            body.push(Stmt::for_(
                p,
                Expr::int(0),
                parents,
                vec![Stmt::if_(
                    Expr::load(&pos_arr, Expr::var(p) + Expr::int(1))
                        .lt(Expr::load(&pos_arr, Expr::var(p))),
                    vec![Stmt::store(
                        pos_arr.clone(),
                        Expr::var(p) + Expr::int(1),
                        Expr::load(&pos_arr, Expr::var(p)),
                    )],
                )],
            ));
        }
    }

    let mut stmts = Vec::new();
    // Results are implicitly initialized to zero (Section IV-A); dense
    // results are zeroed explicitly, as the paper's listings do
    // (Figure 1c line 1, Figure 9 line 1).
    if lw.result_sparse_level.is_none() {
        stmts.push(Stmt::Memset { arr: lw.result.name().to_string(), val: Expr::float(0.0) });
    }
    stmts.append(&mut lw.preamble);
    stmts.append(&mut body);

    let mut kernel = Kernel::new(opts.name.clone()).body(stmts);
    kernel.simplify();
    for p in lw.scalar_params() {
        kernel = kernel.scalar_param(p);
    }
    for p in lw.array_params() {
        kernel = kernel.array_param(p);
    }
    let nnz_output = if lw.append_used && opts.kind != KernelKind::Compute {
        let n = lw.counter_name();
        kernel = kernel.scalar_output(n.clone());
        Some(n)
    } else {
        None
    };

    let mut workspaces: Vec<WorkspaceMeta> = lw
        .workspaces
        .iter()
        .map(|(name, info)| WorkspaceMeta {
            name: name.clone(),
            kind: info.kind,
            dims: info.dims.clone(),
            needs_list: info.needs_list,
        })
        .collect();
    workspaces.sort_by(|a, b| a.name.cmp(&b.name));

    Ok(LoweredKernel {
        kernel,
        result: lw.result.clone(),
        operands: lw.operands.clone(),
        kind: opts.kind,
        nnz_output,
        workspaces,
    })
}

// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Ctx {
    /// Workspaces whose entries the current (consumer) assignments must
    /// reset to zero after reading (the drain pattern of Figures 1d, 5b, 9).
    drains: Vec<String>,
    /// The enclosing loop appends result nonzeros at the result counter
    /// (Figure 5a's `A[pA2++]` pattern): assignments to the result must
    /// also store the coordinate (fused/assemble) and bump the counter.
    append_result: bool,
}

#[derive(Debug, Clone)]
struct WsInfo {
    /// Dimension expressions, one per mode.
    dims: Vec<Expr>,
    /// Whether the workspace tracks inserted coordinates with a list +
    /// guard array (Figure 8's `rowlist`/`row`).
    needs_list: bool,
    /// Whether the consumer covers all touched coordinates so entries can
    /// be drained on read (otherwise the workspace is re-zeroed at each
    /// where execution, as in Figure 10 line 6).
    drainable: bool,
    /// Storage backend: `Dense` is the paper's zero-initialized array;
    /// `Hash`/`CoordList` are map workspaces lowered to
    /// `MapInit`/`MapScatter`/`MapDrainSorted`.
    kind: WorkspaceKind,
}

struct Lowerer<'o> {
    opts: &'o LowerOptions,
    result: TensorVar,
    result_access: Access,
    /// Innermost level of the result if compressed.
    result_sparse_level: Option<usize>,
    operands: Vec<TensorVar>,
    /// First access seen per tensor (operands and result).
    access_map: HashMap<String, Access>,
    workspaces: HashMap<String, WsInfo>,
    /// While lowering a `MapDrainSorted` body, maps the drained workspace's
    /// name to the value variable the drain binds; reads of the workspace
    /// become reads of that variable.
    map_drain_val: HashMap<String, String>,
    scalar_temps: HashSet<String>,
    /// Positions of compressed levels bound by enclosing loops.
    pos: HashMap<(String, usize), Expr>,
    /// `(tensor, level) -> dim expr` source for every index variable.
    var_dims: HashMap<String, Expr>,
    preamble: Vec<Stmt>,
    append_used: bool,
    counter_declared: bool,
    /// Variables bound by enclosing foralls, outermost first.
    enclosing: Vec<IndexVar>,
    /// Variables whose loop is sparse-driven (position or merge loops) and
    /// therefore may skip coordinates of its dimension.
    nonfull_loops: HashSet<String>,
    /// Set when the append level's pos array is closed inside loops that
    /// may skip rows: the kernel then needs a pos-finalization epilogue
    /// carrying the append counter across unvisited rows.
    append_pos_may_skip: bool,
}

impl<'o> Lowerer<'o> {
    fn new(stmt: &ConcreteStmt, opts: &'o LowerOptions) -> Result<Self> {
        // Workspaces are the tensors written by where-producers; the result
        // is the remaining written tensor.
        let mut producer_written: HashSet<String> = HashSet::new();
        collect_producer_written(stmt, false, &mut producer_written);
        let written = stmt.written_tensors();
        let results: Vec<&String> =
            written.iter().filter(|t| !producer_written.contains(*t)).collect();
        if results.len() != 1 {
            return Err(LowerError::Unsupported(format!(
                "expected exactly one result tensor, found {results:?}"
            )));
        }
        let result_name = results[0].clone();

        // Find the result access and all tensor variables.
        let mut result_access: Option<Access> = None;
        let mut tensors: Vec<TensorVar> = Vec::new();
        let mut access_conflict: Option<String> = None;
        let mut access_map: HashMap<String, Access> = HashMap::new();
        stmt.visit(&mut |s| {
            if let ConcreteStmt::Assign { lhs, rhs, .. } = s {
                for a in std::iter::once(lhs).chain(rhs.accesses()) {
                    let name = a.tensor().name().to_string();
                    match access_map.get(&name) {
                        None => {
                            access_map.insert(name, a.clone());
                        }
                        Some(prev) if prev.vars() != a.vars() => access_conflict = Some(name),
                        _ => {}
                    }
                    if !tensors.iter().any(|t| t.name() == a.tensor().name()) {
                        tensors.push(a.tensor().clone());
                    }
                    if a.tensor().name() == result_name && result_access.is_none() {
                        result_access = Some(a.clone());
                    }
                }
            }
        });
        if let Some(t) = access_conflict {
            // Renamed consumer/producer sides access workspaces with
            // different vars; allow that for producer-written tensors.
            if !producer_written.contains(&t) {
                return Err(LowerError::DuplicateTensorAccess(t));
            }
        }
        let result_access = result_access.ok_or_else(|| {
            LowerError::Unsupported(format!("result tensor `{result_name}` is never accessed"))
        })?;
        let result = result_access.tensor().clone();

        // Validate result format by capability: every level must support
        // either random insert (dense) or appending, and an append level is
        // only assemblable at the innermost position in storage order.
        // Branchless (singleton), unordered (hashed), and mode-reordered
        // results have no append idiom here; they are produced by computing
        // into a supported format and converting afterwards.
        if !result.format().is_identity_order() {
            return Err(LowerError::UnsupportedResultFormat(result_name.clone()));
        }
        let mut result_sparse_level = None;
        for l in 0..result.rank() {
            let lt = result.format().mode(l);
            if lt.has_insert() {
                continue;
            }
            if lt.has_append() && lt.is_ordered() && l + 1 == result.rank() {
                result_sparse_level = Some(l);
            } else {
                return Err(LowerError::UnsupportedResultFormat(result_name.clone()));
            }
        }
        if opts.kind == KernelKind::Assemble && result_sparse_level.is_none() {
            return Err(LowerError::NothingToAssemble);
        }

        let operands: Vec<TensorVar> = tensors
            .iter()
            .filter(|t| {
                t.name() != result_name && !producer_written.contains(t.name()) && t.rank() > 0
            })
            .cloned()
            .collect();

        // Map every index variable to a dimension expression, preferring
        // operands and the result (their dims are kernel parameters).
        let mut var_dims: HashMap<String, Expr> = HashMap::new();
        // Operands first so their dims are preferred over the result's.
        let param_tensors: Vec<&TensorVar> =
            operands.iter().chain(std::iter::once(&result)).collect();
        for t in param_tensors {
            let Some(a) = access_map.get(t.name()) else { continue };
            // Dim parameters are named by *storage level*; level `l` stores
            // the index variable at mode `mode_of_level(l)`.
            for l in 0..t.rank() {
                let v = &a.vars()[t.format().mode_of_level(l)];
                var_dims
                    .entry(v.name().to_string())
                    .or_insert_with(|| Expr::var(dim_name(t.name(), l)));
            }
        }

        Ok(Lowerer {
            opts,
            result,
            result_access,
            result_sparse_level,
            operands,
            access_map,
            workspaces: HashMap::new(),
            map_drain_val: HashMap::new(),
            scalar_temps: HashSet::new(),
            pos: HashMap::new(),
            var_dims,
            preamble: Vec::new(),
            append_used: false,
            counter_declared: false,
            enclosing: Vec::new(),
            nonfull_loops: HashSet::new(),
            append_pos_may_skip: false,
        })
    }

    // -- naming ------------------------------------------------------------

    fn counter_name(&self) -> String {
        let l = self.result_sparse_level.expect("counter implies sparse result");
        format!("p{}{}", self.result.name(), l + 1)
    }

    fn ws_ty(&self) -> ArrayTy {
        if self.opts.f32_workspaces {
            ArrayTy::F32
        } else {
            ArrayTy::F64
        }
    }

    // -- parameters ----------------------------------------------------------

    fn scalar_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in self.operands.iter().chain(std::iter::once(&self.result)) {
            for l in 0..t.rank() {
                out.push(dim_name(t.name(), l));
            }
        }
        out
    }

    fn array_params(&self) -> Vec<Param> {
        let mut out = Vec::new();
        let with_vals = self.opts.kind != KernelKind::Assemble;
        for t in &self.operands {
            for l in 0..t.rank() {
                let lt = t.format().mode(l);
                if lt.has_pos_array() {
                    out.push(Param::input(pos_name(t.name(), l), ArrayTy::Int));
                }
                if lt.has_crd_array() {
                    out.push(Param::input(crd_name(t.name(), l), ArrayTy::Int));
                }
            }
            if with_vals {
                out.push(Param::input(t.name(), ArrayTy::F64));
            }
        }
        let r = &self.result;
        match (self.result_sparse_level, self.opts.kind) {
            (None, _) => out.push(Param::output(r.name(), ArrayTy::F64)),
            (Some(l), KernelKind::Compute) => {
                out.push(Param::input(pos_name(r.name(), l), ArrayTy::Int));
                out.push(Param::input(crd_name(r.name(), l), ArrayTy::Int));
                out.push(Param::inout(r.name(), ArrayTy::F64));
            }
            (Some(l), KernelKind::Fused) => {
                out.push(Param::inout(pos_name(r.name(), l), ArrayTy::Int));
                out.push(Param::inout(crd_name(r.name(), l), ArrayTy::Int));
                out.push(Param::inout(r.name(), ArrayTy::F64));
            }
            (Some(l), KernelKind::Assemble) => {
                out.push(Param::inout(pos_name(r.name(), l), ArrayTy::Int));
                out.push(Param::inout(crd_name(r.name(), l), ArrayTy::Int));
            }
        }
        out
    }

    // -- statements ----------------------------------------------------------

    fn lower_stmt(&mut self, stmt: &ConcreteStmt, ctx: &Ctx) -> Result<Vec<Stmt>> {
        match stmt {
            ConcreteStmt::Assign { lhs, op, rhs } => self.lower_assign(lhs, *op, rhs, ctx),
            ConcreteStmt::Forall { var, body, parallel } => {
                self.lower_forall(var, body, *parallel, ctx)
            }
            ConcreteStmt::Where { consumer, producer } => {
                self.lower_where(consumer, producer, ctx)
            }
            ConcreteStmt::Sequence { first, second } => {
                let mut out = self.lower_stmt(first, ctx)?;
                out.extend(self.lower_stmt(second, ctx)?);
                Ok(out)
            }
        }
    }

    fn lower_where(
        &mut self,
        consumer: &ConcreteStmt,
        producer: &ConcreteStmt,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        let mut my_drains = Vec::new();

        // Only the tensors this where *directly* produces: tensors written
        // inside a nested where's producer belong to that nested where
        // (e.g. in the doubly-transformed MTTKRP, `v` belongs to the outer
        // where and `w` to the inner one).
        for ws_name in direct_written(producer) {
            // Find the workspace tensor variable from a producer access.
            let mut ws_var: Option<TensorVar> = None;
            let mut ws_vars: Vec<IndexVar> = Vec::new();
            producer.visit(&mut |s| {
                if let ConcreteStmt::Assign { lhs, .. } = s {
                    if lhs.tensor().name() == ws_name && ws_var.is_none() {
                        ws_var = Some(lhs.tensor().clone());
                        ws_vars = lhs.vars().to_vec();
                    }
                }
            });
            let ws_var = ws_var.ok_or_else(|| {
                LowerError::Unsupported(format!(
                    "where-producer writes `{ws_name}` without an access to it"
                ))
            })?;

            if ws_var.rank() == 0 {
                // Scalar reduction temporary: a fresh float accumulator.
                self.scalar_temps.insert(ws_name.clone());
                out.push(Stmt::DeclFloat(ws_name.clone(), Expr::float(0.0)));
                continue;
            }

            if !self.workspaces.contains_key(&ws_name) {
                let dims: Vec<Expr> = ws_vars
                    .iter()
                    .enumerate()
                    .map(|(n, v)| {
                        self.var_dims
                            .get(v.name())
                            .cloned()
                            .unwrap_or(Expr::int(ws_var.shape()[n] as i64))
                    })
                    .collect();

                let needs_list = self.opts.kind != KernelKind::Compute
                    && ws_var.rank() == 1
                    && self.result_sparse_level.is_some_and(|l| {
                        self.result_access
                            .vars()
                            .get(l)
                            .is_some_and(|rv| consumer_wlist_driven(consumer, rv))
                    })
                    && consumer_feeds_result(consumer, &ws_name, self.result.name());
                let drainable = self.consumer_drains(consumer, &ws_name);
                let kind = self.map_kind_for(&ws_name, &ws_var, consumer, needs_list, drainable)?;

                let len = dims.iter().cloned().reduce(|a, b| a * b).ok_or_else(|| {
                    LowerError::Unsupported(format!("workspace `{ws_name}` has no modes"))
                })?;
                self.preamble.push(Stmt::Comment(format!("workspace for `{ws_name}`")));
                if kind == WorkspaceKind::Dense {
                    // Allocate the workspace (zero-filled) in the preamble.
                    self.preamble.push(Stmt::Alloc {
                        arr: ws_name.clone(),
                        ty: self.ws_ty(),
                        len: len.clone(),
                    });
                    if needs_list {
                        self.preamble.push(Stmt::Alloc {
                            arr: list_name(&ws_name),
                            ty: ArrayTy::Int,
                            len: len.clone(),
                        });
                        self.preamble.push(Stmt::Alloc {
                            arr: set_name(&ws_name),
                            ty: ArrayTy::Bool,
                            len,
                        });
                    }
                } else {
                    // Map workspace: footprint scales with touched entries,
                    // not the dimension. Start small and let the executor
                    // grow (and budget-charge) by doubling.
                    self.preamble.push(Stmt::MapInit {
                        map: ws_name.clone(),
                        kind,
                        capacity: Expr::int(16).min(len),
                    });
                }
                self.workspaces
                    .insert(ws_name.clone(), WsInfo { dims, needs_list, drainable, kind });
            }

            let info = &self.workspaces[&ws_name];
            if info.kind == WorkspaceKind::Dense {
                if !info.drainable && self.opts.kind != KernelKind::Assemble {
                    // Re-zero at each where execution (Figure 10 line 6).
                    out.push(Stmt::Memset { arr: ws_name.clone(), val: Expr::float(0.0) });
                }
                if info.needs_list {
                    out.push(Stmt::DeclInt(size_name(&ws_name), Expr::int(0)));
                }
            }
            // Map workspaces need no per-where reset: a drain empties them.
            if info.drainable {
                my_drains.push(ws_name.clone());
            }
        }

        // Producer first, then consumer (Section VI: "when it encounters
        // where statements the algorithm emits the producer side followed by
        // the consumer side").
        let producer_ctx = Ctx { drains: Vec::new(), append_result: false };
        out.extend(self.lower_stmt(producer, &producer_ctx)?);

        let mut consumer_ctx = ctx.clone();
        consumer_ctx.drains.extend(my_drains);
        out.extend(self.lower_stmt(consumer, &consumer_ctx)?);
        Ok(out)
    }

    /// Decides whether the consumer's loops cover every workspace entry the
    /// producer touched, so entries can be reset on read. True when the
    /// consumer reads the workspace under loops with no *other* sparse
    /// operand driving them; false when another tensor's sparsity drives the
    /// consumer (Figure 10: the loop over `D` may skip touched entries).
    fn consumer_drains(&self, consumer: &ConcreteStmt, ws: &str) -> bool {
        let mut drain = true;
        consumer.visit(&mut |s| {
            if let ConcreteStmt::Assign { lhs, rhs, .. } = s {
                if !rhs.uses_tensor(ws) {
                    return;
                }
                // The variables the workspace is read with.
                for a in rhs.accesses() {
                    if a.tensor().name() != ws {
                        continue;
                    }
                    for v in a.vars() {
                        let lat = MergeLattice::build(rhs, v);
                        let driven_by_other = lat
                            .iterators()
                            .iter()
                            .any(|it| it.tensor != ws && it.tensor != lhs.tensor().name());
                        if driven_by_other {
                            drain = false;
                        }
                    }
                }
            }
        });
        drain
    }

    /// Decides the storage backend for a workspace and validates that the
    /// statement's shape supports it. Map workspaces (hash / coord-list)
    /// only lower when the consumer fully drains the workspace in sorted
    /// key order — random access into a map has no provably-clean idiom, so
    /// ineligible shapes error and the budget/retry ladders skip the rung.
    fn map_kind_for(
        &self,
        ws_name: &str,
        ws_var: &TensorVar,
        consumer: &ConcreteStmt,
        needs_list: bool,
        drainable: bool,
    ) -> Result<WorkspaceKind> {
        let kind = self.opts.workspace_kind;
        if kind == WorkspaceKind::Dense {
            return Ok(WorkspaceKind::Dense);
        }
        if ws_var.rank() != 1 {
            return Err(LowerError::Unsupported(format!(
                "{kind} workspace `{ws_name}` has rank {}; map workspaces are rank-1 only",
                ws_var.rank()
            )));
        }
        if self.opts.f32_workspaces {
            return Err(LowerError::Unsupported(format!(
                "{kind} workspace `{ws_name}`: map workspaces are double-precision only"
            )));
        }
        if !needs_list && !drainable {
            // Figure 10's shape: another tensor's sparsity drives the
            // consumer, which random-accesses the workspace.
            return Err(LowerError::Unsupported(format!(
                "{kind} workspace `{ws_name}` is not fully drained by its consumer; \
                 map workspaces require a draining consumer"
            )));
        }
        if self.opts.kind == KernelKind::Compute
            && self.result_sparse_level.is_some()
            && consumer_feeds_result(consumer, ws_name, self.result.name())
        {
            // A compute kernel drains through the pre-assembled result
            // structure (Figure 1d): that iterates `crd`, then reads the
            // workspace at each coordinate — random access again.
            return Err(LowerError::Unsupported(format!(
                "{kind} workspace `{ws_name}` would drain through a pre-assembled sparse \
                 result structure; map workspaces cannot be randomly accessed"
            )));
        }
        Ok(kind)
    }

    fn lower_forall(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        parallel: bool,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        // Workspaces allocated while lowering this body become the
        // per-thread private arrays of a parallel loop.
        let ws_before: HashSet<String> =
            if parallel { self.workspaces.keys().cloned().collect() } else { HashSet::new() };
        // Combined expression across every assignment in the body, for the
        // iterator analysis at this variable.
        let combined = combined_rhs(body, var);
        let lattice = match &combined {
            Some(e) => MergeLattice::build(e, var),
            None => MergeLattice { points: Vec::new() },
        };

        // Does the result's compressed level sit at this variable?
        let result_sparse_here = self
            .result_sparse_level
            .is_some_and(|l| self.result_access.vars().get(l) == Some(var))
            && body.uses_tensor(self.result.name())
            && writes_tensor(body, self.result.name());

        // Appending into a sparse result is only valid when every enclosing
        // loop binds a result variable; inside a reduction loop, each row
        // would be revisited and inserted into repeatedly — the expensive
        // sparse insert the workspace transformation exists to avoid.
        if result_sparse_here && self.opts.kind != KernelKind::Compute {
            if let Some(red) =
                self.enclosing.iter().find(|v| !self.result_access.uses_var(v))
            {
                return Err(LowerError::SparseScatter {
                    result: self.result.name().to_string(),
                    var: red.name().to_string(),
                });
            }
        }

        self.enclosing.push(var.clone());
        let full_loop = lattice.points.is_empty() || lattice.is_dense();
        if !full_loop {
            // Position and merge loops visit only stored coordinates; any
            // append-level pos close nested inside must be finalized at the
            // kernel end because skipped rows never store their boundary.
            self.nonfull_loops.insert(var.name().to_string());
        }
        let strategy = if full_loop {
            if result_sparse_here {
                match self.opts.kind {
                    KernelKind::Compute => self.result_driven_loop(var, body, ctx),
                    KernelKind::Fused | KernelKind::Assemble => {
                        self.wlist_driven_loop(var, body, ctx)
                    }
                }
            } else {
                self.dense_loop(var, body, ctx)
            }
        } else if lattice.has_dense_union() {
            Err(LowerError::DenseUnionUnsupported(var.name().to_string()))
        } else {
            // Sparse-driven loops appending to a sparse result (Figure 5a):
            // the loop produces result nonzeros in coordinate order at the
            // append counter.
            let mut inner_ctx = ctx.clone();
            if result_sparse_here {
                let l = self.result_sparse_level.expect("checked above");
                self.append_used = true;
                self.ensure_counter();
                self.pos
                    .insert((self.result.name().to_string(), l), Expr::var(self.counter_name()));
                inner_ctx.append_result = true;
            }
            let loop_points = lattice.loop_points();
            let loops = if loop_points.len() == 1 && loop_points[0].iters.len() == 1 {
                self.position_loop(var, body, &loop_points[0].iters[0].clone(), &inner_ctx)
            } else {
                self.merge_loops(var, body, &lattice, &inner_ctx)
            };
            if result_sparse_here {
                let l = self.result_sparse_level.expect("checked above");
                self.pos.remove(&(self.result.name().to_string(), l));
            }
            loops
        };
        let mut out = match strategy {
            Ok(out) => out,
            Err(e) => {
                self.enclosing.pop();
                return Err(e);
            }
        };

        // Close the result pos array at the end of each iteration of the
        // sparse level's parent loop (Fused/Assemble only). The store goes
        // *inside* the loop body so the parent variable is in scope.
        if let Some(l) = self.result_sparse_level {
            if l > 0
                && self.opts.kind != KernelKind::Compute
                && self.result_access.vars().get(l - 1) == Some(var)
                && self.append_used
            {
                let parent_pos = self.access_pos(&self.result_access, l - 1)?;
                let store = Stmt::store(
                    pos_name(self.result.name(), l),
                    parent_pos + Expr::int(1),
                    Expr::var(self.counter_name()),
                );
                for s in &mut out {
                    match s {
                        Stmt::For { body, .. } | Stmt::While { body, .. } => {
                            body.push(store.clone());
                        }
                        _ => {}
                    }
                }
                // The close above only lands in visited iterations. When any
                // loop enclosing it (this one included) is sparse-driven,
                // skipped rows keep their zero-initialized pos entry and the
                // kernel must repair the array once at the end.
                if self.enclosing.iter().any(|v| self.nonfull_loops.contains(v.name())) {
                    self.append_pos_may_skip = true;
                }
            }
        }
        self.enclosing.pop();
        if parallel {
            out = self.parallelize_loop(var, body, out, &ws_before)?;
        }
        Ok(out)
    }

    /// Converts the single dense loop a parallel forall lowered to into a
    /// [`Stmt::ParallelFor`], computing the per-thread private workspace set
    /// and (when the loop appends rows into a sparse result) the
    /// deterministic merge description.
    fn parallelize_loop(
        &self,
        var: &IndexVar,
        body: &ConcreteStmt,
        out: Vec<Stmt>,
        ws_before: &HashSet<String>,
    ) -> Result<Vec<Stmt>> {
        // Per-thread private arrays: every workspace (plus its coordinate
        // list and guard set) first allocated while lowering this body.
        // Sorted so the generated kernel is deterministic.
        let mut private: Vec<String> = Vec::new();
        for (name, info) in &self.workspaces {
            if ws_before.contains(name) {
                continue;
            }
            if info.kind != WorkspaceKind::Dense {
                // Map workspaces are machine state, not bound arrays: the
                // executor clones them per worker, so they are inherently
                // thread-private and never appear in the private list.
                continue;
            }
            private.push(name.clone());
            if info.needs_list {
                private.push(list_name(name));
                private.push(set_name(name));
            }
        }
        private.sort();

        // Appends into a sparse result are only mergeable when the parallel
        // variable owns whole rows of the appended level: each iteration
        // then produces one contiguous coordinate segment and closes
        // `pos[v+1]`, so per-worker segments can be stitched in chunk order.
        let appends_here = self.opts.kind != KernelKind::Compute
            && self.append_used
            && self.result_sparse_level.is_some()
            && writes_tensor(body, self.result.name());
        let append = if appends_here {
            let l = self.result_sparse_level.expect("checked above");
            if l == 0 || self.result_access.vars().get(l - 1) != Some(var) {
                return Err(LowerError::UnsupportedParallelLoop {
                    var: var.name().to_string(),
                    reason: format!(
                        "the loop appends into sparse result `{}` but `{}` does not own whole \
                         rows of the appended level",
                        self.result.name(),
                        var.name()
                    ),
                });
            }
            let mut data = vec![crd_name(self.result.name(), l)];
            if self.opts.kind == KernelKind::Fused {
                data.push(self.result.name().to_string());
            }
            Some(taco_llir::AppendMerge {
                counter: self.counter_name(),
                data,
                pos: Some(pos_name(self.result.name(), l)),
            })
        } else {
            None
        };

        // A body that writes a sparse result through the append counter but
        // has no merge description would carry the counter across
        // iterations: every worker starts from the parent's counter value
        // and their prefixes overlap. Compute kernels that drain a
        // workspace by result structure never hit this (they re-derive the
        // position from `pos` per row and `append_used` stays false).
        if self.append_used && append.is_none() && writes_tensor(body, self.result.name()) {
            return Err(LowerError::UnsupportedParallelLoop {
                var: var.name().to_string(),
                reason: format!(
                    "the loop advances append counter `{}` across iterations with no merge \
                     strategy (loop-carried position counter must stay serial)",
                    self.counter_name()
                ),
            });
        }

        match <[Stmt; 1]>::try_from(out) {
            Ok([Stmt::For { var: lv, lo, hi, body }]) if lv == var.name() => {
                Ok(vec![Stmt::ParallelFor {
                    var: lv,
                    lo,
                    hi,
                    threads: self.opts.num_threads.unwrap_or(0),
                    private,
                    append,
                    body,
                }])
            }
            _ => Err(LowerError::UnsupportedParallelLoop {
                var: var.name().to_string(),
                reason: "only dense loops (`for v = 0..N`) can be parallelized; coiteration \
                         and position loops must stay serial"
                    .to_string(),
            }),
        }
    }

    /// `for (v = 0; v < dim; v++) body` — or, when the body drains a map
    /// workspace at exactly this variable, a sorted map drain over the
    /// touched keys (the map analog of Figure 9's dense drain loop).
    fn dense_loop(&mut self, var: &IndexVar, body: &ConcreteStmt, ctx: &Ctx) -> Result<Vec<Stmt>> {
        if let Some(ws) = self.map_drain_at(var, body, ctx)? {
            return self.map_drain_loop(var, body, &ws, ctx);
        }
        let dim = self
            .var_dims
            .get(var.name())
            .cloned()
            .ok_or_else(|| LowerError::NoRangeForVar(var.name().to_string()))?;
        let inner = self.lower_stmt(body, ctx)?;
        Ok(vec![Stmt::for_(var.name(), Expr::int(0), dim, inner)])
    }

    /// Finds the map workspace the body drains at `var`, if any. The drain
    /// only iterates *touched* keys, so it is valid only when zeroing the
    /// workspace vanishes the body (untouched keys then contribute exactly
    /// what the dense loop's `+= 0` iterations would).
    fn map_drain_at(
        &self,
        var: &IndexVar,
        body: &ConcreteStmt,
        ctx: &Ctx,
    ) -> Result<Option<String>> {
        let mut found: Vec<String> = Vec::new();
        body.visit(&mut |s| {
            if let ConcreteStmt::Assign { rhs, .. } = s {
                for a in rhs.accesses() {
                    let name = a.tensor().name();
                    let is_map_drain = ctx.drains.iter().any(|d| d == name)
                        && self
                            .workspaces
                            .get(name)
                            .is_some_and(|w| w.kind != WorkspaceKind::Dense)
                        && a.vars().len() == 1
                        && &a.vars()[0] == var;
                    if is_map_drain && !found.iter().any(|f| f == name) {
                        found.push(name.to_string());
                    }
                }
            }
        });
        match found.len() {
            0 => Ok(None),
            1 => {
                let ws = found.remove(0);
                let absent: HashSet<String> = std::iter::once(ws.clone()).collect();
                if restrict_stmt(body, &absent).is_some() {
                    return Err(LowerError::Unsupported(format!(
                        "map workspace `{ws}`: the consumer contributes values at untouched \
                         keys, which a sorted drain over touched keys cannot reproduce"
                    )));
                }
                Ok(Some(ws))
            }
            _ => Err(LowerError::Unsupported(format!(
                "multiple map workspaces ({found:?}) drained in one loop"
            ))),
        }
    }

    /// `MapDrainSorted` over the touched keys, binding the loop variable to
    /// each key and substituting workspace reads with the drained value.
    fn map_drain_loop(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        ws: &str,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        let val = map_val_name(ws);
        self.map_drain_val.insert(ws.to_string(), val.clone());
        let inner = self.lower_stmt(body, ctx);
        self.map_drain_val.remove(ws);
        Ok(vec![Stmt::MapDrainSorted {
            map: ws.to_string(),
            key: var.name().to_string(),
            val,
            body: inner?,
        }])
    }

    /// Format of the named operand/result tensor, for capability queries on
    /// a merge-lattice iterator.
    fn format_of(&self, tensor: &str) -> Result<taco_tensor::Format> {
        self.access_map
            .get(tensor)
            .map(|a| a.tensor().format().clone())
            .ok_or_else(|| LowerError::Unsupported(format!("unknown tensor `{tensor}`")))
    }

    /// Rejects loop drivers that cannot feed an ordered, deduplicated append
    /// into the sparse result: unordered (hashed) levels and non-unique
    /// levels (COO outer coordinates) would emit coordinates out of order or
    /// repeatedly.
    fn check_append_driver(&self, iter: &IterKey, ctx: &Ctx) -> Result<()> {
        if !ctx.append_result {
            return Ok(());
        }
        let fmt = self.format_of(&iter.tensor)?;
        let lt = fmt.mode(iter.level);
        if !lt.is_ordered() || !fmt.level_unique(iter.level) {
            return Err(LowerError::Unsupported(format!(
                "cannot append to sparse result `{}` from level {} of `{}`: append needs an \
                 ordered, duplicate-free driver; convert the operand or precompute into a \
                 workspace",
                self.result.name(),
                iter.level,
                iter.tensor
            )));
        }
        Ok(())
    }

    /// `for (pX = X_pos[parent]; pX < X_pos[parent+1]; pX++) { v = X_crd[pX]; body }`
    ///
    /// Branchless (singleton) levels have no loop of their own: the single
    /// coordinate lives at the parent's position, so this lowers to one
    /// coordinate load with the position passed through.
    fn position_loop(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        iter: &IterKey,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        self.check_append_driver(iter, ctx)?;
        let fmt = self.format_of(&iter.tensor)?;
        if fmt.mode(iter.level).is_position_passthrough() {
            let parent = self.parent_pos(&iter.tensor, iter.level)?;
            self.pos.insert((iter.tensor.clone(), iter.level), parent.clone());
            let mut out = vec![Stmt::DeclInt(
                var.name().to_string(),
                Expr::load(crd_name(&iter.tensor, iter.level), parent),
            )];
            let lowered = self.lower_stmt(body, ctx);
            self.pos.remove(&(iter.tensor.clone(), iter.level));
            out.extend(lowered?);
            return Ok(out);
        }
        let parent = self.parent_pos(&iter.tensor, iter.level)?;
        let pvar = pos_var(&iter.tensor, iter.level);
        let lo = Expr::load(pos_name(&iter.tensor, iter.level), parent.clone());
        let hi = Expr::load(pos_name(&iter.tensor, iter.level), parent + Expr::int(1));

        self.pos.insert((iter.tensor.clone(), iter.level), Expr::var(&pvar));
        let mut inner = vec![Stmt::DeclInt(
            var.name().to_string(),
            Expr::load(crd_name(&iter.tensor, iter.level), Expr::var(&pvar)),
        )];
        inner.extend(self.lower_stmt(body, ctx)?);
        self.pos.remove(&(iter.tensor.clone(), iter.level));

        Ok(vec![Stmt::for_(pvar, lo, hi, inner)])
    }

    /// Coiteration while loops over a merge lattice (Figures 4a, 5a, 7).
    fn merge_loops(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        lattice: &MergeLattice,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        let iters = lattice.iterators();

        // Coiteration advances one cursor per iterator through an ordered
        // pos/crd segment; levels without their own position iteration
        // (singleton) or without coordinate order (hashed) cannot merge.
        for it in &iters {
            let fmt = self.format_of(&it.tensor)?;
            let lt = fmt.mode(it.level);
            if lt.is_position_passthrough() || !lt.is_ordered() || !lt.has_pos_array() {
                return Err(LowerError::Unsupported(format!(
                    "cannot coiterate level {} of `{}` at `{var}`: merging needs ordered \
                     position iteration; convert the operand or precompute into a workspace",
                    it.level, it.tensor
                )));
            }
            self.check_append_driver(it, ctx)?;
        }

        // Position cursors for every iterator, declared before the loops.
        let mut ends: HashMap<IterKey, Expr> = HashMap::new();
        for it in &iters {
            let parent = self.parent_pos(&it.tensor, it.level)?;
            let pvar = pos_var(&it.tensor, it.level);
            out.push(Stmt::DeclInt(
                pvar.clone(),
                Expr::load(pos_name(&it.tensor, it.level), parent.clone()),
            ));
            ends.insert(it.clone(), Expr::load(pos_name(&it.tensor, it.level), parent + Expr::int(1)));
        }

        for lp in lattice.loop_points() {
            let cond = lp
                .iters
                .iter()
                .map(|it| Expr::var(pos_var(&it.tensor, it.level)).lt(ends[it].clone()))
                .reduce(|a, b| a.and(b))
                .ok_or_else(|| {
                    LowerError::Unsupported(format!(
                        "merge lattice for `{var}` produced a loop point with no iterators"
                    ))
                })?;

            let mut loop_body = Vec::new();
            // Candidate coordinates and the merged coordinate.
            for it in &lp.iters {
                loop_body.push(Stmt::DeclInt(
                    coord_var(var, &it.tensor),
                    Expr::load(crd_name(&it.tensor, it.level), Expr::var(pos_var(&it.tensor, it.level))),
                ));
            }
            let merged = lp
                .iters
                .iter()
                .map(|it| Expr::var(coord_var(var, &it.tensor)))
                .reduce(|a, b| a.min(b))
                .ok_or_else(|| {
                    LowerError::Unsupported(format!(
                        "merge lattice for `{var}` produced a loop point with no iterators"
                    ))
                })?;
            loop_body.push(Stmt::DeclInt(var.name().to_string(), merged));

            // Case chain over the sub-points.
            let subs = lattice.sub_points(lp);
            let mut chain: Vec<Stmt> = Vec::new();
            for lq in subs.iter().rev() {
                // Build from the smallest (last) up into else branches.
                let cond = lq
                    .iters
                    .iter()
                    .map(|it| Expr::var(coord_var(var, &it.tensor)).eq(Expr::var(var.name())))
                    .reduce(|a, b| a.and(b))
                    .ok_or_else(|| {
                        LowerError::Unsupported(format!(
                            "merge lattice for `{var}` produced a sub-point with no iterators"
                        ))
                    })?;

                // Restrict the body to this sub-point: iterators absent from
                // it are symbolically zero.
                let absent: HashSet<String> = iters
                    .iter()
                    .filter(|it| !lq.iters.contains(it))
                    .map(|it| it.tensor.clone())
                    .collect();
                // Record positions only for present iterators.
                for it in &lq.iters {
                    self.pos.insert(
                        (it.tensor.clone(), it.level),
                        Expr::var(pos_var(&it.tensor, it.level)),
                    );
                }
                let case_body = match restrict_stmt(body, &absent) {
                    Some(restricted) => self.lower_stmt(&restricted, ctx)?,
                    None => Vec::new(),
                };
                for it in &lq.iters {
                    self.pos.remove(&(it.tensor.clone(), it.level));
                }

                let trivially_true = lp.iters.len() == 1;
                if trivially_true {
                    chain = case_body;
                } else if chain.is_empty() {
                    chain = vec![Stmt::if_(cond, case_body)];
                } else {
                    chain = vec![Stmt::if_else(cond, case_body, chain)];
                }
            }
            loop_body.extend(chain);

            // Conditional cursor advances.
            for it in &lp.iters {
                let pvar = pos_var(&it.tensor, it.level);
                if lp.iters.len() == 1 {
                    loop_body.push(Stmt::incr(&pvar));
                } else {
                    loop_body.push(Stmt::if_(
                        Expr::var(coord_var(var, &it.tensor)).eq(Expr::var(var.name())),
                        vec![Stmt::incr(&pvar)],
                    ));
                }
            }

            out.push(Stmt::while_(cond, loop_body));
        }
        Ok(out)
    }

    /// Iterate the result's own (pre-assembled) sparse structure:
    /// `for (pA = A_pos[i]; ...) { v = A_crd[pA]; body }` (Figure 1d).
    fn result_driven_loop(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        let l = self.result_sparse_level.expect("result-driven loop implies sparse result");
        let name = self.result.name().to_string();
        let parent = self.access_pos(&self.result_access.clone(), l.wrapping_sub(1).min(l))?;
        let parent = if l == 0 { Expr::int(0) } else { parent };
        let pvar = pos_var(&name, l);
        let lo = Expr::load(pos_name(&name, l), parent.clone());
        let hi = Expr::load(pos_name(&name, l), parent + Expr::int(1));

        self.pos.insert((name.clone(), l), Expr::var(&pvar));
        let mut inner = vec![Stmt::DeclInt(
            var.name().to_string(),
            Expr::load(crd_name(&name, l), Expr::var(&pvar)),
        )];
        inner.extend(self.lower_stmt(body, ctx)?);
        self.pos.remove(&(name, l));

        Ok(vec![Stmt::for_(pvar, lo, hi, inner)])
    }

    /// Iterate a workspace coordinate list to append a result row
    /// (Figure 8 lines 22–36 fused with value copy).
    fn wlist_driven_loop(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        // Find the listed workspace the body reads.
        let ws = body
            .assignments()
            .iter()
            .find_map(|s| {
                if let ConcreteStmt::Assign { rhs, .. } = s {
                    rhs.accesses()
                        .iter()
                        .map(|a| a.tensor().name().to_string())
                        .find(|n| self.workspaces.get(n).is_some_and(|w| w.needs_list))
                } else {
                    None
                }
            })
            .ok_or_else(|| {
                LowerError::Unsupported(format!(
                    "sparse result at `{var}` needs a workspace coordinate list to assemble; \
                     precompute into a workspace first"
                ))
            })?;

        if self.workspaces[&ws].kind != WorkspaceKind::Dense {
            return self.map_wlist_drain(var, body, &ws, ctx);
        }

        let l = self.result_sparse_level.expect("wlist loop implies sparse result");
        self.append_used = true;
        self.ensure_counter();

        let mut out = Vec::new();
        if self.opts.sort_output {
            out.push(Stmt::Sort {
                arr: list_name(&ws),
                lo: Expr::int(0),
                hi: Expr::var(size_name(&ws)),
            });
        }

        let pvar = format!("p{ws}");
        let counter = self.counter_name();
        self.pos.insert((self.result.name().to_string(), l), Expr::var(&counter));
        let mut inner = vec![Stmt::DeclInt(
            var.name().to_string(),
            Expr::load(list_name(&ws), Expr::var(&pvar)),
        )];
        // Grow the crd (and value) arrays by doubling (Figure 8 lines 26-29).
        let crd = crd_name(self.result.name(), l);
        inner.push(Stmt::if_(
            Expr::len(&crd).le(Expr::var(&counter)),
            vec![Stmt::Realloc { arr: crd.clone(), len: (Expr::var(&counter) + Expr::int(1)) * Expr::int(2) }],
        ));
        inner.push(Stmt::store(&crd, Expr::var(&counter), Expr::var(var.name())));
        if self.opts.kind == KernelKind::Fused {
            let vals = self.result.name().to_string();
            inner.push(Stmt::if_(
                Expr::len(&vals).le(Expr::var(&counter)),
                vec![Stmt::Realloc {
                    arr: vals.clone(),
                    len: (Expr::var(&counter) + Expr::int(1)) * Expr::int(2),
                }],
            ));
            inner.extend(self.lower_stmt(body, ctx)?);
        }
        // Reset the guard so the next row starts clean (Figure 8 line 35).
        inner.push(Stmt::store(set_name(&ws), Expr::var(var.name()), Expr::bool(false)));
        inner.push(Stmt::incr(&counter));
        self.pos.remove(&(self.result.name().to_string(), l));

        out.push(Stmt::for_(pvar, Expr::int(0), Expr::var(size_name(&ws)), inner));
        Ok(out)
    }

    /// Map-workspace analog of [`Lowerer::wlist_driven_loop`]: the drain
    /// yields `(coordinate, value)` pairs in ascending key order — already
    /// sorted, so the coordinate-list sort pass disappears — and each entry
    /// appends one result nonzero.
    fn map_wlist_drain(
        &mut self,
        var: &IndexVar,
        body: &ConcreteStmt,
        ws: &str,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        let l = self.result_sparse_level.expect("wlist loop implies sparse result");
        self.append_used = true;
        self.ensure_counter();
        let counter = self.counter_name();
        let val = map_val_name(ws);

        self.pos.insert((self.result.name().to_string(), l), Expr::var(&counter));
        self.map_drain_val.insert(ws.to_string(), val.clone());

        // Grow the crd (and value) arrays by doubling (Figure 8 lines 26-29).
        let crd = crd_name(self.result.name(), l);
        let mut inner = vec![Stmt::if_(
            Expr::len(&crd).le(Expr::var(&counter)),
            vec![Stmt::Realloc {
                arr: crd.clone(),
                len: (Expr::var(&counter) + Expr::int(1)) * Expr::int(2),
            }],
        )];
        inner.push(Stmt::store(&crd, Expr::var(&counter), Expr::var(var.name())));
        let lowered = if self.opts.kind == KernelKind::Fused {
            let vals = self.result.name().to_string();
            inner.push(Stmt::if_(
                Expr::len(&vals).le(Expr::var(&counter)),
                vec![Stmt::Realloc {
                    arr: vals.clone(),
                    len: (Expr::var(&counter) + Expr::int(1)) * Expr::int(2),
                }],
            ));
            self.lower_stmt(body, ctx)
        } else {
            // Assemble kernels append structure only.
            Ok(Vec::new())
        };
        self.map_drain_val.remove(ws);
        self.pos.remove(&(self.result.name().to_string(), l));
        inner.extend(lowered?);
        inner.push(Stmt::incr(&counter));

        Ok(vec![Stmt::MapDrainSorted {
            map: ws.to_string(),
            key: var.name().to_string(),
            val,
            body: inner,
        }])
    }

    fn ensure_counter(&mut self) {
        if !self.counter_declared {
            self.counter_declared = true;
            let c = self.counter_name();
            self.preamble.insert(0, Stmt::DeclInt(c, Expr::int(0)));
        }
    }

    // -- assignments ---------------------------------------------------------

    fn lower_assign(
        &mut self,
        lhs: &Access,
        op: AssignOp,
        rhs: &IndexExpr,
        ctx: &Ctx,
    ) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        let lhs_name = lhs.tensor().name().to_string();
        let assemble = self.opts.kind == KernelKind::Assemble;

        // Workspace with coordinate tracking: guard-insert (Figure 8
        // lines 15-18). Map workspaces track their own keys, so an assemble
        // kernel records the coordinate with a zero-valued put instead.
        if let Some(info) = self.workspaces.get(&lhs_name) {
            if info.kind != WorkspaceKind::Dense {
                if assemble {
                    out.push(Stmt::MapScatter {
                        map: lhs_name.clone(),
                        key: Expr::var(lhs.vars()[0].name()),
                        val: Expr::float(0.0),
                        add: false,
                    });
                }
            } else if info.needs_list && self.opts.kind != KernelKind::Compute {
                let coord = Expr::var(lhs.vars()[0].name());
                let sz = size_name(&lhs_name);
                out.push(Stmt::if_(
                    !Expr::load(set_name(&lhs_name), coord.clone()),
                    vec![
                        Stmt::store(list_name(&lhs_name), Expr::var(&sz), coord.clone()),
                        Stmt::assign(&sz, Expr::var(&sz) + Expr::int(1)),
                        Stmt::store(set_name(&lhs_name), coord, Expr::bool(true)),
                    ],
                ));
            }
        }
        // Appending to the sparse result inside a sparse-driven loop
        // (Figure 5a): write the coordinate (fused/assemble), then the
        // value, then bump the counter.
        let appending = ctx.append_result && lhs_name == self.result.name();
        if appending && self.opts.kind != KernelKind::Compute {
            let l = self.result_sparse_level.expect("append implies sparse result");
            let counter = self.counter_name();
            let crd = crd_name(&lhs_name, l);
            out.push(Stmt::if_(
                Expr::len(&crd).le(Expr::var(&counter)),
                vec![Stmt::Realloc {
                    arr: crd.clone(),
                    len: (Expr::var(&counter) + Expr::int(1)) * Expr::int(2),
                }],
            ));
            out.push(Stmt::store(&crd, Expr::var(&counter), Expr::var(lhs.vars()[l].name())));
            if self.opts.kind == KernelKind::Fused {
                out.push(Stmt::if_(
                    Expr::len(&lhs_name).le(Expr::var(&counter)),
                    vec![Stmt::Realloc {
                        arr: lhs_name.clone(),
                        len: (Expr::var(&counter) + Expr::int(1)) * Expr::int(2),
                    }],
                ));
            }
        }
        if assemble {
            // Symbolic kernels skip all value computation.
            if appending {
                out.push(Stmt::incr(&self.counter_name()));
            }
            return Ok(out);
        }

        let val = self.value_expr(rhs)?;

        if self.scalar_temps.contains(&lhs_name) {
            match op {
                AssignOp::Assign => out.push(Stmt::assign(&lhs_name, val)),
                AssignOp::Accum => {
                    out.push(Stmt::assign(&lhs_name, Expr::var(&lhs_name) + val))
                }
            }
        } else if self.workspaces.contains_key(&lhs_name) {
            if self.workspaces[&lhs_name].kind != WorkspaceKind::Dense {
                out.push(Stmt::MapScatter {
                    map: lhs_name.clone(),
                    key: Expr::var(lhs.vars()[0].name()),
                    val,
                    add: op == AssignOp::Accum,
                });
            } else {
                let off = self.ws_offset(lhs)?;
                match op {
                    AssignOp::Assign => out.push(Stmt::store(&lhs_name, off, val)),
                    AssignOp::Accum => out.push(Stmt::store_add(&lhs_name, off, val)),
                }
            }
        } else {
            // The result tensor.
            let l = self.result.rank() - 1;
            let pos = self.access_pos(lhs, l)?;
            match op {
                AssignOp::Assign => out.push(Stmt::store(&lhs_name, pos, val)),
                AssignOp::Accum => out.push(Stmt::store_add(&lhs_name, pos, val)),
            }
        }

        // Drain read workspaces (Figures 1d line 14, 5b line 16, 9 line 22).
        // Map workspaces are emptied by their `MapDrainSorted` loop instead.
        for a in rhs.accesses() {
            let name = a.tensor().name();
            if ctx.drains.iter().any(|d| d == name)
                && self.workspaces.get(name).is_some_and(|w| w.kind == WorkspaceKind::Dense)
            {
                let off = self.ws_offset(a)?;
                out.push(Stmt::store(name, off, Expr::float(0.0)));
            }
        }
        if appending {
            out.push(Stmt::incr(&self.counter_name()));
        }
        Ok(out)
    }

    fn value_expr(&mut self, e: &IndexExpr) -> Result<Expr> {
        Ok(match e {
            IndexExpr::Access(a) => {
                let name = a.tensor().name();
                if self.scalar_temps.contains(name) {
                    Expr::var(name)
                } else if let Some(v) = self.map_drain_val.get(name) {
                    // Inside this workspace's drain: the value is bound.
                    Expr::var(v)
                } else if self.workspaces.contains_key(name) {
                    let off = self.ws_offset(a)?;
                    Expr::load(name, off)
                } else {
                    let pos = self.access_pos(a, a.tensor().rank() - 1)?;
                    Expr::load(name, pos)
                }
            }
            IndexExpr::Literal(v) => Expr::float(*v),
            IndexExpr::Neg(a) => -self.value_expr(a)?,
            IndexExpr::Add(a, b) => self.value_expr(a)? + self.value_expr(b)?,
            IndexExpr::Sub(a, b) => self.value_expr(a)? - self.value_expr(b)?,
            IndexExpr::Mul(a, b) => self.value_expr(a)? * self.value_expr(b)?,
            IndexExpr::Sum(..) => {
                return Err(LowerError::Unsupported(
                    "Sum node in concrete index notation".to_string(),
                ))
            }
        })
    }

    /// Row-major offset into a dense workspace.
    fn ws_offset(&self, a: &Access) -> Result<Expr> {
        let info = &self.workspaces[a.tensor().name()];
        let mut off = Expr::var(a.vars()[0].name());
        for (n, v) in a.vars().iter().enumerate().skip(1) {
            off = off * info.dims[n].clone() + Expr::var(v.name());
        }
        Ok(off)
    }

    /// Position of `a` at storage `level`, asking each level for its access
    /// capability: locatable levels fold a dense offset from the bound index
    /// variable; all other levels need a position bound by an enclosing
    /// iteration (position loops, coiteration, or singleton pass-through).
    fn access_pos(&self, a: &Access, level: usize) -> Result<Expr> {
        let name = a.tensor().name();
        let fmt = a.tensor().format().clone();
        let mut pos = Expr::int(0);
        for l in 0..=level {
            if fmt.mode(l).has_locate() {
                let var = &a.vars()[fmt.mode_of_level(l)];
                if !self.enclosing.contains(var) {
                    return Err(LowerError::UnboundVariable {
                        tensor: name.to_string(),
                        var: var.name().to_string(),
                    });
                }
                let dim = Expr::var(dim_name(name, l));
                let v = Expr::var(var.name());
                pos = pos * dim + v;
            } else {
                pos = self
                    .pos
                    .get(&(name.to_string(), l))
                    .cloned()
                    .ok_or(LowerError::CannotLocateSparse {
                        tensor: name.to_string(),
                        level: l,
                    })?;
            }
        }
        Ok(pos)
    }

    /// Parent position of a compressed level being iterated: the position
    /// reached after resolving the level above it.
    fn parent_pos(&self, tensor: &str, level: usize) -> Result<Expr> {
        if level == 0 {
            return Ok(Expr::int(0));
        }
        let access = self
            .access_map
            .get(tensor)
            .cloned()
            .ok_or_else(|| LowerError::Unsupported(format!("unknown tensor `{tensor}`")))?;
        self.access_pos(&access, level - 1)
    }
}

// -- free helpers ------------------------------------------------------------

/// Dimension parameter of a *storage level* (for mode-reordered formats this
/// is `shape[mode_of_level(level)]`, bound by the runtime accordingly).
fn dim_name(tensor: &str, level: usize) -> String {
    format!("{tensor}{}_dim", level + 1)
}
fn pos_name(tensor: &str, level: usize) -> String {
    format!("{tensor}{}_pos", level + 1)
}
fn crd_name(tensor: &str, level: usize) -> String {
    format!("{tensor}{}_crd", level + 1)
}
fn pos_var(tensor: &str, level: usize) -> String {
    format!("p{tensor}{}", level + 1)
}
fn coord_var(var: &IndexVar, tensor: &str) -> String {
    format!("{}{}", var.name(), tensor)
}
fn list_name(ws: &str) -> String {
    format!("{ws}_list")
}
fn set_name(ws: &str) -> String {
    format!("{ws}_set")
}
fn size_name(ws: &str) -> String {
    format!("{ws}_size")
}
fn map_val_name(ws: &str) -> String {
    format!("{ws}_val")
}

fn collect_producer_written(stmt: &ConcreteStmt, in_producer: bool, out: &mut HashSet<String>) {
    match stmt {
        ConcreteStmt::Assign { lhs, .. } => {
            if in_producer {
                out.insert(lhs.tensor().name().to_string());
            }
        }
        ConcreteStmt::Forall { body, .. } => collect_producer_written(body, in_producer, out),
        ConcreteStmt::Where { consumer, producer } => {
            collect_producer_written(consumer, in_producer, out);
            collect_producer_written(producer, true, out);
        }
        ConcreteStmt::Sequence { first, second } => {
            collect_producer_written(first, in_producer, out);
            collect_producer_written(second, in_producer, out);
        }
    }
}

fn writes_tensor(stmt: &ConcreteStmt, name: &str) -> bool {
    stmt.written_tensors().iter().any(|t| t == name)
}

/// Tensors written by `stmt` outside any nested where-producer — the
/// temporaries a where statement is directly responsible for.
fn direct_written(stmt: &ConcreteStmt) -> Vec<String> {
    fn go(stmt: &ConcreteStmt, out: &mut Vec<String>) {
        match stmt {
            ConcreteStmt::Assign { lhs, .. } => {
                let name = lhs.tensor().name().to_string();
                if !out.contains(&name) {
                    out.push(name);
                }
            }
            ConcreteStmt::Forall { body, .. } => go(body, out),
            // A nested where's producer writes belong to that where.
            ConcreteStmt::Where { consumer, .. } => go(consumer, out),
            ConcreteStmt::Sequence { first, second } => {
                go(first, out);
                go(second, out);
            }
        }
    }
    let mut out = Vec::new();
    go(stmt, &mut out);
    out
}

/// True if the where-consumer assigns the workspace's values into the
/// result.
/// True when the consumer's loop over the result's sparse-level variable
/// has no sparse operand driving it, so assembly must iterate the
/// workspace's coordinate list (Figure 8 lines 22–36). When another
/// tensor's sparsity drives that loop, result coordinates come from the
/// driver's `crd` array instead and the list/guard machinery would be
/// emitted but never consumed — and its guard never reset.
fn consumer_wlist_driven(consumer: &ConcreteStmt, rv: &IndexVar) -> bool {
    let mut driven = false;
    consumer.visit(&mut |s| {
        if let ConcreteStmt::Forall { var, body, .. } = s {
            if var == rv {
                let lattice = match combined_rhs(body, var) {
                    Some(e) => MergeLattice::build(&e, var),
                    None => MergeLattice { points: Vec::new() },
                };
                if lattice.points.is_empty() || lattice.is_dense() {
                    driven = true;
                }
            }
        }
    });
    driven
}

fn consumer_feeds_result(consumer: &ConcreteStmt, ws: &str, result: &str) -> bool {
    let mut feeds = false;
    consumer.visit(&mut |s| {
        if let ConcreteStmt::Assign { lhs, rhs, .. } = s {
            if lhs.tensor().name() == result && rhs.uses_tensor(ws) {
                feeds = true;
            }
        }
    });
    feeds
}

/// Folds the assignment right-hand sides in the statement into one
/// expression for iterator analysis at `v`, *substituting workspace reads
/// with their producers' expressions*.
///
/// A where-consumer's contribution at an outer loop variable is gated by
/// what its producer computed there: in Figure 9 the consumer
/// `A(i,j) += w(j)*D(k,j)` only contributes where `w` is nonzero, i.e.
/// where `B(i,k,l)*C(l,j)` has entries — so the `i` and `k` loops iterate
/// `B`'s sparse hierarchy, not a union with the dense `D`. Substituting
/// `w -> B*C` recovers exactly the pre-transformation expression, whose
/// lattice gives the correct iteration domains (the workspace
/// transformation preserves semantics). Only workspaces *produced inside
/// this statement* are substituted; reads of workspaces produced by
/// enclosing statements stay dense accesses (they drive dense or
/// coordinate-list loops).
///
/// Expressions that do not use `v` at all constrain nothing at this loop
/// and are dropped.
fn combined_rhs(stmt: &ConcreteStmt, v: &IndexVar) -> Option<IndexExpr> {
    let mut env: HashMap<String, IndexExpr> = HashMap::new();
    let mut exprs: Vec<IndexExpr> = Vec::new();
    collect_substituted(stmt, &mut env, &mut exprs);
    exprs
        .into_iter()
        .filter(|e| e.uses_var(v))
        .reduce(|a, b| IndexExpr::Add(Box::new(a), Box::new(b)))
}

/// Walks the statement in execution order, recording substituted producer
/// expressions per written tensor and collecting every assignment's
/// substituted rhs.
fn collect_substituted(
    stmt: &ConcreteStmt,
    env: &mut HashMap<String, IndexExpr>,
    out: &mut Vec<IndexExpr>,
) {
    match stmt {
        ConcreteStmt::Assign { lhs, rhs, .. } => {
            let sub = subst_expr(rhs, env);
            out.push(sub.clone());
            let name = lhs.tensor().name().to_string();
            // Accumulating writes extend the tensor's definition (sequence
            // statements: `w = B ; w += C` defines w as B + C).
            let def = match env.remove(&name) {
                Some(prev) => IndexExpr::Add(Box::new(prev), Box::new(sub)),
                None => sub,
            };
            env.insert(name, def);
        }
        ConcreteStmt::Forall { body, .. } => collect_substituted(body, env, out),
        ConcreteStmt::Where { consumer, producer } => {
            collect_substituted(producer, env, out);
            collect_substituted(consumer, env, out);
        }
        ConcreteStmt::Sequence { first, second } => {
            collect_substituted(first, env, out);
            collect_substituted(second, env, out);
        }
    }
}

/// Replaces reads of defined tensors with their definitions (for lattice
/// analysis only — index variables are not remapped).
fn subst_expr(e: &IndexExpr, env: &HashMap<String, IndexExpr>) -> IndexExpr {
    match e {
        IndexExpr::Access(a) => match env.get(a.tensor().name()) {
            Some(def) => def.clone(),
            None => e.clone(),
        },
        IndexExpr::Literal(_) => e.clone(),
        IndexExpr::Neg(a) => IndexExpr::Neg(Box::new(subst_expr(a, env))),
        IndexExpr::Add(a, b) => {
            IndexExpr::Add(Box::new(subst_expr(a, env)), Box::new(subst_expr(b, env)))
        }
        IndexExpr::Sub(a, b) => {
            IndexExpr::Sub(Box::new(subst_expr(a, env)), Box::new(subst_expr(b, env)))
        }
        IndexExpr::Mul(a, b) => {
            IndexExpr::Mul(Box::new(subst_expr(a, env)), Box::new(subst_expr(b, env)))
        }
        IndexExpr::Sum(..) => unreachable!("concrete index notation contains no Sum nodes"),
    }
}

/// Symbolically zeroes the `absent` tensors in the statement, simplifying
/// expressions; returns `None` when the whole statement vanishes
/// (Section VI: "the concrete index notation substatement is rewritten to
/// remove them by symbolically setting them to zero").
fn restrict_stmt(stmt: &ConcreteStmt, absent: &HashSet<String>) -> Option<ConcreteStmt> {
    match stmt {
        ConcreteStmt::Assign { lhs, op, rhs } => match restrict_expr(rhs, absent) {
            Some(r) => Some(ConcreteStmt::Assign { lhs: lhs.clone(), op: *op, rhs: r }),
            None => match op {
                AssignOp::Accum => None,
                AssignOp::Assign => Some(ConcreteStmt::Assign {
                    lhs: lhs.clone(),
                    op: *op,
                    rhs: IndexExpr::Literal(0.0),
                }),
            },
        },
        ConcreteStmt::Forall { var, body, parallel } => {
            restrict_stmt(body, absent).map(|b| ConcreteStmt::Forall {
                var: var.clone(),
                body: Box::new(b),
                parallel: *parallel,
            })
        }
        ConcreteStmt::Where { consumer, producer } => {
            let c = restrict_stmt(consumer, absent)?;
            match restrict_stmt(producer, absent) {
                Some(p) => Some(ConcreteStmt::where_(c, p)),
                None => Some(c),
            }
        }
        ConcreteStmt::Sequence { first, second } => {
            match (restrict_stmt(first, absent), restrict_stmt(second, absent)) {
                (Some(f), Some(s)) => Some(ConcreteStmt::sequence(f, s)),
                (Some(f), None) => Some(f),
                (None, Some(s)) => Some(s),
                (None, None) => None,
            }
        }
    }
}

fn restrict_expr(e: &IndexExpr, absent: &HashSet<String>) -> Option<IndexExpr> {
    match e {
        IndexExpr::Access(a) => {
            if absent.contains(a.tensor().name()) {
                None
            } else {
                Some(e.clone())
            }
        }
        IndexExpr::Literal(_) => Some(e.clone()),
        IndexExpr::Neg(a) => restrict_expr(a, absent).map(|r| IndexExpr::Neg(Box::new(r))),
        IndexExpr::Add(a, b) => match (restrict_expr(a, absent), restrict_expr(b, absent)) {
            (Some(x), Some(y)) => Some(IndexExpr::Add(Box::new(x), Box::new(y))),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        },
        IndexExpr::Sub(a, b) => match (restrict_expr(a, absent), restrict_expr(b, absent)) {
            (Some(x), Some(y)) => Some(IndexExpr::Sub(Box::new(x), Box::new(y))),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(IndexExpr::Neg(Box::new(y))),
            (None, None) => None,
        },
        IndexExpr::Mul(a, b) => match (restrict_expr(a, absent), restrict_expr(b, absent)) {
            (Some(x), Some(y)) => Some(IndexExpr::Mul(Box::new(x), Box::new(y))),
            _ => None,
        },
        IndexExpr::Sum(..) => unreachable!("concrete index notation contains no Sum nodes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_ir::concretize::concretize;
    use taco_ir::expr::sum;
    use taco_ir::notation::IndexAssignment;
    use taco_ir::transform;
    use taco_tensor::Format;

    fn iv(n: &str) -> IndexVar {
        IndexVar::new(n)
    }

    fn scheduled_spgemm(n: usize) -> ConcreteStmt {
        let a = TensorVar::new("A", vec![n, n], Format::csr());
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j, k) = (iv("i"), iv("j"), iv("k"));
        let mul = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
        let s = concretize(&IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(k.clone(), mul.clone()),
        ))
        .unwrap();
        let s = transform::reorder(&s, &k, &j).unwrap();
        let w = TensorVar::new("w", vec![n], Format::dvec());
        transform::precompute(&s, &mul, &[(j.clone(), j.clone(), j.clone())], &w).unwrap()
    }

    #[test]
    fn parameter_naming_convention() {
        let lk = lower(&scheduled_spgemm(8), &LowerOptions::fused("k")).unwrap();
        let names: Vec<&str> =
            lk.kernel.array_params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["B2_pos", "B2_crd", "B", "C2_pos", "C2_crd", "C", "A2_pos", "A2_crd", "A"]
        );
        assert_eq!(
            lk.kernel.scalar_params,
            ["B1_dim", "B2_dim", "C1_dim", "C2_dim", "A1_dim", "A2_dim"]
        );
        assert_eq!(lk.nnz_output.as_deref(), Some("pA2"));
    }

    #[test]
    fn operand_order_is_first_use() {
        let lk = lower(&scheduled_spgemm(8), &LowerOptions::fused("k")).unwrap();
        let ops: Vec<&str> = lk.operands.iter().map(|t| t.name()).collect();
        assert_eq!(ops, ["B", "C"]);
        assert_eq!(lk.result.name(), "A");
    }

    #[test]
    fn assemble_kernel_has_no_value_arrays() {
        let lk = lower(&scheduled_spgemm(8), &LowerOptions::assemble("k")).unwrap();
        let names: Vec<&str> =
            lk.kernel.array_params.iter().map(|p| p.name.as_str()).collect();
        assert!(!names.contains(&"B"), "operand values excluded: {names:?}");
        assert!(!names.contains(&"A"), "result values excluded: {names:?}");
        assert!(names.contains(&"A2_crd"));
        // No floating point stores anywhere in the body.
        assert!(!lk.kernel.to_c().contains("A["));
    }

    #[test]
    fn compute_kernel_takes_preassembled_structure_as_input() {
        let lk = lower(&scheduled_spgemm(8), &LowerOptions::compute("k")).unwrap();
        let pos = lk
            .kernel
            .array_params
            .iter()
            .find(|p| p.name == "A2_pos")
            .expect("pos param exists");
        assert_eq!(pos.kind, taco_llir::ParamKind::Input);
        assert!(lk.nnz_output.is_none());
    }

    #[test]
    fn unsorted_option_drops_the_sort() {
        let sorted = lower(&scheduled_spgemm(8), &LowerOptions::fused("k")).unwrap();
        let unsorted =
            lower(&scheduled_spgemm(8), &LowerOptions::fused("k").unsorted()).unwrap();
        assert!(sorted.kernel.to_c().contains("taco_sort_i32("));
        assert!(!unsorted.kernel.to_c().contains("taco_sort_i32("));
    }

    #[test]
    fn f32_workspace_allocates_float() {
        let lk = lower(
            &scheduled_spgemm(8),
            &LowerOptions::fused("k").with_f32_workspaces(),
        )
        .unwrap();
        assert!(lk.kernel.to_c().contains("float* restrict w"));
    }

    #[test]
    fn dense_union_is_rejected() {
        // a(i) = b(i) + d(i) with sparse b and dense d coiterated at i.
        let n = 8;
        let a = TensorVar::new("a", vec![n], Format::svec());
        let b = TensorVar::new("b", vec![n], Format::svec());
        let d = TensorVar::new("d", vec![n], Format::dvec());
        let i = iv("i");
        let s = concretize(&IndexAssignment::assign(
            a.access([i.clone()]),
            b.access([i.clone()]) + d.access([i.clone()]),
        ))
        .unwrap();
        assert_eq!(
            lower(&s, &LowerOptions::fused("k")).unwrap_err(),
            LowerError::DenseUnionUnsupported("i".into())
        );
    }

    #[test]
    fn non_innermost_compressed_result_is_rejected() {
        // A result in (s, d) format: compressed level is not innermost.
        let n = 8;
        let a = TensorVar::new(
            "A",
            vec![n, n],
            Format::new(vec![
                taco_tensor::LevelType::Compressed,
                taco_tensor::LevelType::Dense,
            ]),
        );
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let s = concretize(&IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            IndexExpr::from(b.access([i.clone(), j.clone()])),
        ))
        .unwrap();
        assert_eq!(
            lower(&s, &LowerOptions::compute("k")).unwrap_err(),
            LowerError::UnsupportedResultFormat("A".into())
        );
    }

    #[test]
    fn restrict_stmt_zeroes_absent_operands() {
        let n = 4;
        let a = TensorVar::new("a", vec![n], Format::dvec());
        let b = TensorVar::new("b", vec![n], Format::svec());
        let c = TensorVar::new("c", vec![n], Format::svec());
        let i = iv("i");
        let stmt = ConcreteStmt::assign(
            a.access([i.clone()]),
            AssignOp::Assign,
            b.access([i.clone()]) + c.access([i.clone()]),
        );
        let mut absent = HashSet::new();
        absent.insert("c".to_string());
        let restricted = restrict_stmt(&stmt, &absent).unwrap();
        match restricted {
            ConcreteStmt::Assign { rhs, .. } => assert_eq!(rhs.to_string(), "b(i)"),
            other => panic!("expected assignment, got {other:?}"),
        }
        // Zeroing everything drops an accumulation entirely.
        absent.insert("b".to_string());
        let accum = ConcreteStmt::assign(
            a.access([i.clone()]),
            AssignOp::Accum,
            b.access([i.clone()]) + c.access([i.clone()]),
        );
        assert!(restrict_stmt(&accum, &absent).is_none());
    }

    #[test]
    fn combined_rhs_substitutes_workspace_producers() {
        // The MTTKRP consumer's lattice at k must see B through w.
        let n = 8;
        let a = TensorVar::new("A", vec![n, n], Format::dense(2));
        let b = TensorVar::new("B", vec![n, n, n], Format::csf3());
        let c = TensorVar::new("C", vec![n, n], Format::dense(2));
        let d = TensorVar::new("D", vec![n, n], Format::dense(2));
        let (i, j, k, l) = (iv("i"), iv("j"), iv("k"), iv("l"));
        let bc = b.access([i.clone(), k.clone(), l.clone()]) * c.access([l.clone(), j.clone()]);
        let s = concretize(&IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(k.clone(), sum(l.clone(), bc.clone() * d.access([k.clone(), j.clone()]))),
        ))
        .unwrap();
        let s = transform::reorder(&s, &j, &k).unwrap();
        let s = transform::reorder(&s, &j, &l).unwrap();
        let w = TensorVar::new("w", vec![n], Format::dvec());
        let s = transform::precompute(&s, &bc, &[(j.clone(), j.clone(), j.clone())], &w).unwrap();

        // Drill to the ∀k body (below ∀i).
        let ConcreteStmt::Forall { body: bi, .. } = &s else { panic!("expected ∀i") };
        let ConcreteStmt::Forall { var, body: bk, .. } = &**bi else { panic!("expected ∀k") };
        assert_eq!(var.name(), "k");
        let combined = combined_rhs(bk, &iv("k")).expect("k used");
        let lat = MergeLattice::build(&combined, &iv("k"));
        // Single intersection point driven by B's level 1 — no dense union
        // from the consumer's D access.
        assert!(!lat.has_dense_union());
        assert_eq!(lat.loop_points().len(), 1);
        assert_eq!(lat.loop_points()[0].iters[0].tensor, "B");
    }
}
