//! Lowering from concrete index notation to imperative IR (Section VI of
//! *Tensor Algebra Compilation with Workspaces*, CGO 2019).
//!
//! The lowerer recurses on concrete index notation statements:
//!
//! * **assignment** statements are emitted as scalar code;
//! * **where** statements emit the producer side followed by the consumer
//!   side, materializing the workspace (dense array, coordinate list and
//!   guard array as needed);
//! * **sequence** statements emit the left-hand side followed by the
//!   right-hand side;
//! * **forall** statements coiterate the sparse data structures of the
//!   tensor modes indexed by the forall's variable, using
//!   [merge lattices](lattice::MergeLattice): multiplications iterate the
//!   intersection of their operands' coordinates, additions the union.
//!
//! Three kernel kinds are generated, mirroring the paper's discussion of
//! assembly (Section VI, Figure 8):
//!
//! * [`KernelKind::Compute`] — result index structures are pre-assembled;
//!   the kernel only computes values (Figures 1c, 1d, 5, 9, 10).
//! * [`KernelKind::Assemble`] — the symbolic kernel that assembles the
//!   result's `pos`/`crd` arrays using workspace coordinate lists and guard
//!   arrays (Figure 8).
//! * [`KernelKind::Fused`] — assembles and computes simultaneously, as the
//!   paper's SpGEMM evaluation does ("the workspace algorithm fuses assembly
//!   of the output matrix with the computation", Section VIII-B).

#![warn(missing_docs)]

mod error;
pub mod lattice;
mod lower;

pub use error::LowerError;
pub use lower::{lower, KernelKind, LowerOptions, LoweredKernel, WorkspaceMeta};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, LowerError>;
