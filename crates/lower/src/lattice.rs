//! Merge lattices for coiterating sparse data structures (paper Section VI,
//! building on taco \[4, Section 5\]).
//!
//! A forall over variable `v` must coiterate every compressed tensor mode
//! indexed by `v`. The expression structure determines how: multiplication
//! iterates the *intersection* of its operands' coordinate sets (a zero
//! operand annihilates the term), addition the *union* (either operand may
//! contribute alone). A [`MergeLattice`] enumerates the combinations of
//! "still present" iterators as [`LatticePoint`]s, each carrying the
//! sub-expression that remains when the other operands are exhausted
//! (symbolically zero).

use taco_ir::expr::{IndexExpr, IndexVar};

/// Identity of one sparse level iterator: a tensor storage level reached at
/// the current forall variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IterKey {
    /// Tensor name.
    pub tensor: String,
    /// Storage level iterated (under a non-identity mode order this differs
    /// from the mode index).
    pub level: usize,
}

/// One lattice point: a set of iterators that are simultaneously present,
/// and the expression evaluated when exactly those (or a superset) remain.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticePoint {
    /// Present iterators, sorted and deduplicated.
    pub iters: Vec<IterKey>,
    /// Sub-expression with exhausted operands removed.
    pub expr: IndexExpr,
}

impl LatticePoint {
    fn new(mut iters: Vec<IterKey>, expr: IndexExpr) -> LatticePoint {
        iters.sort();
        iters.dedup();
        LatticePoint { iters, expr }
    }

    /// True if `other`'s iterators are a subset of this point's.
    pub fn dominates(&self, other: &LatticePoint) -> bool {
        other.iters.iter().all(|it| self.iters.contains(it))
    }
}

/// The merge lattice of an expression at one forall variable.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeLattice {
    /// Lattice points ordered by decreasing iterator-set size (the full
    /// point first).
    pub points: Vec<LatticePoint>,
}

impl MergeLattice {
    /// Builds the merge lattice of `expr` at variable `v`.
    ///
    /// Accesses whose storage level at `v` lacks the locate capability
    /// (compressed, singleton, hashed) become iterators; dense levels,
    /// literals and accesses that do not use `v` are *locate* terms carried
    /// by every point that contains them multiplicatively.
    pub fn build(expr: &IndexExpr, v: &IndexVar) -> MergeLattice {
        let mut points = build_points(expr, v);
        // Deduplicate by iterator set, preferring the expression with the
        // most addends (the pairwise union point subsumes the singles).
        points.sort_by(|a, b| {
            b.iters
                .len()
                .cmp(&a.iters.len())
                .then_with(|| a.iters.cmp(&b.iters))
                .then_with(|| b.expr.addends().len().cmp(&a.expr.addends().len()))
        });
        points.dedup_by(|a, b| a.iters == b.iters);
        MergeLattice { points }
    }

    /// True if the lattice has no compressed iterators at all (a dense
    /// loop suffices).
    pub fn is_dense(&self) -> bool {
        self.points.iter().all(|p| p.iters.is_empty())
    }

    /// True if a union requires a dense operand (an empty-iterator point
    /// coexists with iterator points) — e.g. `sparse + dense`.
    pub fn has_dense_union(&self) -> bool {
        let has_empty = self.points.iter().any(|p| p.iters.is_empty());
        let has_iters = self.points.iter().any(|p| !p.iters.is_empty());
        has_empty && has_iters
    }

    /// All distinct iterators in the lattice.
    pub fn iterators(&self) -> Vec<IterKey> {
        let mut out: Vec<IterKey> = Vec::new();
        for p in &self.points {
            for it in &p.iters {
                if !out.contains(it) {
                    out.push(it.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// The sub-points of `point`: lattice points whose iterators are a
    /// nonempty subset of the given point's, in decreasing size order
    /// (including the point itself).
    pub fn sub_points(&self, point: &LatticePoint) -> Vec<&LatticePoint> {
        self.points
            .iter()
            .filter(|q| !q.iters.is_empty() && point.dominates(q))
            .collect()
    }

    /// The loop points: every point with at least one iterator, in lattice
    /// order. Each becomes one `while` loop (paper Figure 5a's three loops).
    pub fn loop_points(&self) -> Vec<&LatticePoint> {
        self.points.iter().filter(|p| !p.iters.is_empty()).collect()
    }
}

fn build_points(expr: &IndexExpr, v: &IndexVar) -> Vec<LatticePoint> {
    match expr {
        IndexExpr::Access(a) => {
            let iters = match a.mode_of(v) {
                Some(m) => {
                    // Map the mode index to its storage level and ask the
                    // level for its capabilities: anything without locate
                    // must be iterated.
                    let fmt = a.tensor().format();
                    let level = fmt.level_of_mode(m);
                    if fmt.mode(level).has_locate() {
                        Vec::new()
                    } else {
                        vec![IterKey { tensor: a.tensor().name().to_string(), level }]
                    }
                }
                None => Vec::new(),
            };
            vec![LatticePoint::new(iters, expr.clone())]
        }
        IndexExpr::Literal(_) => vec![LatticePoint::new(Vec::new(), expr.clone())],
        IndexExpr::Neg(inner) => build_points(inner, v)
            .into_iter()
            .map(|p| LatticePoint::new(p.iters, IndexExpr::Neg(Box::new(p.expr))))
            .collect(),
        IndexExpr::Mul(a, b) => {
            let pa = build_points(a, v);
            let pb = build_points(b, v);
            let mut out = Vec::new();
            for x in &pa {
                for y in &pb {
                    let mut iters = x.iters.clone();
                    iters.extend(y.iters.clone());
                    out.push(LatticePoint::new(
                        iters,
                        IndexExpr::Mul(Box::new(x.expr.clone()), Box::new(y.expr.clone())),
                    ));
                }
            }
            out
        }
        IndexExpr::Add(a, b) | IndexExpr::Sub(a, b) => {
            let sub = matches!(expr, IndexExpr::Sub(..));
            let pa = build_points(a, v);
            let pb = build_points(b, v);
            let mut out = Vec::new();
            for x in &pa {
                for y in &pb {
                    let mut iters = x.iters.clone();
                    iters.extend(y.iters.clone());
                    let e = if sub {
                        IndexExpr::Sub(Box::new(x.expr.clone()), Box::new(y.expr.clone()))
                    } else {
                        IndexExpr::Add(Box::new(x.expr.clone()), Box::new(y.expr.clone()))
                    };
                    out.push(LatticePoint::new(iters, e));
                }
            }
            out.extend(pa);
            for y in pb {
                let e = if sub { IndexExpr::Neg(Box::new(y.expr)) } else { y.expr };
                out.push(LatticePoint::new(y.iters, e));
            }
            out
        }
        IndexExpr::Sum(..) => {
            unreachable!("concrete index notation contains no Sum nodes")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_ir::expr::TensorVar;
    use taco_tensor::Format;

    fn iv(n: &str) -> IndexVar {
        IndexVar::new(n)
    }

    fn key(t: &str, l: usize) -> IterKey {
        IterKey { tensor: t.into(), level: l }
    }

    #[test]
    fn multiplication_is_intersection() {
        // a(i) += B(i,j) * C(i,j): at j, one point {B2, C2}.
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let e = b.access([i.clone(), j.clone()]) * c.access([i, j.clone()]);
        let lat = MergeLattice::build(&e, &j);
        assert_eq!(lat.points.len(), 1);
        assert_eq!(lat.points[0].iters, vec![key("B", 1), key("C", 1)]);
        assert!(!lat.is_dense());
        assert!(!lat.has_dense_union());
    }

    #[test]
    fn addition_is_union_with_three_points() {
        // A(i,j) = B(i,j) + C(i,j): at j, points {B,C}, {B}, {C} — the three
        // loops of Figure 5a.
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let e = b.access([i.clone(), j.clone()]) + c.access([i, j.clone()]);
        let lat = MergeLattice::build(&e, &j);
        assert_eq!(lat.points.len(), 3);
        assert_eq!(lat.points[0].iters, vec![key("B", 1), key("C", 1)]);
        assert_eq!(lat.points[0].expr.to_string(), "B(i,j) + C(i,j)");
        assert_eq!(lat.points[1].iters, vec![key("B", 1)]);
        assert_eq!(lat.points[1].expr.to_string(), "B(i,j)");
        assert_eq!(lat.points[2].iters, vec![key("C", 1)]);
        assert_eq!(lat.loop_points().len(), 3);
    }

    #[test]
    fn dense_operand_multiplies_into_every_point() {
        // B(i,j) * d(j) with dense d: still one point {B2}, d located.
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let d = TensorVar::new("d", vec![4], Format::dvec());
        let (i, j) = (iv("i"), iv("j"));
        let e = b.access([i, j.clone()]) * d.access([j.clone()]);
        let lat = MergeLattice::build(&e, &j);
        assert_eq!(lat.points.len(), 1);
        assert_eq!(lat.points[0].iters, vec![key("B", 1)]);
        assert_eq!(lat.points[0].expr.to_string(), "B(i,j) * d(j)");
    }

    #[test]
    fn vars_not_at_this_level_are_locates() {
        // At i, C(k,j) does not use i: locate.
        let b = TensorVar::new("B", vec![4, 4], Format::dcsr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let (i, j, k) = (iv("i"), iv("j"), iv("k"));
        let e = b.access([i.clone(), k.clone()]) * c.access([k, j]);
        let lat = MergeLattice::build(&e, &i);
        assert_eq!(lat.points.len(), 1);
        assert_eq!(lat.points[0].iters, vec![key("B", 0)]);
    }

    #[test]
    fn dense_expression_has_dense_lattice() {
        let c = TensorVar::new("C", vec![4, 4], Format::dense(2));
        let d = TensorVar::new("D", vec![4, 4], Format::dense(2));
        let (k, j) = (iv("k"), iv("j"));
        let e = c.access([k.clone(), j.clone()]) + d.access([k, j.clone()]);
        let lat = MergeLattice::build(&e, &j);
        assert!(lat.is_dense());
        assert!(!lat.has_dense_union());
    }

    #[test]
    fn sparse_plus_dense_is_dense_union() {
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let d = TensorVar::new("d", vec![4], Format::dvec());
        let (i, j) = (iv("i"), iv("j"));
        let e = b.access([i, j.clone()]) + d.access([j.clone()]);
        let lat = MergeLattice::build(&e, &j);
        assert!(lat.has_dense_union());
    }

    #[test]
    fn mixed_product_sum_lattice() {
        // B*C + D at j (all compressed at j): points {B,C,D}?, {B,C}, {D}.
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let d = TensorVar::new("D", vec![4, 4], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let e = b.access([i.clone(), j.clone()]) * c.access([i.clone(), j.clone()])
            + d.access([i, j.clone()]);
        let lat = MergeLattice::build(&e, &j);
        let sets: Vec<usize> = lat.points.iter().map(|p| p.iters.len()).collect();
        assert_eq!(sets, vec![3, 2, 1]);
        // In the full loop, the sub-point chain covers all three points.
        assert_eq!(lat.sub_points(&lat.points[0]).len(), 3);
        // In the {B,C} tail loop only {B,C} applies.
        assert_eq!(lat.sub_points(&lat.points[1]).len(), 1);
    }

    #[test]
    fn union_three_way_has_seven_points() {
        let fmt = Format::csr();
        let (i, j) = (iv("i"), iv("j"));
        let ts: Vec<TensorVar> =
            (0..3).map(|n| TensorVar::new(format!("T{n}"), vec![4, 4], fmt.clone())).collect();
        let e = IndexExpr::sum_of(
            ts.iter().map(|t| IndexExpr::Access(t.access([i.clone(), j.clone()]))).collect(),
        );
        let lat = MergeLattice::build(&e, &j);
        assert_eq!(lat.points.len(), 7);
        assert_eq!(lat.points[0].iters.len(), 3);
    }

    #[test]
    fn subtraction_negates_lone_subtrahend() {
        let b = TensorVar::new("b", vec![4], Format::svec());
        let c = TensorVar::new("c", vec![4], Format::svec());
        let i = iv("i");
        let e = IndexExpr::Sub(
            Box::new(b.access([i.clone()]).into()),
            Box::new(c.access([i.clone()]).into()),
        );
        let lat = MergeLattice::build(&e, &i);
        let lone_c = lat.points.iter().find(|p| p.iters == vec![key("c", 0)]).unwrap();
        assert_eq!(lone_c.expr.to_string(), "-c(i)");
    }
}
