//! Workspace reset obligations and pos-counter monotonicity.
//!
//! Section VI of the paper: a workspace is allocated zero-filled once, and
//! every loop iteration that *assumes* it clean (reads it, or accumulates
//! into it) must also restore it to clean before the iteration ends —
//! otherwise the next iteration observes stale values. The check runs per
//! *phase loop*: each top-level loop of the kernel that uses a workspace
//! allocated before it.
//!
//! An iteration restores cleanliness through one of three *drain* idioms
//! the lowerer emits (or a `memset`):
//!
//! * **full-range drain** — `for (j = 0; j < D; j++) w[j] = 0;` where `D`
//!   provably covers the allocation length;
//! * **list drain** — iterate the guarded-insert coordinate list and zero
//!   the workspace (and guard set) at each listed coordinate (Figure 8
//!   lines 17–23);
//! * **structure drain** — iterate one row segment of a `pos`/`crd`
//!   structure and zero the workspace at each stored coordinate. This is
//!   sound only if the structure covers every coordinate the iteration
//!   dirtied; the verifier records that as a named assumption.
//!
//! Separately, every scalar counter stored into a kernel-written `*_pos`
//! array must be provably non-decreasing, or the assembled `pos` array
//! would not be monotone ([`VerifyError::PosNotMonotone`]).

use std::collections::{HashMap, HashSet};

use taco_llir::{stmt_to_c, BinOp, Expr, Kernel, Stmt};

use crate::assume::Assumptions;
use crate::dataflow::{visit_stmts, Group};
use crate::error::{Diagnostic, Severity, VerifyError};
use crate::sym::{Atom, Bounds, Sym};

/// Cleanliness of a workspace array in the exit simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Z {
    Clean,
    Dirty,
}

/// What a loop iteration requires of a workspace at its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Req {
    /// First relevant use defines the whole array (memset) — no obligation.
    Defines,
    /// The iteration reads or accumulates before any full definition.
    Reads,
    /// The array is untouched.
    Nothing,
}

/// A tiny expression evaluator for the pass: scalar parameters become
/// canonical dimension atoms, everything opaque gets a fresh atom.
fn eval_static(e: &Expr, assume: &Assumptions, fresh: &mut u64) -> Sym {
    match e {
        Expr::Int(v) => Sym::int(*v),
        Expr::Var(v) => Sym::var(assume.canon_dim(v)),
        Expr::Len(arr) => Sym::len(arr.clone()),
        Expr::Bin(BinOp::Add, a, b) => {
            eval_static(a, assume, fresh).add(&eval_static(b, assume, fresh))
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            eval_static(a, assume, fresh).sub(&eval_static(b, assume, fresh))
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            eval_static(a, assume, fresh).mul(&eval_static(b, assume, fresh))
        }
        _ => {
            *fresh += 1;
            Sym::atom(Atom::Opaque(*fresh))
        }
    }
}

fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::Int(0) | Expr::Bool(false)) || matches!(e, Expr::Float(v) if *v == 0.0)
}

fn expr_reads(e: &Expr, arr: &str) -> bool {
    match e {
        Expr::Load(a, idx) => a == arr || expr_reads(idx, arr),
        Expr::Un(_, a) => expr_reads(a, arr),
        Expr::Bin(_, a, b) => expr_reads(a, arr) || expr_reads(b, arr),
        _ => false,
    }
}

fn stmt_uses(s: &Stmt, arr: &str) -> bool {
    let mut used = false;
    visit_stmts(std::slice::from_ref(s), &mut |s| {
        let exprs: Vec<&Expr> = match s {
            Stmt::DeclInt(_, e)
            | Stmt::DeclFloat(_, e)
            | Stmt::DeclBool(_, e)
            | Stmt::Assign(_, e) => vec![e],
            Stmt::Store { arr: a, idx, val } | Stmt::StoreAdd { arr: a, idx, val } => {
                if a == arr {
                    used = true;
                }
                vec![idx, val]
            }
            Stmt::For { lo, hi, .. } | Stmt::ParallelFor { lo, hi, .. } => vec![lo, hi],
            Stmt::While { cond, .. } | Stmt::If { cond, .. } => vec![cond],
            Stmt::Memset { arr: a, val } => {
                if a == arr {
                    used = true;
                }
                vec![val]
            }
            Stmt::Alloc { len, .. } => vec![len],
            Stmt::Realloc { arr: a, len } => {
                if a == arr {
                    used = true;
                }
                vec![len]
            }
            Stmt::Sort { arr: a, lo, hi } => {
                if a == arr {
                    used = true;
                }
                vec![lo, hi]
            }
            Stmt::MapInit { capacity, .. } => vec![capacity],
            Stmt::MapScatter { key, val, .. } => vec![key, val],
            // Drain bodies are visited by the surrounding recursion.
            Stmt::MapDrainSorted { .. } => vec![],
            Stmt::Comment(_) => vec![],
        };
        if exprs.iter().any(|e| expr_reads(e, arr)) {
            used = true;
        }
    });
    used
}

/// What the block requires of `arr` at entry, scanning in order.
fn requirement(block: &[Stmt], arr: &str) -> Req {
    for s in block {
        let req = stmt_requirement(s, arr);
        if req != Req::Nothing {
            return req;
        }
    }
    Req::Nothing
}

fn stmt_requirement(s: &Stmt, arr: &str) -> Req {
    let reads_any = |exprs: &[&Expr]| exprs.iter().any(|e| expr_reads(e, arr));
    match s {
        Stmt::DeclInt(_, e) | Stmt::DeclFloat(_, e) | Stmt::DeclBool(_, e) | Stmt::Assign(_, e) => {
            if expr_reads(e, arr) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::Store { arr: a, idx, val } => {
            if reads_any(&[idx, val]) {
                Req::Reads
            } else {
                // A plain store to `arr` neither requires nor establishes
                // cleanliness of the whole array.
                let _ = a;
                Req::Nothing
            }
        }
        Stmt::StoreAdd { arr: a, idx, val } => {
            if a == arr || reads_any(&[idx, val]) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::Memset { arr: a, val } => {
            if a == arr {
                Req::Defines
            } else if expr_reads(val, arr) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::Alloc { arr: a, len, .. } => {
            if a == arr {
                Req::Defines
            } else if expr_reads(len, arr) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::Realloc { len, .. } => {
            if expr_reads(len, arr) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::Sort { lo, hi, .. } => {
            if reads_any(&[lo, hi]) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::For { lo, hi, body, .. } | Stmt::ParallelFor { lo, hi, body, .. } => {
            if reads_any(&[lo, hi]) {
                return Req::Reads;
            }
            match requirement(body, arr) {
                Req::Reads => Req::Reads,
                // A loop body may run zero times, so it cannot define.
                _ => Req::Nothing,
            }
        }
        Stmt::While { cond, body } => {
            if expr_reads(cond, arr) {
                return Req::Reads;
            }
            match requirement(body, arr) {
                Req::Reads => Req::Reads,
                _ => Req::Nothing,
            }
        }
        Stmt::If { cond, then, els } => {
            if expr_reads(cond, arr) {
                return Req::Reads;
            }
            let (t, e) = (requirement(then, arr), requirement(els, arr));
            if t == Req::Reads || e == Req::Reads {
                Req::Reads
            } else if t == Req::Defines && e == Req::Defines {
                Req::Defines
            } else {
                Req::Nothing
            }
        }
        Stmt::MapInit { capacity, .. } => {
            if expr_reads(capacity, arr) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::MapScatter { key, val, .. } => {
            if reads_any(&[key, val]) {
                Req::Reads
            } else {
                Req::Nothing
            }
        }
        Stmt::MapDrainSorted { body, .. } => match requirement(body, arr) {
            Req::Reads => Req::Reads,
            // A drain over an empty map runs its body zero times.
            _ => Req::Nothing,
        },
        Stmt::Comment(_) => Req::Nothing,
    }
}

/// What the block requires of map workspace `m` at entry: any scatter or
/// drain assumes the map holds exactly this iteration's entries, i.e. it
/// was empty at entry; a re-`MapInit` defines it.
fn map_requirement(block: &[Stmt], m: &str) -> Req {
    for s in block {
        let req = map_stmt_requirement(s, m);
        if req != Req::Nothing {
            return req;
        }
    }
    Req::Nothing
}

fn map_stmt_requirement(s: &Stmt, m: &str) -> Req {
    match s {
        Stmt::MapInit { map, .. } if map == m => Req::Defines,
        Stmt::MapScatter { map, .. } | Stmt::MapDrainSorted { map, .. } if map == m => Req::Reads,
        Stmt::For { body, .. }
        | Stmt::ParallelFor { body, .. }
        | Stmt::While { body, .. }
        | Stmt::MapDrainSorted { body, .. } => match map_requirement(body, m) {
            Req::Reads => Req::Reads,
            // Loop and drain bodies may run zero times.
            _ => Req::Nothing,
        },
        Stmt::If { then, els, .. } => {
            let (t, e) = (map_requirement(then, m), map_requirement(els, m));
            if t == Req::Reads || e == Req::Reads {
                Req::Reads
            } else if t == Req::Defines && e == Req::Defines {
                Req::Defines
            } else {
                Req::Nothing
            }
        }
        _ => Req::Nothing,
    }
}

/// Does the statement use map workspace `m` at all?
fn stmt_uses_map(s: &Stmt, m: &str) -> bool {
    let mut used = false;
    visit_stmts(std::slice::from_ref(s), &mut |t| match t {
        Stmt::MapInit { map, .. }
        | Stmt::MapScatter { map, .. }
        | Stmt::MapDrainSorted { map, .. }
            if map == m =>
        {
            used = true;
        }
        _ => {}
    });
    used
}

/// Simulation context shared across one phase loop's body.
struct Sim<'a> {
    assume: &'a Assumptions,
    groups: &'a [Group],
    /// Allocation lengths of tracked workspaces.
    alloc_len: &'a HashMap<String, Sym>,
    bounds: Bounds,
    fresh: u64,
    /// Structure-coverage assumptions taken by structure drains.
    notes: Vec<String>,
}

impl Sim<'_> {
    fn join(a: &mut HashMap<String, Z>, b: &HashMap<String, Z>) {
        for (k, v) in b {
            if *v == Z::Dirty {
                a.insert(k.clone(), Z::Dirty);
            }
        }
    }

    fn sim_block(&mut self, block: &[Stmt], state: &mut HashMap<String, Z>) {
        for s in block {
            self.sim_stmt(s, state);
        }
    }

    fn sim_stmt(&mut self, s: &Stmt, state: &mut HashMap<String, Z>) {
        match s {
            // calloc: zero-filled.
            Stmt::Alloc { arr, .. } if state.contains_key(arr) => {
                state.insert(arr.clone(), Z::Clean);
            }
            Stmt::Memset { arr, val } if state.contains_key(arr) => {
                state.insert(arr.clone(), if is_zero(val) { Z::Clean } else { Z::Dirty });
            }
            Stmt::Store { arr, val, .. } | Stmt::StoreAdd { arr, val, .. }
                if state.contains_key(arr) && !is_zero(val) =>
            {
                state.insert(arr.clone(), Z::Dirty);
            }
            Stmt::If { then, els, .. } => {
                let mut t = state.clone();
                self.sim_block(then, &mut t);
                let mut e = state.clone();
                self.sim_block(els, &mut e);
                Sim::join(&mut t, &e);
                *state = t;
            }
            Stmt::While { body, .. } => {
                let mut inner = state.clone();
                self.sim_block(body, &mut inner);
                Sim::join(state, &inner);
            }
            Stmt::For { var, lo, hi, body } | Stmt::ParallelFor { var, lo, hi, body, .. } => {
                let drained = self.drain_targets(var, lo, hi, body, state);
                let mut inner = state.clone();
                self.sim_block(body, &mut inner);
                Sim::join(state, &inner);
                // A matched drain restores exactly the region that can be
                // dirty (the full array, the inserted coordinates, or the
                // stored structure), including the empty-region case where
                // the loop runs zero times.
                for a in drained {
                    state.insert(a, Z::Clean);
                }
            }
            // Map-workspace idioms: a re-init or a sorted drain empties the
            // map (the fourth drain idiom); a scatter dirties it.
            Stmt::MapInit { map, .. } if state.contains_key(map) => {
                state.insert(map.clone(), Z::Clean);
            }
            Stmt::MapScatter { map, .. } if state.contains_key(map) => {
                state.insert(map.clone(), Z::Dirty);
            }
            Stmt::MapDrainSorted { map, body, .. } => {
                let mut inner = state.clone();
                self.sim_block(body, &mut inner);
                Sim::join(state, &inner);
                if state.contains_key(map) {
                    // The drain removes every entry, touched or not.
                    state.insert(map.clone(), Z::Clean);
                }
            }
            _ => {}
        }
    }

    /// Arrays this loop provably restores to zero (the three drain idioms).
    fn drain_targets(
        &mut self,
        var: &str,
        lo: &Expr,
        hi: &Expr,
        body: &[Stmt],
        state: &HashMap<String, Z>,
    ) -> Vec<String> {
        let mut out = Vec::new();

        // Unconditional `a[var] = 0` stores at the top level of the body.
        let direct_zero: Vec<&str> = body
            .iter()
            .filter_map(|s| match s {
                Stmt::Store { arr, idx, val }
                    if is_zero(val) && matches!(idx, Expr::Var(v) if v == var) =>
                {
                    Some(arr.as_str())
                }
                _ => None,
            })
            .collect();

        // Full-range drain: for (var = 0; var < D; var++) a[var] = 0;
        if matches!(lo, Expr::Int(0)) {
            let hi_sym = eval_static(hi, self.assume, &mut self.fresh);
            for arr in &direct_zero {
                if state.contains_key(*arr) {
                    if let Some(len) = self.alloc_len.get(*arr) {
                        if self.bounds.prove_le(len, &hi_sym) {
                            out.push((*arr).to_string());
                        }
                    }
                }
            }
        }

        // The list and structure drains both start by decoding a
        // coordinate: int32_t j = <list-or-crd>[var];
        let Some(Stmt::DeclInt(j, Expr::Load(decode, didx))) = body.first() else {
            return out;
        };
        if !matches!(&**didx, Expr::Var(v) if v == var) {
            return out;
        }
        // Zeroing stores indexed by the decoded coordinate.
        let coord_zero: Vec<&str> = body
            .iter()
            .filter_map(|s| match s {
                Stmt::Store { arr, idx, val }
                    if is_zero(val) && matches!(idx, Expr::Var(v) if v == j) =>
                {
                    Some(arr.as_str())
                }
                _ => None,
            })
            .collect();
        if coord_zero.is_empty() {
            return out;
        }

        // List drain: for (p = 0; p < counter; p++) over the group's list.
        let group = self.groups.iter().find(|g| &g.list == decode);
        if let Some(g) = group {
            let counter_bound = matches!(hi, Expr::Var(c) if *c == g.counter);
            if matches!(lo, Expr::Int(0)) && counter_bound {
                for arr in &coord_zero {
                    if state.contains_key(*arr) {
                        out.push((*arr).to_string());
                    }
                }
            }
            return out;
        }

        // Structure drain: for (p = pos[e]; p < pos[e + 1]; p++) decoding
        // crd[p]. Sound only when the structure covers the dirtied
        // coordinates — recorded as an assumption.
        if let (Expr::Load(plo, _), Expr::Load(phi, _)) = (lo, hi) {
            if plo == phi {
                for arr in &coord_zero {
                    if state.contains_key(*arr) {
                        self.notes.push(format!(
                            "structure `{plo}`/`{decode}` covers every coordinate of `{arr}` \
                             dirtied in one iteration (preassembled output structure)"
                        ));
                        out.push((*arr).to_string());
                    }
                }
            }
        }
        out
    }
}

/// Checks reset obligations for every top-level phase loop.
pub(crate) fn check(
    kernel: &Kernel,
    groups: &[Group],
    assume: &Assumptions,
    diags: &mut Vec<Diagnostic>,
    notes: &mut Vec<String>,
) {
    let lists: HashSet<&String> = groups.iter().map(|g| &g.list).collect();
    let mut alloc_len: HashMap<String, Sym> = HashMap::new();
    let mut map_ws: HashSet<String> = HashSet::new();
    let mut fresh_outer = 0u64;
    for (i, s) in kernel.body.iter().enumerate() {
        if let Stmt::Alloc { arr, len, .. } = s {
            // Coordinate lists are valid only up to their counter; they
            // carry no cleanliness obligation.
            if !lists.contains(arr) {
                alloc_len.insert(arr.clone(), eval_static(len, assume, &mut fresh_outer));
            }
            continue;
        }
        if let Stmt::MapInit { map, .. } = s {
            // Map workspaces start empty and carry the same between-phase
            // obligation as zero-filled arrays: empty again at iteration
            // exit.
            map_ws.insert(map.clone());
            continue;
        }
        let (Stmt::For { body, .. } | Stmt::ParallelFor { body, .. } | Stmt::While { body, .. }) =
            s
        else {
            continue;
        };
        let obligated: Vec<String> = alloc_len
            .keys()
            .filter(|a| stmt_uses(s, a) && requirement(body, a) == Req::Reads)
            .chain(
                map_ws
                    .iter()
                    .filter(|m| stmt_uses_map(s, m) && map_requirement(body, m) == Req::Reads),
            )
            .cloned()
            .collect();
        if obligated.is_empty() {
            continue;
        }
        let mut sim = Sim {
            assume,
            groups,
            alloc_len: &alloc_len,
            bounds: Bounds::default(),
            fresh: 0,
            notes: Vec::new(),
        };
        let mut state: HashMap<String, Z> =
            obligated.iter().map(|a| (a.clone(), Z::Clean)).collect();
        sim.sim_block(body, &mut state);
        for a in &obligated {
            if state.get(a) == Some(&Z::Dirty) {
                diags.push(Diagnostic {
                    error: VerifyError::MissingReset { array: a.clone() },
                    severity: Severity::Deny,
                    path: vec![i],
                    stmt: stmt_to_c(s),
                    origin: None,
                });
            }
        }
        notes.extend(sim.notes);
    }
    notes.sort();
    notes.dedup();
}

/// Checks that every counter stored into a kernel-written `*_pos` array is
/// provably non-decreasing.
pub(crate) fn check_pos_monotone(kernel: &Kernel, diags: &mut Vec<Diagnostic>) {
    // Counters whose values flow into a pos array.
    let mut counters: HashSet<String> = HashSet::new();
    visit_stmts(&kernel.body, &mut |s| {
        if let Stmt::Store { arr, val: Expr::Var(c), .. } = s {
            if arr.ends_with("_pos") {
                counters.insert(c.clone());
            }
        }
    });
    if counters.is_empty() {
        return;
    }
    let x = Atom::Var("__pos_counter".to_string());
    let bounds = Bounds::default();
    visit_stmts(&kernel.body, &mut |s| {
        let Stmt::Assign(c, e) = s else { return };
        if !counters.contains(c) {
            return;
        }
        // Evaluate the right-hand side with the counter itself as the
        // distinguished atom; the update is monotone iff rhs - counter ≥ 0.
        let mut fresh = 0u64;
        let rhs = eval_counter(e, c, &x, &mut fresh);
        let delta = rhs.sub(&Sym::atom(x.clone()));
        if bounds.prove_le(&Sym::int(0), &delta) {
            return;
        }
        let refuted = bounds.prove_le(&delta, &Sym::int(-1));
        diags.push(Diagnostic {
            error: if refuted {
                VerifyError::PosNotMonotone { counter: c.clone() }
            } else {
                VerifyError::Unproven {
                    obligation: format!("append counter `{c}` never decreases"),
                }
            },
            severity: if refuted { Severity::Deny } else { Severity::Warn },
            path: Vec::new(),
            stmt: stmt_to_c(s),
            origin: None,
        });
    });
}

fn eval_counter(e: &Expr, counter: &str, x: &Atom, fresh: &mut u64) -> Sym {
    match e {
        Expr::Int(v) => Sym::int(*v),
        Expr::Var(v) if v == counter => Sym::atom(x.clone()),
        Expr::Var(v) => Sym::var(v.clone()),
        Expr::Len(arr) => Sym::len(arr.clone()),
        Expr::Bin(BinOp::Add, a, b) => {
            eval_counter(a, counter, x, fresh).add(&eval_counter(b, counter, x, fresh))
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            eval_counter(a, counter, x, fresh).sub(&eval_counter(b, counter, x, fresh))
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            eval_counter(a, counter, x, fresh).mul(&eval_counter(b, counter, x, fresh))
        }
        _ => {
            *fresh += 1;
            Sym::atom(Atom::Opaque(*fresh))
        }
    }
}
