//! Static verification of lowered kernels.
//!
//! This crate checks the imperative kernels produced by `taco-lower` (and
//! arbitrary hand-built [`taco_llir::Kernel`]s) *before* they run, by
//! abstract interpretation over the LLIR:
//!
//! * **definite initialization** — every workspace, guard-set, and
//!   coordinate-list read is dominated by an initialization on all paths,
//!   and the where-consumer reset obligation of Section VI is discharged
//!   between outer-loop iterations;
//! * **symbolic bounds** — loop variables and `pos`-array accesses carry
//!   symbolic intervals, proving every index in bounds and every append
//!   counter monotone;
//! * **race freedom** — each `parallelize`d loop's per-iteration write set
//!   is checked for disjointness modulo the declared merge strategy
//!   (privatization and append merges), re-deriving the
//!   `ReductionNotPrivatized` legality verdict at the LLIR level.
//!
//! Findings are typed [`VerifyError`]s wrapped in provenance-carrying
//! [`Diagnostic`]s; a proven violation *denies* the kernel, an
//! undischarged obligation only warns. [`VerifyMode`] selects how the
//! compile path enforces the verdict.
//!
//! # Example
//!
//! ```
//! use taco_ir::concretize::concretize;
//! use taco_ir::expr::{sum, IndexVar, TensorVar};
//! use taco_ir::notation::IndexAssignment;
//! use taco_lower::{lower, LowerOptions};
//! use taco_tensor::Format;
//!
//! // y(i) = Σ_j B(i,j) * x(j), CSR matrix-vector product.
//! let y = TensorVar::new("y", vec![4], Format::dense(1));
//! let b = TensorVar::new("B", vec![4, 5], Format::csr());
//! let x = TensorVar::new("x", vec![5], Format::dense(1));
//! let (i, j) = (IndexVar::new("i"), IndexVar::new("j"));
//! let stmt = concretize(&IndexAssignment::assign(
//!     y.access([i.clone()]),
//!     sum(j.clone(), b.access([i.clone(), j.clone()]) * x.access([j.clone()])),
//! ))?;
//! let lowered = lower(&stmt, &LowerOptions::fused("spmv"))?;
//! let report = taco_verify::verify_lowered(&lowered);
//! assert!(report.accepted(), "{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod assume;
mod cost;
mod dataflow;
mod error;
mod race;
mod resets;
mod sym;

pub use assume::{check_crd_slice, check_pos_slice, ArrayFacts, Assumptions};
pub use cost::{
    analyze_cost, Bound, ChargeBound, CostEnv, CostReport, OutputBound, WorkspaceCost,
};
pub use error::{Diagnostic, Severity, VerifyError, VerifyMode, VerifyReport};
pub use sym::{Atom, Sym};

use taco_llir::Kernel;
use taco_lower::LoweredKernel;

/// Verifies a lowered kernel, deriving the assumption environment (storage
/// invariants the runtime validates at bind time) from the operand and
/// result tensor formats.
#[must_use]
pub fn verify_lowered(lk: &LoweredKernel) -> VerifyReport {
    let assume = Assumptions::for_lowered(lk);
    run(&lk.kernel, &assume)
}

/// Verifies a bare kernel with no format-derived assumptions. Hand-built
/// kernels get the same checks but fewer facts, so more obligations end up
/// as warns.
#[must_use]
pub fn verify_kernel(kernel: &Kernel) -> VerifyReport {
    run(kernel, &Assumptions::default())
}

fn run(kernel: &Kernel, assume: &Assumptions) -> VerifyReport {
    let mut az = dataflow::Analyzer::new(kernel, assume);
    az.walk_block(&kernel.body);
    let groups = az.groups.clone();
    let mut diags = az.diags;
    let mut notes = az.notes;
    resets::check(kernel, &groups, assume, &mut diags, &mut notes);
    resets::check_pos_monotone(kernel, &mut diags);

    // One diagnostic per distinct finding, deny severity first, then by
    // statement path.
    let mut seen = std::collections::HashSet::new();
    diags.retain(|d| seen.insert((d.error.clone(), d.path.clone())));
    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.path.cmp(&b.path)));

    let mut assumptions = assume.notes.clone();
    assumptions.extend(notes);
    assumptions.dedup();
    VerifyReport { kernel: kernel.name.clone(), diagnostics: diags, assumptions }
}
