//! The assumption environment: facts about a kernel's array parameters
//! that hold whenever the runtime binds validated tensors to them.
//!
//! These are exactly the storage invariants `Tensor::validate` enforces at
//! bind time (`pos` arrays start at 0, are monotone and end at the `crd`
//! length; `crd` coordinates are within the dimension; `crd` and `vals`
//! pair up). The verifier *assumes* them for input parameters and records
//! each one in the report, so the bind-time check and the static proof are
//! two views of the same contract — [`check_pos_slice`] and
//! [`check_crd_slice`] mirror the runtime checks one-to-one for tests that
//! assert the two layers agree.

use std::collections::HashMap;

use taco_lower::{KernelKind, LoweredKernel};

use crate::error::VerifyError;
use crate::sym::{Atom, Bounds, Sym};

/// Facts about one integer array whose values are used as indices.
#[derive(Debug, Clone, Default)]
pub struct ArrayFacts {
    /// Inclusive upper bound on every stored value (e.g. `len(crd)` for a
    /// `pos` array, `dim - 1` for a `crd` array).
    pub value_ub: Option<Sym>,
}

/// Facts derived from the lowered kernel's operand and result formats.
#[derive(Debug, Clone, Default)]
pub struct Assumptions {
    /// Per-array value bounds, keyed by array parameter name.
    pub arrays: HashMap<String, ArrayFacts>,
    /// Known symbolic lengths for arrays that the kernel never reallocates.
    pub lens: HashMap<String, Sym>,
    /// Dimension-variable aliases: every key is rewritten to its canonical
    /// representative before proofs (dimensions indexed by the same loop
    /// variable are bound to equal extents).
    pub dim_alias: HashMap<String, String>,
    /// Human-readable record of every assumed fact.
    pub notes: Vec<String>,
}

fn dim_name(tensor: &str, level: usize) -> String {
    format!("{tensor}{}_dim", level + 1)
}
fn pos_name(tensor: &str, level: usize) -> String {
    format!("{tensor}{}_pos", level + 1)
}
fn crd_name(tensor: &str, level: usize) -> String {
    format!("{tensor}{}_crd", level + 1)
}

impl Assumptions {
    /// Derives the assumption environment for a lowered kernel from its
    /// operand and result tensor formats.
    #[must_use]
    pub fn for_lowered(lk: &LoweredKernel) -> Assumptions {
        let mut a = Assumptions::default();

        // Dimension parameters bound to equal declared extents alias to one
        // canonical atom: the runtime rejects bindings whose shapes differ
        // from the declared tensor variables, so equal declared extents
        // stay equal at run time.
        let mut by_extent: HashMap<usize, String> = HashMap::new();
        let mut tensors: Vec<(&str, &[usize], &taco_tensor::Format)> = vec![(
            lk.result.name(),
            lk.result.shape(),
            lk.result.format(),
        )];
        for op in &lk.operands {
            tensors.push((op.name(), op.shape(), op.format()));
        }
        for (name, shape, _) in &tensors {
            for (l, &extent) in shape.iter().enumerate() {
                let dim = dim_name(name, l);
                match by_extent.get(&extent) {
                    Some(canon) => {
                        a.dim_alias.insert(dim.clone(), canon.clone());
                        a.notes.push(format!("{dim} = {canon} (equal declared extents)"));
                    }
                    None => {
                        by_extent.insert(extent, dim.clone());
                    }
                }
            }
        }

        // Storage invariants for every sparse level of a tensor the
        // kernel only reads (operands always; the result's structure too
        // for compute kernels, which run over a preassembled output).
        for (name, shape, format) in &tensors {
            let structure_is_input =
                *name != lk.result.name() || lk.kind == KernelKind::Compute;
            // Number of parent entries feeding each level: a product of
            // dense extents until the first compressed level, then the
            // previous crd length (unknown for a result still being
            // assembled).
            let mut parents: Option<Sym> = Some(Sym::int(1));
            let mut last_crd: Option<String> = None;
            for l in 0..shape.len() {
                let lt = format.mode(l);
                let dim = a.canon_dim(&dim_name(name, l));
                if lt.is_full() {
                    // Dense: every coordinate is stored, so the level
                    // multiplies the parent-position count by its extent.
                    parents = parents.map(|p| p.mul(&Sym::var(dim)));
                    continue;
                }
                if lt.is_position_passthrough() {
                    // Singleton: one coordinate per parent position, no pos
                    // array, positions pass straight through. The crd array
                    // is exactly as long as the parent has positions, and
                    // its values are validated coordinates.
                    let crd = crd_name(name, l);
                    if structure_is_input {
                        if let Some(p) = &parents {
                            a.lens.insert(crd.clone(), p.clone());
                            a.notes.push(format!(
                                "len({crd}) = {p} (one coordinate per parent position)"
                            ));
                        }
                        a.arrays.insert(
                            crd.clone(),
                            ArrayFacts {
                                value_ub: Some(Sym::var(dim.clone()).sub(&Sym::int(1))),
                            },
                        );
                        a.notes.push(format!("{crd} values are in [0, {dim}) (validated)"));
                    }
                    last_crd = Some(crd);
                    continue;
                }
                // Compressed and hashed levels both carry pos/crd arrays
                // with the same validated structural facts — hashed merely
                // drops the within-segment ordering, which these bounds
                // never rely on.
                debug_assert!(lt.has_pos_array());
                let pos = pos_name(name, l);
                let crd = crd_name(name, l);
                // pos has parents + 1 entries whether the structure is an
                // input or a preallocated result buffer.
                if let Some(p) = &parents {
                    a.lens.insert(pos.clone(), p.add(&Sym::int(1)));
                    a.notes.push(format!("len({pos}) = {} + 1 (validated)", p));
                }
                if structure_is_input {
                    a.arrays.insert(
                        pos.clone(),
                        ArrayFacts { value_ub: Some(Sym::len(crd.clone())) },
                    );
                    a.notes.push(format!("{pos} values are in [0, len({crd})] (validated)"));
                    a.arrays.insert(
                        crd.clone(),
                        ArrayFacts {
                            value_ub: Some(Sym::var(dim.clone()).sub(&Sym::int(1))),
                        },
                    );
                    a.notes.push(format!("{crd} values are in [0, {dim}) (validated)"));
                    parents = Some(Sym::len(crd.clone()));
                } else {
                    parents = None;
                }
                last_crd = Some(crd);
            }
            // A validated sparse tensor pairs vals with the last crd array;
            // for compute kernels this also covers the result's vals.
            if let Some(crd) = last_crd {
                if structure_is_input {
                    a.lens.insert((*name).to_string(), Sym::len(crd.clone()));
                    a.notes.push(format!("len({name}) = len({crd}) (validated)"));
                }
            } else {
                // Dense tensor: length is the product of its extents.
                let mut len = Sym::int(1);
                for l in 0..shape.len() {
                    len = len.mul(&Sym::var(a.canon_dim(&dim_name(name, l))));
                }
                a.lens.insert((*name).to_string(), len);
            }
        }
        a
    }

    /// The canonical name of a dimension variable.
    #[must_use]
    pub fn canon_dim(&self, dim: &str) -> String {
        self.dim_alias.get(dim).cloned().unwrap_or_else(|| dim.to_string())
    }

    /// Registers the value bound for an integer array load into `bounds`,
    /// returning the opaque atom standing for the loaded value, or `None`
    /// when nothing is known about the array's contents.
    pub fn bind_load(&self, arr: &str, bounds: &mut Bounds, fresh: &mut u64) -> Option<Sym> {
        let facts = self.arrays.get(arr)?;
        let ub = facts.value_ub.clone()?;
        *fresh += 1;
        let atom = Atom::Opaque(*fresh);
        bounds.add_ub(atom.clone(), ub);
        Some(Sym::atom(atom))
    }
}

/// Mirrors the bind-time `pos` checks of `Csr::validate`/`Csf::validate` on
/// a raw slice: `parents + 1` entries, starts at 0, monotone, ends at the
/// `crd` length.
///
/// # Errors
///
/// Returns the [`VerifyError`] the static layer would raise for a kernel
/// whose `pos` input violated the invariant.
pub fn check_pos_slice(pos: &[usize], parents: usize, crd_len: usize) -> Result<(), VerifyError> {
    if pos.len() != parents + 1 {
        return Err(VerifyError::OutOfBounds {
            array: "pos".to_string(),
            index: format!("{parents} (pos has {} entries)", pos.len()),
        });
    }
    if pos.first() != Some(&0) {
        return Err(VerifyError::PosNotMonotone { counter: "pos[0]".to_string() });
    }
    if pos.windows(2).any(|w| w[0] > w[1]) {
        return Err(VerifyError::PosNotMonotone { counter: "pos".to_string() });
    }
    if pos.last() != Some(&crd_len) {
        return Err(VerifyError::OutOfBounds {
            array: "crd".to_string(),
            index: format!("pos ends at {} but crd has {crd_len} entries", pos.last().unwrap()),
        });
    }
    Ok(())
}

/// Mirrors the bind-time `crd`/`vals` checks on raw slices: coordinates in
/// `[0, dim)` and one value per coordinate.
///
/// # Errors
///
/// Returns the [`VerifyError`] the static layer would raise for a kernel
/// whose `crd` input violated the invariant.
pub fn check_crd_slice(crd: &[usize], dim: usize, vals_len: usize) -> Result<(), VerifyError> {
    if let Some(c) = crd.iter().find(|c| **c >= dim) {
        return Err(VerifyError::OutOfBounds {
            array: "crd".to_string(),
            index: format!("coordinate {c} with dimension {dim}"),
        });
    }
    if crd.len() != vals_len {
        return Err(VerifyError::UninitializedRead { array: "vals".to_string() });
    }
    Ok(())
}
