//! The abstract interpreter: definite initialization, workspace reset
//! obligations, symbolic bounds, and pos-counter monotonicity.
//!
//! One walk over the kernel threads the abstract domains of DESIGN.md §12:
//!
//! * **Definedness** — which arrays have defined contents. Only `Output`
//!   parameters start undefined; an `Alloc` (calloc) or a `Memset` defines
//!   an array. Reading or accumulating into an undefined array is
//!   [`VerifyError::UninitializedRead`].
//! * **Zeroness** — whether a kernel-local workspace is all zeros between
//!   iterations of its *phase loop* (the outermost loop using it). If the
//!   first use in an iteration assumes cleanliness (any read or
//!   accumulation not dominated by a `Memset`), the iteration must also
//!   restore cleanliness before it ends, or the next iteration observes
//!   stale state — [`VerifyError::MissingReset`].
//! * **Bounds** — every array index is checked against the array's known
//!   length with the [`crate::sym`] engine. A provable violation is
//!   [`VerifyError::OutOfBounds`] (deny); an undischarged obligation is
//!   [`VerifyError::Unproven`] (warn).
//! * **Monotonicity** — scalars stored into a kernel-written `pos` array
//!   may only ever increase ([`VerifyError::PosNotMonotone`]).
//!
//! Parallel loops additionally run the write-set race check in
//! [`crate::race`], fed by the footprints this walk records.

use std::collections::{HashMap, HashSet};

use taco_llir::{stmt_to_c, BinOp, Expr, Kernel, ParamKind, Stmt, UnOp};

use crate::assume::Assumptions;
use crate::error::{Diagnostic, Severity, VerifyError};
use crate::race::{self, RaceCtx, WriteKind};
use crate::sym::{Atom, Bounds, Sym};

/// A recognized guarded-insert group (Figure 8 lines 12–16): boolean guard
/// set, coordinate list, and insertion counter.
#[derive(Debug, Clone)]
pub(crate) struct Group {
    pub(crate) set: String,
    pub(crate) list: String,
    pub(crate) counter: String,
}

/// The walking interpreter.
pub(crate) struct Analyzer<'a> {
    pub(crate) assume: &'a Assumptions,
    /// Current symbolic value per integer scalar.
    env: HashMap<String, Sym>,
    pub(crate) bounds: Bounds,
    /// Known lower bound on each array's length, with an exactness flag
    /// (`true` when the bound is the precise length).
    lens: HashMap<String, (Sym, bool)>,
    /// Arrays whose contents are defined.
    defined: HashSet<String>,
    /// Arrays that are kernel parameters or locals (definedness applies).
    known_arrays: HashSet<String>,
    /// Kernel-local arrays introduced by `Alloc`.
    pub(crate) locals: HashSet<String>,
    /// Scalars declared as float/bool (excluded from the integer env).
    non_int: HashSet<String>,
    pub(crate) groups: Vec<Group>,
    fresh: u64,
    pub(crate) diags: Vec<Diagnostic>,
    pub(crate) notes: Vec<String>,
    path: Vec<usize>,
    /// Active parallel-loop contexts, innermost last; every array access
    /// inside a parallel body is recorded into each active context.
    race_stack: Vec<RaceCtx>,
    /// Arrays already reported as read-uninitialized (one diagnostic each).
    reported_undef: HashSet<String>,
    /// Map workspaces established by a `MapInit` on the current path.
    inited_maps: HashSet<String>,
    /// Maps already reported as used-before-init (one diagnostic each).
    reported_maps: HashSet<String>,
}

impl<'a> Analyzer<'a> {
    pub(crate) fn new(kernel: &Kernel, assume: &'a Assumptions) -> Analyzer<'a> {
        let mut a = Analyzer {
            assume,
            env: HashMap::new(),
            bounds: Bounds::default(),
            lens: assume.lens.iter().map(|(k, v)| (k.clone(), (v.clone(), true))).collect(),
            defined: HashSet::new(),
            known_arrays: HashSet::new(),
            locals: HashSet::new(),
            non_int: HashSet::new(),
            groups: Vec::new(),
            fresh: 0,
            diags: Vec::new(),
            notes: Vec::new(),
            path: Vec::new(),
            race_stack: Vec::new(),
            reported_undef: HashSet::new(),
            inited_maps: HashSet::new(),
            reported_maps: HashSet::new(),
        };
        for p in &kernel.array_params {
            a.known_arrays.insert(p.name.clone());
            if p.kind != ParamKind::Output {
                a.defined.insert(p.name.clone());
            }
        }
        // Scalar parameters (dimensions, extents) are nonnegative atoms,
        // canonicalized so equal-extent dimensions share one atom.
        for s in &kernel.scalar_params {
            let canon = assume.canon_dim(s);
            a.env.insert(s.clone(), Sym::var(canon));
        }
        a.groups = collect_groups(&kernel.body);
        a
    }

    pub(crate) fn diag(&mut self, error: VerifyError, severity: Severity, stmt: &Stmt) {
        self.diag_at(error, severity, self.path.clone(), stmt);
    }

    pub(crate) fn diag_at(
        &mut self,
        error: VerifyError,
        severity: Severity,
        path: Vec<usize>,
        stmt: &Stmt,
    ) {
        self.diags.push(Diagnostic { error, severity, path, stmt: stmt_to_c(stmt), origin: None });
    }

    fn fresh_atom(&mut self) -> Atom {
        self.fresh += 1;
        Atom::Opaque(self.fresh)
    }

    /// Evaluates an integer-valued expression to a symbolic polynomial.
    /// Non-affine operators and unknown loads become opaque atoms, with
    /// upper bounds where the assumption environment provides them.
    pub(crate) fn eval(&mut self, e: &Expr) -> Sym {
        match e {
            Expr::Int(v) => Sym::int(*v),
            Expr::Float(_) => Sym::atom(self.fresh_atom()),
            Expr::Bool(b) => Sym::int(i64::from(*b)),
            Expr::Var(v) => self
                .env
                .get(v)
                .cloned()
                .unwrap_or_else(|| Sym::var(self.assume.canon_dim(v))),
            Expr::Len(arr) => Sym::len(arr.clone()),
            Expr::Load(arr, _) => {
                let mut b = std::mem::take(&mut self.bounds);
                let out = self.assume.bind_load(arr, &mut b, &mut self.fresh);
                self.bounds = b;
                out.unwrap_or_else(|| Sym::atom(self.fresh_atom()))
            }
            Expr::Un(UnOp::Neg, inner) => {
                let s = self.eval(inner);
                Sym::int(0).sub(&s)
            }
            Expr::Un(UnOp::Not, _) => Sym::atom(self.fresh_atom()),
            Expr::Bin(op, a, b) => {
                let (sa, sb) = (self.eval(a), self.eval(b));
                match op {
                    BinOp::Add => sa.add(&sb),
                    BinOp::Sub => sa.sub(&sb),
                    BinOp::Mul => sa.mul(&sb),
                    BinOp::Min => {
                        // min(a, b) ≤ a and min(a, b) ≤ b.
                        let atom = self.fresh_atom();
                        self.bounds.add_ub(atom.clone(), sa);
                        self.bounds.add_ub(atom.clone(), sb);
                        Sym::atom(atom)
                    }
                    _ => Sym::atom(self.fresh_atom()),
                }
            }
        }
    }

    /// Walks every `Load` inside an expression: checks definedness and
    /// bounds, and records reads into active parallel contexts.
    fn check_expr(&mut self, e: &Expr, stmt: &Stmt) {
        match e {
            Expr::Load(arr, idx) => {
                self.check_expr(idx, stmt);
                self.check_read_defined(arr, stmt);
                let idx_sym = self.eval(idx);
                self.check_bounds(arr, &idx_sym, stmt);
                for ctx in &mut self.race_stack {
                    ctx.record_read(arr, &idx_sym);
                }
            }
            Expr::Un(_, a) => self.check_expr(a, stmt),
            Expr::Bin(_, a, b) => {
                self.check_expr(a, stmt);
                self.check_expr(b, stmt);
            }
            _ => {}
        }
    }

    fn check_read_defined(&mut self, arr: &str, stmt: &Stmt) {
        if self.known_arrays.contains(arr)
            && !self.defined.contains(arr)
            && self.reported_undef.insert(arr.to_string())
        {
            self.diag(
                VerifyError::UninitializedRead { array: arr.to_string() },
                Severity::Deny,
                stmt,
            );
        }
    }

    /// Checks `0 ≤ idx < len(arr)`: a refutation is a deny, an undischarged
    /// obligation a warn.
    fn check_bounds(&mut self, arr: &str, idx: &Sym, stmt: &Stmt) {
        let lb = self.lens.get(arr).cloned();
        // Refute against the literal length atom, the exact length when
        // known, or a provably negative index.
        let len_atom = Sym::len(arr);
        let refuted = self.bounds.refute_in_bounds(idx, &len_atom)
            || matches!(&lb, Some((len, true)) if self.bounds.prove_le(len, idx))
            || idx.as_const().is_some_and(|c| c < 0);
        if refuted {
            self.diag(
                VerifyError::OutOfBounds { array: arr.to_string(), index: idx.to_string() },
                Severity::Deny,
                stmt,
            );
            return;
        }
        let proven = match &lb {
            Some((len, _)) => {
                self.bounds.prove_le(&Sym::int(0), idx) && self.bounds.prove_lt(idx, len)
            }
            None => false,
        } || self.bounds.prove_lt(idx, &len_atom);
        if !proven {
            self.diag(
                VerifyError::Unproven {
                    obligation: format!("index `{idx}` of `{arr}` is within [0, len({arr}))"),
                },
                Severity::Warn,
                stmt,
            );
        }
    }

    /// Interprets a statement list.
    pub(crate) fn walk_block(&mut self, body: &[Stmt]) {
        for (i, s) in body.iter().enumerate() {
            self.path.push(i);
            self.walk_stmt(s, body, i);
            self.path.pop();
        }
    }

    #[allow(clippy::too_many_lines)]
    fn walk_stmt(&mut self, s: &Stmt, block: &[Stmt], at: usize) {
        match s {
            Stmt::DeclInt(v, e) => {
                self.check_expr(e, s);
                let val = self.eval(e);
                self.env.insert(v.clone(), val);
            }
            Stmt::DeclFloat(v, e) | Stmt::DeclBool(v, e) => {
                self.check_expr(e, s);
                self.non_int.insert(v.clone());
            }
            Stmt::Assign(v, e) => {
                self.check_expr(e, s);
                if !self.non_int.contains(v) {
                    let val = self.eval(e);
                    self.env.insert(v.clone(), val);
                }
                for i in 0..self.race_stack.len() {
                    if !self.race_stack[i].declared.contains(v)
                        && self.race_stack[i].counter.as_deref() != Some(v.as_str())
                        && self.race_stack[i].reported_scalars.insert(v.clone())
                    {
                        let var = self.race_stack[i].var_name.clone();
                        self.diag(
                            VerifyError::DataRace {
                                name: v.clone(),
                                var,
                                detail: "a scalar declared outside the parallel loop is \
                                         written inside it (loop-carried state)"
                                    .to_string(),
                            },
                            Severity::Deny,
                            s,
                        );
                    }
                }
            }
            Stmt::Store { arr, idx, val } | Stmt::StoreAdd { arr, idx, val } => {
                let is_add = matches!(s, Stmt::StoreAdd { .. });
                self.check_expr(idx, s);
                self.check_expr(val, s);
                if is_add {
                    // An accumulate reads the previous contents.
                    self.check_read_defined(arr, s);
                }
                let idx_sym = self.eval(idx);
                self.check_bounds(arr, &idx_sym, s);
                let kind = if is_add { WriteKind::Accumulate } else { WriteKind::Assign };
                for ctx in &mut self.race_stack {
                    ctx.record_write(arr, &idx_sym, kind, stmt_to_c(s));
                }
            }
            Stmt::For { var, lo, hi, body } => {
                self.check_expr(lo, s);
                self.check_expr(hi, s);
                let hi_sym = self.eval(hi);
                self.walk_loop(var, lo, hi, &hi_sym, body, None);
            }
            Stmt::ParallelFor { var, lo, hi, private, append, body, .. } => {
                self.check_expr(lo, s);
                self.check_expr(hi, s);
                let hi_sym = self.eval(hi);
                self.walk_loop(var, lo, hi, &hi_sym, body, Some((private, append)));
                let ctx = self.race_stack.pop().expect("pushed by walk_loop");
                race::analyze(self, ctx, s);
                // Map workspaces are cloned per worker and discarded at
                // join: entries scattered but not drained inside the same
                // parallel body are silently lost.
                self.check_parallel_map_drains(var, body, s);
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond, s);
                let saved = self.env.clone();
                self.havoc_assigned(body);
                self.refine(cond);
                self.walk_block(body);
                self.env = saved;
                self.havoc_assigned(body);
            }
            Stmt::If { cond, then, els } => {
                self.check_expr(cond, s);
                // Realloc-guard: `if (len(a) <= c) realloc(a, ...)` leaves
                // len(a) ≥ c + 1 on both paths.
                if let Some((arr, min_len)) = realloc_guard(cond, then, els) {
                    let want = self.eval(&min_len).add(&Sym::int(1));
                    self.walk_block(then);
                    self.lens.insert(arr, (want, false));
                    return;
                }
                let saved = self.env.clone();
                // Guarded insert strengthens the counter: inserting
                // requires a false guard entry, so counter ≤ len(set) - 1.
                if let Some(g) = self.matches_insert(cond) {
                    if let Some(atom) = self.env.get(&g.counter).and_then(single_atom) {
                        self.bounds.add_ub(atom, Sym::len(&g.set).sub(&Sym::int(1)));
                    }
                }
                self.refine(cond);
                self.walk_block(then);
                self.env = saved.clone();
                self.walk_block(els);
                self.env = saved;
                self.havoc_assigned(then);
                self.havoc_assigned(els);
            }
            Stmt::Memset { arr, val } => {
                self.check_expr(val, s);
                self.defined.insert(arr.clone());
                for ctx in &mut self.race_stack {
                    ctx.record_whole_array(arr, stmt_to_c(s));
                }
            }
            Stmt::Alloc { arr, len, .. } => {
                self.check_expr(len, s);
                let len_sym = self.eval(len);
                self.lens.insert(arr.clone(), (len_sym, true));
                self.locals.insert(arr.clone());
                self.known_arrays.insert(arr.clone());
                self.defined.insert(arr.clone());
            }
            Stmt::Realloc { arr, len } => {
                self.check_expr(len, s);
                let len_sym = self.eval(len);
                self.lens.insert(arr.clone(), (len_sym, false));
                for ctx in &mut self.race_stack {
                    ctx.record_whole_array(arr, stmt_to_c(s));
                }
            }
            Stmt::Sort { arr, lo, hi } => {
                self.check_expr(lo, s);
                self.check_expr(hi, s);
                let hi_sym = self.eval(hi);
                let proven = match self.lens.get(arr) {
                    Some((len, _)) => {
                        let len = len.clone();
                        self.bounds.prove_le(&hi_sym, &len)
                    }
                    None => self.bounds.prove_le(&hi_sym, &Sym::len(arr)),
                };
                if !proven {
                    self.diag(
                        VerifyError::Unproven {
                            obligation: format!("sort range end `{hi_sym}` ≤ len({arr})"),
                        },
                        Severity::Warn,
                        s,
                    );
                }
                for ctx in &mut self.race_stack {
                    ctx.record_whole_array(arr, stmt_to_c(s));
                }
            }
            Stmt::MapInit { map, capacity, .. } => {
                self.check_expr(capacity, s);
                self.inited_maps.insert(map.clone());
            }
            Stmt::MapScatter { map, key, val, .. } => {
                self.check_expr(key, s);
                self.check_expr(val, s);
                self.check_map_inited(map, s);
            }
            Stmt::MapDrainSorted { map, key, val, body } => {
                self.check_map_inited(map, s);
                let saved = self.env.clone();
                self.havoc_assigned(body);
                // The drain binds each touched key (an arbitrary integer
                // coordinate) and its accumulated value.
                let k_atom = self.fresh_atom();
                self.env.insert(key.clone(), Sym::atom(k_atom));
                self.non_int.insert(val.clone());
                self.walk_block(body);
                self.env = saved;
                self.havoc_assigned(body);
            }
            Stmt::Comment(_) => {}
        }
        let _ = (block, at);
    }

    fn check_map_inited(&mut self, map: &str, stmt: &Stmt) {
        if !self.inited_maps.contains(map) && self.reported_maps.insert(map.to_string()) {
            self.diag(
                VerifyError::MapNotInitialized { map: map.to_string() },
                Severity::Deny,
                stmt,
            );
        }
    }

    /// Denies parallel bodies that scatter into a map workspace without
    /// draining it before the iteration ends (worker-local maps are
    /// discarded at join — the updates would be lost).
    fn check_parallel_map_drains(&mut self, var: &str, body: &[Stmt], s: &Stmt) {
        let mut scattered: Vec<String> = Vec::new();
        let mut drained: HashSet<String> = HashSet::new();
        visit_stmts(body, &mut |t| match t {
            Stmt::MapScatter { map, .. } if !scattered.contains(map) => {
                scattered.push(map.clone());
            }
            Stmt::MapDrainSorted { map, .. } => {
                drained.insert(map.clone());
            }
            _ => {}
        });
        for map in scattered {
            if !drained.contains(&map) {
                self.diag(
                    VerifyError::DataRace {
                        name: map.clone(),
                        var: var.to_string(),
                        detail: "a map workspace is scattered into but never drained inside \
                                 the parallel body; worker-local maps are discarded at join, \
                                 losing the updates"
                            .to_string(),
                    },
                    Severity::Deny,
                    s,
                );
            }
        }
    }

    /// Shared loop handling: bind the loop variable to a fresh atom bounded
    /// by `hi - 1`, havoc body-assigned scalars (attaching the guard-set
    /// invariant bound to guarded-insert counters), interpret the body
    /// once, and restore.
    fn walk_loop(
        &mut self,
        var: &str,
        lo: &Expr,
        hi: &Expr,
        hi_sym: &Sym,
        body: &[Stmt],
        parallel: Option<(&Vec<String>, &Option<taco_llir::AppendMerge>)>,
    ) {
        let saved = self.env.clone();
        let v_atom = self.fresh_atom();
        self.bounds.add_ub(v_atom.clone(), hi_sym.sub(&Sym::int(1)));
        self.env.insert(var.to_string(), Sym::atom(v_atom.clone()));
        self.havoc_assigned(body);
        if let Some((private, append)) = parallel {
            let mut ctx = RaceCtx::new(var, v_atom.clone(), private, append);
            ctx.declared.extend(collect_decls(body));
            self.race_stack.push(ctx);
        }
        // A loop over one segment of a monotone pos array: its variable's
        // slices are disjoint across the enclosing parallel iterations.
        if let Some(parent) = self.pos_segment_loop(lo, hi) {
            for ctx in &mut self.race_stack {
                if parent == ctx.var_name {
                    ctx.sliced.insert(v_atom.clone());
                }
            }
        }
        self.walk_block(body);
        self.env = saved;
        self.havoc_assigned(body);
    }

    /// Recognizes `lo = P[e]`, `hi = P[e + 1]` over a validated (monotone)
    /// pos array `P`, returning the parent variable name when `e` is a
    /// plain variable.
    fn pos_segment_loop(&self, lo: &Expr, hi: &Expr) -> Option<String> {
        let (Expr::Load(pl, pe), Expr::Load(hl, he)) = (lo, hi) else { return None };
        if pl != hl || !self.assume.arrays.contains_key(pl) {
            return None;
        }
        let Expr::Bin(BinOp::Add, a, b) = he.as_ref() else { return None };
        if a.as_ref() == pe.as_ref() && matches!(b.as_ref(), Expr::Int(1)) {
            if let Expr::Var(v) = pe.as_ref() {
                return Some(v.clone());
            }
        }
        None
    }

    /// Replaces every scalar assigned in the block with a fresh opaque
    /// atom. Guarded-insert counters keep their invariant bound
    /// `counter ≤ len(set)` (the counter counts true guard entries).
    fn havoc_assigned(&mut self, body: &[Stmt]) {
        for v in collect_assigned(body) {
            if self.non_int.contains(&v) {
                continue;
            }
            let atom = self.fresh_atom();
            if let Some(g) = self.groups.iter().find(|g| g.counter == v) {
                self.bounds.add_ub(atom.clone(), Sym::len(&g.set));
            }
            self.env.insert(v, Sym::atom(atom));
        }
    }

    /// Adds upper bounds implied by a (conjunctive) loop or branch
    /// condition: `x < e` and `x ≤ e` where `x` currently maps to a single
    /// atom.
    fn refine(&mut self, cond: &Expr) {
        match cond {
            Expr::Bin(BinOp::And, a, b) => {
                self.refine(a);
                self.refine(b);
            }
            Expr::Bin(op @ (BinOp::Lt | BinOp::Le), lhs, rhs) => {
                if let Expr::Var(x) = lhs.as_ref() {
                    if let Some(atom) = self.env.get(x).and_then(single_atom) {
                        let r = self.eval(rhs);
                        let ub = if *op == BinOp::Lt { r.sub(&Sym::int(1)) } else { r };
                        self.bounds.add_ub(atom, ub);
                    }
                }
            }
            Expr::Bin(op @ (BinOp::Gt | BinOp::Ge), lhs, rhs) => {
                // `e > x` / `e ≥ x` bound x from above.
                if let Expr::Var(x) = rhs.as_ref() {
                    if let Some(atom) = self.env.get(x).and_then(single_atom) {
                        let l = self.eval(lhs);
                        let ub = if *op == BinOp::Gt { l.sub(&Sym::int(1)) } else { l };
                        self.bounds.add_ub(atom, ub);
                    }
                }
            }
            _ => {}
        }
    }

    /// Does this condition open a recognized guarded insert?
    fn matches_insert(&self, cond: &Expr) -> Option<Group> {
        let Expr::Un(UnOp::Not, inner) = cond else { return None };
        let Expr::Load(arr, _) = inner.as_ref() else { return None };
        self.groups.iter().find(|g| &g.set == arr).cloned()
    }
}

/// `x` when the scalar's current value is a single atom with coefficient 1.
fn single_atom(s: &Sym) -> Option<Atom> {
    let atoms = s.atoms();
    if atoms.len() == 1 && *s == Sym::atom(atoms[0].clone()) {
        return Some(atoms[0].clone());
    }
    None
}

/// `if (len(a) <= c) { realloc(a, ...) }` — returns `(a, c)`.
fn realloc_guard(cond: &Expr, then: &[Stmt], els: &[Stmt]) -> Option<(String, Expr)> {
    if !els.is_empty() || then.len() != 1 {
        return None;
    }
    let Expr::Bin(BinOp::Le, lhs, rhs) = cond else { return None };
    let Expr::Len(arr) = lhs.as_ref() else { return None };
    let Stmt::Realloc { arr: target, .. } = &then[0] else { return None };
    if arr != target {
        return None;
    }
    Some((arr.clone(), rhs.as_ref().clone()))
}

/// Every scalar assigned (not declared) anywhere in the block.
fn collect_assigned(body: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    visit_stmts(body, &mut |s| {
        if let Stmt::Assign(v, _) = s {
            out.push(v.clone());
        }
    });
    out.sort();
    out.dedup();
    out
}

/// Every scalar declared anywhere in the block.
pub(crate) fn collect_decls(body: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    visit_stmts(body, &mut |s| match s {
        Stmt::DeclInt(v, _) | Stmt::DeclFloat(v, _) | Stmt::DeclBool(v, _) => out.push(v.clone()),
        Stmt::For { var, .. } | Stmt::ParallelFor { var, .. } => out.push(var.clone()),
        Stmt::MapDrainSorted { key, val, .. } => {
            out.push(key.clone());
            out.push(val.clone());
        }
        _ => {}
    });
    out
}

pub(crate) fn visit_stmts(body: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in body {
        f(s);
        match s {
            Stmt::For { body, .. }
            | Stmt::ParallelFor { body, .. }
            | Stmt::While { body, .. }
            | Stmt::MapDrainSorted { body, .. } => visit_stmts(body, f),
            Stmt::If { then, els, .. } => {
                visit_stmts(then, f);
                visit_stmts(els, f);
            }
            _ => {}
        }
    }
}

/// Pre-pass: find guarded-insert groups
/// `if (!set[j]) { list[c] = j; c = c + 1; set[j] = true; }`.
fn collect_groups(body: &[Stmt]) -> Vec<Group> {
    let mut out: Vec<Group> = Vec::new();
    visit_stmts(body, &mut |s| {
        let Stmt::If { cond, then, els } = s else { return };
        if !els.is_empty() {
            return;
        }
        let Expr::Un(UnOp::Not, inner) = cond else { return };
        let Expr::Load(set, guard_idx) = inner.as_ref() else { return };
        let mut list: Option<(String, String)> = None; // (list, counter)
        let mut closes = false;
        for t in then {
            if let Stmt::Store { arr, idx, val } = t {
                if let Expr::Var(c) = idx {
                    if val == guard_idx.as_ref() {
                        list = Some((arr.clone(), c.clone()));
                    }
                }
                if arr == set && idx == guard_idx.as_ref() {
                    closes = matches!(val, Expr::Bool(true));
                }
            }
        }
        if let (Some((list, counter)), true) = (list, closes) {
            if !out.iter().any(|g| g.set == *set) {
                out.push(Group { set: set.clone(), list, counter });
            }
        }
    });
    out
}
