//! A small symbolic arithmetic engine for bounds proofs.
//!
//! Values are polynomials over *atoms* — scalar variables, array lengths,
//! and opaque loaded values — with integer coefficients. Every atom is
//! nonnegative by construction (loop variables, dimensions, `pos`/`crd`
//! entries, and allocation lengths all are), which gives the proof engine
//! its one axiom: a polynomial whose coefficients are all nonnegative is
//! itself nonnegative. Everything else is derived by substituting known
//! upper bounds into negative monomials, which only ever *lowers* the
//! polynomial and therefore preserves `≥ 0` proofs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An indivisible nonnegative quantity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A scalar integer variable (loop variable, dimension parameter,
    /// counter) known to be nonnegative.
    Var(String),
    /// The allocated length of an array.
    Len(String),
    /// An opaque nonnegative value (e.g. an array load) with an identity so
    /// bounds can be attached to it.
    Opaque(u64),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Var(v) => write!(f, "{v}"),
            Atom::Len(a) => write!(f, "len({a})"),
            Atom::Opaque(id) => write!(f, "?{id}"),
        }
    }
}

/// A polynomial over [`Atom`]s with `i64` coefficients. The empty monomial
/// is the constant term.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sym {
    terms: BTreeMap<Vec<Atom>, i64>,
}

impl Sym {
    /// The constant polynomial `v`.
    #[must_use]
    pub fn int(v: i64) -> Sym {
        let mut terms = BTreeMap::new();
        if v != 0 {
            terms.insert(Vec::new(), v);
        }
        Sym { terms }
    }

    /// The polynomial consisting of a single atom.
    #[must_use]
    pub fn atom(a: Atom) -> Sym {
        let mut terms = BTreeMap::new();
        terms.insert(vec![a], 1);
        Sym { terms }
    }

    /// A named nonnegative scalar variable.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Sym {
        Sym::atom(Atom::Var(name.into()))
    }

    /// The length of an array.
    #[must_use]
    pub fn len(arr: impl Into<String>) -> Sym {
        Sym::atom(Atom::Len(arr.into()))
    }

    /// True when this is a constant, returning its value.
    #[must_use]
    pub fn as_const(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Vec::new()).copied(),
            _ => None,
        }
    }

    fn insert(&mut self, mono: Vec<Atom>, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let c = self.terms.entry(mono).or_insert(0);
        *c += coeff;
        if *c == 0 {
            let key: Vec<Vec<Atom>> =
                self.terms.iter().filter(|(_, &v)| v == 0).map(|(k, _)| k.clone()).collect();
            for k in key {
                self.terms.remove(&k);
            }
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Sym) -> Sym {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.insert(m.clone(), c);
        }
        out
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Sym) -> Sym {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.insert(m.clone(), -c);
        }
        out
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &Sym) -> Sym {
        let mut out = Sym::default();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let mut m = ma.clone();
                m.extend(mb.iter().cloned());
                m.sort();
                out.insert(m, ca.saturating_mul(cb));
            }
        }
        out
    }

    /// The polynomial's terms as (monomial, coefficient) pairs.
    #[must_use]
    pub fn terms(&self) -> Vec<(Vec<Atom>, i64)> {
        self.terms.iter().map(|(m, &c)| (m.clone(), c)).collect()
    }

    /// All atoms mentioned by the polynomial.
    #[must_use]
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out: Vec<Atom> = self.terms.keys().flatten().cloned().collect();
        out.sort();
        out.dedup();
        out
    }

    /// True when the polynomial mentions the atom.
    #[must_use]
    pub fn mentions(&self, a: &Atom) -> bool {
        self.terms.keys().any(|m| m.contains(a))
    }

    /// Substitutes `atom := rep` everywhere (used to model a loop variable
    /// advancing: `v := v + 1`).
    #[must_use]
    pub fn subst(&self, atom: &Atom, rep: &Sym) -> Sym {
        let mut out = Sym::default();
        for (m, &c) in &self.terms {
            let (occurrences, rest): (Vec<&Atom>, Vec<&Atom>) =
                m.iter().partition(|a| *a == atom);
            let mut term = Sym::int(c);
            for a in rest {
                term = term.mul(&Sym::atom(a.clone()));
            }
            for _ in occurrences {
                term = term.mul(rep);
            }
            out = out.add(&term);
        }
        out
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if m.is_empty() {
                write!(f, "{c}")?;
            } else {
                let atoms: Vec<String> = m.iter().map(|a| a.to_string()).collect();
                if *c == 1 {
                    write!(f, "{}", atoms.join("*"))?;
                } else {
                    write!(f, "{c}*{}", atoms.join("*"))?;
                }
            }
        }
        Ok(())
    }
}

/// Known upper bounds on atoms: `atom ≤ bound` for each listed bound.
/// Lower bounds are implicit — every atom is `≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct Bounds {
    ubs: HashMap<Atom, Vec<Sym>>,
}

impl Bounds {
    /// Records `atom ≤ bound`.
    pub fn add_ub(&mut self, atom: Atom, bound: Sym) {
        let list = self.ubs.entry(atom).or_default();
        if !list.contains(&bound) {
            list.push(bound);
        }
    }

    /// Drops every bound recorded for the atom (when a variable is
    /// reassigned to something unknown).
    pub fn clear(&mut self, atom: &Atom) {
        self.ubs.remove(atom);
    }

    /// The recorded upper bounds for an atom.
    #[must_use]
    pub fn ubs(&self, atom: &Atom) -> &[Sym] {
        self.ubs.get(atom).map_or(&[], Vec::as_slice)
    }

    /// Proves `a ≤ b`, i.e. `b - a ≥ 0`. Returns `false` when the proof
    /// fails — which means *unknown*, not a refutation.
    #[must_use]
    pub fn prove_le(&self, a: &Sym, b: &Sym) -> bool {
        self.prove_nonneg(&b.sub(a), 8)
    }

    /// Proves `a < b`, i.e. `b - a - 1 ≥ 0` (integer-valued atoms).
    #[must_use]
    pub fn prove_lt(&self, a: &Sym, b: &Sym) -> bool {
        self.prove_nonneg(&b.sub(a).sub(&Sym::int(1)), 8)
    }

    /// Refutes `0 ≤ a < len`: true when the access is *provably* out of
    /// bounds on every execution that reaches it (`a < 0` always, or
    /// `a ≥ len` always).
    #[must_use]
    pub fn refute_in_bounds(&self, idx: &Sym, len: &Sym) -> bool {
        // idx ≤ -1 always, or len ≤ idx always.
        self.prove_nonneg(&Sym::int(-1).sub(idx), 8) || self.prove_le(len, idx)
    }

    /// Proves `p ≥ 0` by substituting upper bounds into negative monomials
    /// (each substitution only lowers the polynomial's value).
    fn prove_nonneg(&self, p: &Sym, depth: u32) -> bool {
        if p.terms.values().all(|&c| c >= 0) {
            return true;
        }
        if depth == 0 {
            return false;
        }
        // Find a negative monomial and an atom in it with an upper bound;
        // try each bound.
        for (m, &c) in &p.terms {
            if c >= 0 {
                continue;
            }
            for atom in m {
                for ub in self.ubs(atom) {
                    // Replace one occurrence of `atom` in this monomial by
                    // its upper bound: c*m = c*atom*rest ≥ c*ub*rest since
                    // c < 0 and rest ≥ 0.
                    let mut rest = Sym::int(c);
                    let mut replaced = false;
                    for a in m {
                        if !replaced && a == atom {
                            replaced = true;
                            continue;
                        }
                        rest = rest.mul(&Sym::atom(a.clone()));
                    }
                    let mut candidate = p.clone();
                    candidate.insert(m.clone(), -c);
                    let candidate = candidate.add(&rest.mul(ub));
                    if self.prove_nonneg(&candidate, depth - 1) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ordering() {
        let b = Bounds::default();
        assert!(b.prove_le(&Sym::int(3), &Sym::int(3)));
        assert!(b.prove_lt(&Sym::int(2), &Sym::int(3)));
        assert!(!b.prove_lt(&Sym::int(3), &Sym::int(3)));
    }

    #[test]
    fn loop_variable_bound() {
        // i ≤ n - 1 proves i < n and i*d + j < n*d given j ≤ d - 1.
        let mut b = Bounds::default();
        let (i, j) = (Sym::var("i"), Sym::var("j"));
        let (n, d) = (Sym::var("n"), Sym::var("d"));
        b.add_ub(Atom::Var("i".into()), n.sub(&Sym::int(1)));
        b.add_ub(Atom::Var("j".into()), d.sub(&Sym::int(1)));
        assert!(b.prove_lt(&i, &n));
        assert!(b.prove_lt(&i.mul(&d).add(&j), &n.mul(&d)));
        assert!(!b.prove_lt(&i.mul(&d).add(&j).add(&Sym::int(1)), &n.mul(&d)));
    }

    #[test]
    fn refutation_is_not_just_unproven() {
        let mut b = Bounds::default();
        let i = Sym::var("i");
        // Unknown i against unknown len: neither provable nor refutable.
        assert!(!b.prove_lt(&i, &Sym::len("a")));
        assert!(!b.refute_in_bounds(&i, &Sym::len("a")));
        // i ≥ len is refuted once i has len as a *lower* bound — modeled
        // here as the literal index len(a) + 1.
        let past = Sym::len("a").add(&Sym::int(1));
        assert!(b.refute_in_bounds(&past, &Sym::len("a")));
        // A negative constant index is refuted.
        assert!(b.refute_in_bounds(&Sym::int(-1), &Sym::len("a")));
        b.add_ub(Atom::Var("i".into()), Sym::len("a").sub(&Sym::int(1)));
        assert!(b.prove_lt(&i, &Sym::len("a")));
    }

    #[test]
    fn substitution() {
        let i = Sym::var("i");
        let d = Sym::var("d");
        let idx = i.mul(&d).add(&Sym::int(2));
        let next = idx.subst(&Atom::Var("i".into()), &i.add(&Sym::int(1)));
        assert_eq!(next, i.mul(&d).add(&d).add(&Sym::int(2)));
    }
}
