//! Symbolic cost and footprint analysis over lowered LLIR (DESIGN.md §17).
//!
//! [`analyze_cost`] walks a lowered kernel and derives *provable upper
//! bounds* — polynomials over format-derived atoms (dimension parameters
//! and operand array lengths) — on every resource the executor meters
//! against a [`ResourceBudget`](taco_llir::ResourceBudget):
//!
//! * the bytes of every single allocation charge (`Alloc`, `Realloc`
//!   growth, map-workspace footprint including capacity doubling),
//! * the cumulative bytes charged over the whole run,
//! * the loop iterations consumed at back-edges,
//! * the entries drained through sorted map drains and coordinate-list
//!   sorts (the sort work of the drain idiom), and
//! * the resident footprint and final output sizes of every workspace and
//!   reallocated result array.
//!
//! The bounds are *sound* with respect to the runtime meter under the same
//! assumptions the rest of the verifier makes (and the runtime enforces at
//! bind time): operands are validated tensors, so `pos`/`crd` loads are
//! within their documented ranges and every scalar the kernel derives from
//! them is nonnegative. Every accepted kernel satisfies
//! `concrete(bound) >= observed peak` for the high-water marks the
//! [`BudgetMeter`](taco_llir::BudgetMeter) records — the property the
//! differential soundness suite asserts across the whole candidate space.
//!
//! Bounds that cannot be derived degrade to [`Bound::Unknown`] with the
//! blocking construct named, never to a silently wrong number.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use taco_llir::{elem_bytes, ArrayTy, BinOp, Expr, Stmt, UnOp, WorkspaceKind};
use taco_lower::LoweredKernel;

use crate::assume::Assumptions;
use crate::sym::Sym;

/// A proven upper bound, or a named reason none could be derived.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// `value <= polynomial` on every run over validated operands.
    Finite(Sym),
    /// No finite bound; the string names the blocking construct. This is
    /// conservative degradation, not an error: consumers must treat it as
    /// "may be arbitrarily large".
    Unknown(String),
}

impl Bound {
    /// The zero bound.
    #[must_use]
    pub fn zero() -> Bound {
        Bound::Finite(Sym::int(0))
    }

    /// The polynomial, when finite.
    #[must_use]
    pub fn finite(&self) -> Option<&Sym> {
        match self {
            Bound::Finite(s) => Some(s),
            Bound::Unknown(_) => None,
        }
    }

    /// True when a finite polynomial was derived.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        matches!(self, Bound::Finite(_))
    }

    /// Sum of two bounds; unknown absorbs.
    #[must_use]
    pub fn add(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.add(b)),
            (Bound::Unknown(r), _) | (_, Bound::Unknown(r)) => Bound::Unknown(r.clone()),
        }
    }

    /// Evaluates the bound to a concrete byte/count ceiling under `env`.
    /// `None` when the bound is unknown or mentions an atom the environment
    /// does not value.
    #[must_use]
    pub fn concrete(&self, env: &CostEnv) -> Option<u64> {
        env.eval(self.finite()?)
    }

    fn from_opt(s: Option<Sym>, why: &str) -> Bound {
        match s {
            Some(s) => Bound::Finite(s),
            None => Bound::Unknown(why.to_string()),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(s) => write!(f, "{s}"),
            Bound::Unknown(why) => write!(f, "unbounded ({why})"),
        }
    }
}

/// Concrete atom values for evaluating a [`Bound`]: dimension parameters
/// (and any other integer scalars bound to the kernel) plus bound array
/// lengths. Built from declared shapes at compile time or from a full
/// binding at bind time.
#[derive(Debug, Clone, Default)]
pub struct CostEnv {
    /// Values for `Var` atoms (dimension parameters, scalar params).
    pub vars: HashMap<String, u64>,
    /// Values for `Len` atoms (bound array lengths).
    pub lens: HashMap<String, u64>,
}

impl CostEnv {
    /// The compile-time environment: dimension parameters valued from the
    /// kernel's *declared* tensor shapes (the runtime rejects bindings whose
    /// shapes differ, so these are exact). Array lengths stay unvalued —
    /// bounds that scale with nnz evaluate only at bind time.
    #[must_use]
    pub fn from_shapes(lk: &LoweredKernel) -> CostEnv {
        let mut env = CostEnv::default();
        let mut tensors: Vec<(&str, &[usize])> = vec![(lk.result.name(), lk.result.shape())];
        for op in &lk.operands {
            tensors.push((op.name(), op.shape()));
        }
        for (name, shape) in tensors {
            for (l, &extent) in shape.iter().enumerate() {
                env.vars.insert(format!("{name}{}_dim", l + 1), extent as u64);
            }
        }
        env
    }

    /// Evaluates a polynomial under the environment, saturating at
    /// `u64::MAX` and clamping negative results (a bound like `dim - 1`) to
    /// zero. `None` when an atom has no value.
    #[must_use]
    pub fn eval(&self, s: &Sym) -> Option<u64> {
        let mut acc: i128 = 0;
        for (mono, coeff) in s.terms() {
            let mut term: i128 = i128::from(coeff);
            for atom in &mono {
                let v = match atom {
                    crate::sym::Atom::Var(name) => *self.vars.get(name)?,
                    crate::sym::Atom::Len(arr) => *self.lens.get(arr)?,
                    crate::sym::Atom::Opaque(_) => return None,
                };
                term = term.saturating_mul(i128::from(v));
            }
            acc = acc.saturating_add(term);
        }
        Some(u64::try_from(acc.max(0)).unwrap_or(u64::MAX))
    }
}

/// One metered charge site: a bound on the largest single charge the site
/// can put through the budget meter (array allocation bytes, realloc growth
/// bytes, or a map workspace's whole footprint).
#[derive(Debug, Clone)]
pub struct ChargeBound {
    /// Array or map name charged.
    pub name: String,
    /// Upper bound on any single charge from this site, in bytes.
    pub bytes: Bound,
}

/// The derived footprint of one workspace: for dense workspaces the sum of
/// its value/list/flag arrays, for map workspaces the charged capacity with
/// doubling slack included.
#[derive(Debug, Clone)]
pub struct WorkspaceCost {
    /// Workspace name.
    pub name: String,
    /// Storage backend.
    pub kind: WorkspaceKind,
    /// Upper bound on the workspace's resident bytes.
    pub bytes: Bound,
    /// Bound on the bytes resident *before any entry is written*: for a
    /// dense workspace this equals [`WorkspaceCost::bytes`] (its arrays are
    /// allocated up front); for a map workspace it is the initial capacity
    /// times the entry size, with growth beyond it charged against the
    /// budget at run time. The compile-time budget fallback decides on this.
    pub init_bytes: Bound,
}

/// Final-size bound for an output array the kernel grows by reallocation
/// (result `crd`/`vals` of assembling kernels).
#[derive(Debug, Clone)]
pub struct OutputBound {
    /// Array name.
    pub array: String,
    /// Upper bound on the array's final size in bytes.
    pub bytes: Bound,
}

/// The full cost report for one lowered kernel. Cached on the compiled
/// kernel beside the verification report; every field is an *upper bound*
/// provable from the operand formats alone.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Kernel name.
    pub kernel: String,
    /// Per-site single-charge bounds (the meter's `peak_single_bytes` /
    /// `peak_map_bytes` observables are each dominated by some entry).
    pub charges: Vec<ChargeBound>,
    /// Bound on cumulative bytes charged over the whole run.
    pub total_bytes: Bound,
    /// Bound on loop iterations consumed (`For`/`While`/drain back-edges).
    pub iterations: Bound,
    /// Bound on entries passing through sorted drains and coordinate-list
    /// sorts — the sort work of the map-drain idiom.
    pub drain_entries: Bound,
    /// Per-workspace resident-footprint bounds.
    pub workspaces: Vec<WorkspaceCost>,
    /// Final-size bounds for reallocated output arrays.
    pub outputs: Vec<OutputBound>,
    /// Human-readable derivation notes (inherited assumptions, degradation
    /// reasons).
    pub notes: Vec<String>,
    /// Wall-clock nanoseconds the analysis took.
    pub analysis_nanos: u64,
}

impl CostReport {
    /// The largest single charge the kernel can put through the meter,
    /// evaluated under `env` — the static ceiling on
    /// `Progress::peak_bytes()`. `None` when any charge site is unbounded
    /// or mentions an unvalued atom.
    #[must_use]
    pub fn peak_bytes(&self, env: &CostEnv) -> Option<u64> {
        let mut peak = 0u64;
        for c in &self.charges {
            peak = peak.max(c.bytes.concrete(env)?);
        }
        Some(peak)
    }

    /// Total workspace footprint under `env`: the sum of every workspace's
    /// resident-byte bound. `None` when any workspace bound is unknown or
    /// unvalued.
    #[must_use]
    pub fn workspace_bytes(&self, env: &CostEnv) -> Option<u64> {
        let mut total = 0u64;
        for w in &self.workspaces {
            total = total.saturating_add(w.bytes.concrete(env)?);
        }
        Some(total)
    }

    /// Initial (pre-scatter) workspace footprint under `env`: the sum of
    /// every workspace's [`WorkspaceCost::init_bytes`] bound. This is what
    /// the compile-time budget fallback compares against
    /// `max_workspace_bytes` when considering a sparse backend, since map
    /// growth past the initial capacity is charged at run time. `None` when
    /// any bound is unknown or unvalued.
    #[must_use]
    pub fn workspace_init_bytes(&self, env: &CostEnv) -> Option<u64> {
        let mut total = 0u64;
        for w in &self.workspaces {
            total = total.saturating_add(w.init_bytes.concrete(env)?);
        }
        Some(total)
    }

    /// True when every charge site, the byte total and the iteration count
    /// all have finite symbolic bounds.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.charges.iter().all(|c| c.bytes.is_finite())
            && self.total_bytes.is_finite()
            && self.iterations.is_finite()
    }

    /// A compact multi-line rendering of the report.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "cost[{}]: total_bytes <= {}, iterations <= {}, drain_entries <= {}",
            self.kernel, self.total_bytes, self.iterations, self.drain_entries
        );
        for w in &self.workspaces {
            s.push_str(&format!("\n  workspace {} ({}): <= {} bytes", w.name, w.kind, w.bytes));
        }
        for o in &self.outputs {
            s.push_str(&format!("\n  output {}: <= {} bytes", o.array, o.bytes));
        }
        s
    }
}

/// Derives the symbolic cost report for a lowered kernel.
///
/// The walk is a sound abstract execution of the LLIR statement tree:
///
/// * `For`/`ParallelFor` trip count ≤ UB(`hi`) (lower bounds are ≥ 0 under
///   the validated-operand assumptions);
/// * `While` loops matching the merge co-iteration idiom (a conjunction of
///   `v < end` tests over counters some of which the body advances) run at
///   most Σ UB(`end`) iterations;
/// * monotone append counters are bounded by their initialization plus
///   every increment times the trip bounds of the loops enclosing it;
/// * reallocation-by-doubling sites contribute at most UB of their length
///   expression (growth deltas telescope);
/// * a map workspace's charged capacity never exceeds its initial capacity
///   plus twice the scatter count plus the executor's minimum grant of 8.
#[must_use]
pub fn analyze_cost(lk: &LoweredKernel) -> CostReport {
    let start = Instant::now();
    let assume = Assumptions::for_lowered(lk);
    let scalar_params: HashSet<String> = lk.kernel.scalar_params.iter().cloned().collect();

    // Classify scalars: a *counter* is only ever assigned `v + c` (c > 0) or
    // a nonnegative constant; every other reassigned scalar is havocked.
    let mut assigned: HashMap<String, bool> = HashMap::new(); // name -> counter-like
    classify(&lk.kernel.body, &mut assigned);

    // Counter bounds and per-map scatter totals feed trip bounds of later
    // loops (a drain loop runs `w_size` times; `w_size` is a counter), so
    // iterate the walk to a fixpoint. Dependency chains in generated code
    // are no deeper than the loop nesting; four rounds are ample, and every
    // round is sound given the previous round's (initially all-unknown)
    // lookups.
    let mut state = FixState::default();
    for _ in 0..6 {
        let mut w = Walk::new(&assume, &scalar_params, &assigned, state.clone());
        w.block(&lk.kernel.body);
        let next = w.fix_out();
        let stable = next == state;
        state = next;
        if stable {
            break;
        }
    }
    // Final pass with the stable state collects the charges. (Every round's
    // output is sound, so an unconverged cap is conservative, not wrong.)
    let mut walk = Walk::new(&assume, &scalar_params, &assigned, state);
    walk.block(&lk.kernel.body);

    let mut charges = walk.charges;
    let mut workspaces = Vec::new();
    for meta in &lk.workspaces {
        let (bytes, init_bytes) = match meta.kind {
            WorkspaceKind::Dense => {
                // Resident footprint: the value array plus, when the
                // workspace assembles, its coordinate list and flag array.
                // All of it is allocated up front, so the initial footprint
                // is the full footprint.
                let members =
                    [meta.name.clone(), format!("{}_list", meta.name), format!("{}_set", meta.name)];
                let mut total = Bound::zero();
                for c in charges.iter().filter(|c| members.contains(&c.name)) {
                    total = total.add(&c.bytes);
                }
                (total.clone(), total)
            }
            WorkspaceKind::Hash | WorkspaceKind::CoordList => {
                let bytes = walk.map_footprints.get(&meta.name).cloned().unwrap_or_else(|| {
                    Bound::Unknown(format!("map `{}` never initialized", meta.name))
                });
                let init = walk
                    .map_caps
                    .get(&meta.name)
                    .map(|(kind, cap)| cap.mul_const(kind.entry_bytes()))
                    .unwrap_or_else(|| {
                        Bound::Unknown(format!("map `{}` never initialized", meta.name))
                    });
                (bytes, init)
            }
        };
        workspaces.push(WorkspaceCost { name: meta.name.clone(), kind: meta.kind, bytes, init_bytes });
    }
    // Map footprints are themselves single charges (the meter checks the
    // whole footprint against the single-charge limit on every growth).
    for (map, bytes) in &walk.map_footprints {
        charges.push(ChargeBound { name: map.clone(), bytes: bytes.clone() });
    }

    let mut outputs: Vec<OutputBound> = Vec::new();
    for (arr, bytes) in walk.realloc_finals {
        match outputs.iter_mut().find(|o| o.array == arr) {
            Some(o) => o.bytes = o.bytes.add(&bytes),
            None => outputs.push(OutputBound { array: arr, bytes }),
        }
    }
    outputs.sort_by(|a, b| a.array.cmp(&b.array));

    let mut notes = walk.notes;
    notes.extend(assume.notes.iter().cloned());

    CostReport {
        kernel: lk.kernel.name.clone(),
        charges,
        total_bytes: walk.total_bytes,
        iterations: walk.iterations,
        drain_entries: walk.drain_entries,
        workspaces,
        outputs,
        notes,
        analysis_nanos: start.elapsed().as_nanos().try_into().unwrap_or(u64::MAX),
    }
}

/// Classifies every `Assign` target: `true` when all assignments are
/// counter-shaped (`v = v + c`, c > 0, or `v = k`, k >= 0), `false` once any
/// other assignment is seen.
fn classify(body: &[Stmt], out: &mut HashMap<String, bool>) {
    for s in body {
        match s {
            Stmt::Assign(v, e) => {
                let counter_shaped = match e {
                    Expr::Int(k) => *k >= 0,
                    Expr::Bin(BinOp::Add, a, b) => {
                        matches!((a.as_ref(), b.as_ref()),
                            (Expr::Var(n), Expr::Int(c)) if n == v && *c > 0)
                            || matches!((a.as_ref(), b.as_ref()),
                                (Expr::Int(c), Expr::Var(n)) if n == v && *c > 0)
                    }
                    _ => false,
                };
                let entry = out.entry(v.clone()).or_insert(true);
                *entry = *entry && counter_shaped;
            }
            Stmt::For { body, .. }
            | Stmt::ParallelFor { body, .. }
            | Stmt::While { body, .. }
            | Stmt::MapDrainSorted { body, .. } => classify(body, out),
            Stmt::If { then, els, .. } => {
                classify(then, out);
                classify(els, out);
            }
            _ => {}
        }
    }
}

/// Fixpoint-carried state: final counter bounds (relative to their
/// declaration scope) and per-map scatter totals from the previous round.
#[derive(Debug, Clone, Default, PartialEq)]
struct FixState {
    counters: HashMap<String, Option<Sym>>,
    scatters: HashMap<String, Option<Sym>>,
}

/// Per-counter accumulation during one round.
#[derive(Debug, Clone, Default)]
struct CounterAcc {
    /// Loop depth of the declaration (trip products are taken relative to
    /// it).
    decl_depth: usize,
    /// Declared/assigned base values (summed — a sound join of maxima over
    /// nonnegative quantities).
    base: Option<Sym>,
    /// Σ increment × enclosing trip products since declaration.
    increments: Option<Sym>,
}

/// One abstract-execution round over the kernel body.
struct Walk<'a> {
    assume: &'a Assumptions,
    scalar_params: &'a HashSet<String>,
    assigned: &'a HashMap<String, bool>,
    prev: FixState,

    /// Trip-bound stack of the enclosing loops (`None` = unbounded loop).
    trips: Vec<Option<Sym>>,
    /// Scoped upper bounds for never-reassigned declared scalars.
    scopes: Vec<HashMap<String, Option<Sym>>>,
    /// This round's counter accumulation.
    counters: HashMap<String, CounterAcc>,
    /// This round's per-map scatter totals.
    scatters: HashMap<String, Option<Sym>>,
    /// Map init-capacity bounds (for footprint math).
    map_caps: HashMap<String, (WorkspaceKind, Bound)>,
    /// Finished map footprint bounds.
    map_footprints: HashMap<String, Bound>,

    charges: Vec<ChargeBound>,
    total_bytes: Bound,
    iterations: Bound,
    drain_entries: Bound,
    /// Final-size byte bounds per reallocated array site.
    realloc_finals: Vec<(String, Bound)>,
    notes: Vec<String>,
}

impl<'a> Walk<'a> {
    fn new(
        assume: &'a Assumptions,
        scalar_params: &'a HashSet<String>,
        assigned: &'a HashMap<String, bool>,
        prev: FixState,
    ) -> Walk<'a> {
        Walk {
            assume,
            scalar_params,
            assigned,
            prev,
            trips: Vec::new(),
            scopes: vec![HashMap::new()],
            counters: HashMap::new(),
            scatters: HashMap::new(),
            map_caps: HashMap::new(),
            map_footprints: HashMap::new(),
            charges: Vec::new(),
            total_bytes: Bound::zero(),
            iterations: Bound::zero(),
            drain_entries: Bound::zero(),
            realloc_finals: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn fix_out(&self) -> FixState {
        FixState {
            counters: self
                .counters
                .iter()
                .map(|(k, acc)| {
                    let ub = match (&acc.base, &acc.increments) {
                        (Some(b), Some(i)) => Some(b.add(i)),
                        _ => None,
                    };
                    (k.clone(), ub)
                })
                .collect(),
            scatters: self.scatters.clone(),
        }
    }

    /// Product of the trip bounds of the loops entered since `depth`.
    fn trip_product_since(&self, depth: usize) -> Option<Sym> {
        let mut p = Sym::int(1);
        for t in &self.trips[depth..] {
            p = p.mul(t.as_ref()?);
        }
        Some(p)
    }

    /// `true` for scalars whose every assignment is counter-shaped.
    fn is_counter(&self, v: &str) -> bool {
        self.assigned.get(v).copied().unwrap_or(false)
    }

    fn lookup_scalar(&self, v: &str) -> Option<Sym> {
        for scope in self.scopes.iter().rev() {
            if let Some(ub) = scope.get(v) {
                return ub.clone();
            }
        }
        None
    }

    /// Upper bound of an integer expression as a polynomial over dimension
    /// and length atoms, under the validated-operand assumptions (`None` =
    /// unknown). Sound: `eval(e) <= ub(e)` on every reachable state.
    fn ub(&self, e: &Expr) -> Option<Sym> {
        match e {
            Expr::Int(v) => Some(Sym::int(*v)),
            Expr::Float(_) | Expr::Bool(_) => None,
            Expr::Var(v) => {
                if self.is_counter(v) {
                    return self.prev.counters.get(v).cloned().flatten();
                }
                if let Some(ub) = self.lookup_scalar(v) {
                    return Some(ub);
                }
                if self.scalar_params.contains(v) {
                    // Dimension parameters are their own (canonical) atoms.
                    return Some(Sym::var(self.assume.canon_dim(v)));
                }
                None
            }
            // Loads close through the per-array value bounds (pos <=
            // len(crd), crd <= dim - 1) rather than opaque atoms, so the
            // resulting polynomial is evaluable once operands are bound.
            Expr::Load(arr, _) => self.assume.arrays.get(arr)?.value_ub.clone(),
            Expr::Len(arr) => {
                Some(self.assume.lens.get(arr).cloned().unwrap_or_else(|| Sym::len(arr.clone())))
            }
            // Negation of a nonnegative quantity is bounded by zero; `Not`
            // is boolean.
            Expr::Un(UnOp::Neg, _) => Some(Sym::int(0)),
            Expr::Un(UnOp::Not, _) => None,
            Expr::Bin(op, a, b) => match op {
                BinOp::Add => Some(self.ub(a)?.add(&self.ub(b)?)),
                // Subtrahends are nonnegative under the assumptions, so
                // dropping them (or subtracting an exact constant) keeps the
                // bound an upper bound.
                BinOp::Sub => match b.as_ref() {
                    Expr::Int(c) => Some(self.ub(a)?.sub(&Sym::int(*c))),
                    _ => self.ub(a),
                },
                BinOp::Mul => Some(self.ub(a)?.mul(&self.ub(b)?)),
                // Divisors/moduli in generated kernels are positive.
                BinOp::Div | BinOp::Rem => self.ub(a),
                // `min` is bounded by either side; prefer a constant bound,
                // then whichever side is bounded at all.
                BinOp::Min => {
                    let (ua, ub) = (self.ub(a), self.ub(b));
                    match (&ua, &ub) {
                        (Some(x), Some(y)) => {
                            if let (Some(cx), Some(cy)) = (x.as_const(), y.as_const()) {
                                return Some(Sym::int(cx.min(cy)));
                            }
                            if x.as_const().is_some() {
                                return ua;
                            }
                            if y.as_const().is_some() {
                                return ub;
                            }
                            ua
                        }
                        (Some(_), None) => ua,
                        (None, _) => ub,
                    }
                }
                // `max(a, b) <= a + b` for nonnegative operands.
                BinOp::Max => Some(self.ub(a)?.add(&self.ub(b)?)),
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or => None,
            },
        }
    }

    /// Bound charge accounting helpers. `site` charges happen once per
    /// execution of the surrounding loops; telescoping charges (realloc
    /// growth, map growth) contribute their *final* value once.
    fn charge_site(&mut self, name: &str, per_exec: &Bound, telescoping: bool) {
        self.charges.push(ChargeBound { name: name.to_string(), bytes: per_exec.clone() });
        let contribution = if telescoping {
            per_exec.clone()
        } else {
            match (per_exec.finite(), self.trip_product_since(0)) {
                (Some(b), Some(p)) => Bound::Finite(b.mul(&p)),
                (Some(_), None) => Bound::Unknown("charge inside unbounded loop".to_string()),
                (None, _) => per_exec.clone(),
            }
        };
        self.total_bytes = self.total_bytes.add(&contribution);
    }

    fn add_iterations(&mut self, trip: &Option<Sym>) {
        let total = match (trip, self.trip_product_since(0)) {
            (Some(t), Some(p)) => Bound::Finite(t.mul(&p)),
            _ => Bound::Unknown("loop with unbounded trip count".to_string()),
        };
        self.iterations = self.iterations.add(&total);
    }

    /// Trip bound of a `While` matching the merge co-iteration idiom: split
    /// the condition into `lhs < rhs` / `lhs <= rhs` conjuncts over scalar
    /// variables; if the body increments at least one of those scalars, the
    /// loop runs at most Σ UB(rhs) (+1 per `<=`) iterations — each
    /// iteration strictly advances one monotone counter toward its end.
    /// (The dataflow verifier independently checks counter monotonicity.)
    fn while_trip(&self, cond: &Expr, body: &[Stmt]) -> Option<Sym> {
        let mut conjuncts = Vec::new();
        split_and(cond, &mut conjuncts);
        let mut total = Sym::int(0);
        let mut lhs_vars = Vec::new();
        for c in conjuncts {
            match c {
                Expr::Bin(BinOp::Lt, a, b) => {
                    let Expr::Var(v) = a.as_ref() else { return None };
                    lhs_vars.push(v.clone());
                    total = total.add(&self.ub(&b)?);
                }
                Expr::Bin(BinOp::Le, a, b) => {
                    let Expr::Var(v) = a.as_ref() else { return None };
                    lhs_vars.push(v.clone());
                    total = total.add(&self.ub(&b)?).add(&Sym::int(1));
                }
                _ => return None,
            }
        }
        if lhs_vars.is_empty() || !lhs_vars.iter().any(|v| increments_var(body, v)) {
            return None;
        }
        Some(total)
    }

    fn block(&mut self, body: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::DeclInt(v, e) => {
                if self.is_counter(v) {
                    let base = self.ub(e);
                    let depth = self.trips.len();
                    let acc = self.counters.entry(v.clone()).or_insert(CounterAcc {
                        decl_depth: depth,
                        base: Some(Sym::int(0)),
                        increments: Some(Sym::int(0)),
                    });
                    acc.decl_depth = acc.decl_depth.min(depth);
                    acc.base = match (&acc.base, base) {
                        (Some(a), Some(b)) => Some(a.add(&b)),
                        _ => None,
                    };
                } else {
                    let ub = if self.assigned.contains_key(v) { None } else { self.ub(e) };
                    self.scopes.last_mut().expect("scope stack").insert(v.clone(), ub);
                }
            }
            Stmt::DeclFloat(..) | Stmt::DeclBool(..) => {}
            Stmt::Assign(v, e) => {
                if self.is_counter(v) {
                    let inc = match e {
                        Expr::Bin(BinOp::Add, a, b) => match (a.as_ref(), b.as_ref()) {
                            (Expr::Var(n), Expr::Int(c)) if n == v => Some(*c),
                            (Expr::Int(c), Expr::Var(n)) if n == v => Some(*c),
                            _ => None,
                        },
                        _ => None,
                    };
                    let depth =
                        self.counters.get(v).map_or(0, |acc| acc.decl_depth.min(self.trips.len()));
                    let acc = self.counters.entry(v.clone()).or_insert(CounterAcc {
                        decl_depth: depth,
                        base: Some(Sym::int(0)),
                        increments: Some(Sym::int(0)),
                    });
                    match inc {
                        Some(c) => {
                            let contribution = self
                                .trips
                                .get(depth..)
                                .and_then(|rest| {
                                    let mut p = Sym::int(c);
                                    for t in rest {
                                        p = p.mul(t.as_ref()?);
                                    }
                                    Some(p)
                                });
                            acc.increments = match (&acc.increments, contribution) {
                                (Some(a), Some(b)) => Some(a.add(&b)),
                                _ => None,
                            };
                        }
                        None => {
                            // `v = k` reset: fold the constant into the base.
                            if let Expr::Int(k) = e {
                                acc.base =
                                    acc.base.as_ref().map(|b| b.add(&Sym::int((*k).max(0))));
                            } else {
                                acc.base = None;
                            }
                        }
                    }
                }
                // Non-counter reassigned scalars were havocked at
                // declaration; nothing to update.
            }
            Stmt::Store { .. } | Stmt::StoreAdd { .. } | Stmt::Memset { .. } => {}
            Stmt::For { var, hi, body, .. } | Stmt::ParallelFor { var, hi, body, .. } => {
                let trip = self.ub(hi);
                self.add_iterations(&trip);
                self.trips.push(trip.clone());
                self.scopes.push(HashMap::new());
                let var_ub = trip.map(|t| t.sub(&Sym::int(1)));
                self.scopes.last_mut().expect("scope stack").insert(var.clone(), var_ub);
                for s in body {
                    self.stmt(s);
                }
                self.scopes.pop();
                self.trips.pop();
            }
            Stmt::While { cond, body } => {
                let trip = self.while_trip(cond, body);
                if trip.is_none() {
                    self.notes.push(
                        "while loop outside the merge co-iteration idiom: iteration bound \
                         degrades to unknown"
                            .to_string(),
                    );
                }
                self.add_iterations(&trip);
                self.trips.push(trip);
                self.block(body);
                self.trips.pop();
            }
            Stmt::If { then, els, .. } => {
                // Charges and counter increments from both branches
                // accumulate — a sound join since all quantities are
                // monotone.
                self.block(then);
                self.block(els);
            }
            Stmt::Alloc { arr, ty, len } => {
                let bytes =
                    Bound::from_opt(self.ub(len), "allocation length not bounded by the formats")
                        .mul_const(elem_bytes(*ty));
                self.charge_site(arr, &bytes, false);
            }
            Stmt::Realloc { arr, len } => {
                // Growth deltas telescope: their sum (and any single delta)
                // is bounded by the largest length the site can request.
                let ty = ArrayTy::Int; // realloc'd arrays are crd (Int) or vals (F64): 8 bytes.
                let bytes =
                    Bound::from_opt(self.ub(len), "realloc length not bounded by the formats")
                        .mul_const(elem_bytes(ty));
                self.charge_site(arr, &bytes, true);
                self.realloc_finals.push((arr.clone(), bytes));
            }
            Stmt::Sort { hi, .. } => {
                let entries = Bound::from_opt(self.ub(hi), "sort extent not bounded");
                self.drain_entries = self.drain_entries.add(&entries);
            }
            Stmt::MapInit { map, kind, capacity } => {
                // The init charge (capacity × entry bytes) is subsumed by
                // the footprint bound, which the meter checks in whole on
                // every growth; init + growth deltas telescope to the final
                // footprint, which is the map's total-bytes contribution.
                let cap = Bound::from_opt(self.ub(capacity), "map capacity not bounded");
                self.map_caps.insert(map.clone(), (*kind, cap));
                self.finish_map_footprint(map);
            }
            Stmt::MapScatter { map, .. } => {
                let contribution = self.trip_product_since(0);
                let entry =
                    self.scatters.entry(map.clone()).or_insert_with(|| Some(Sym::int(0)));
                let prev = entry.clone();
                *entry = match (prev, contribution) {
                    (Some(a), Some(b)) => Some(a.add(&b)),
                    _ => None,
                };
            }
            Stmt::MapDrainSorted { map, body, .. } => {
                // Entries per drain are bounded by the map's total scatter
                // count (a drain leaves the map empty, so this is a global
                // over-estimate).
                let entries = self.prev.scatters.get(map).cloned().flatten();
                let entries_bound =
                    Bound::from_opt(entries.clone(), "drain of a map with unbounded scatters");
                self.drain_entries = self.drain_entries.add(&entries_bound);
                self.add_iterations(&entries);
                self.trips.push(entries);
                self.block(body);
                self.trips.pop();
            }
            Stmt::Comment(_) => {}
        }
    }

    /// Derives the footprint bound of a map from its initial capacity and
    /// the scatter totals of the *previous* fixpoint round: the charged
    /// capacity never exceeds `initial + 2 * scatters + 8` entries, because
    /// growth only happens when the capacity is below the needed entry
    /// count and at most doubles past it (with the executor's minimum grant
    /// of 8).
    fn finish_map_footprint(&mut self, map: &str) {
        let Some((kind, cap)) = self.map_caps.get(map).cloned() else { return };
        let scatters = self.prev.scatters.get(map).cloned().flatten();
        let scatters_bound = Bound::from_opt(scatters, "scatter count not bounded");
        let entries =
            cap.add(&scatters_bound.mul_const(2)).add(&Bound::Finite(Sym::int(8)));
        let footprint = entries.mul_const(kind.entry_bytes());
        if self.map_footprints.insert(map.to_string(), footprint.clone()).is_none() {
            self.total_bytes = self.total_bytes.add(&footprint);
        }
    }
}

impl Bound {
    /// Multiplies a bound by a constant factor.
    #[must_use]
    pub fn mul_const(&self, k: u64) -> Bound {
        match self {
            Bound::Finite(s) => {
                Bound::Finite(s.mul(&Sym::int(i64::try_from(k).unwrap_or(i64::MAX))))
            }
            Bound::Unknown(r) => Bound::Unknown(r.clone()),
        }
    }
}

/// Splits a conjunction into its conjuncts.
fn split_and(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Bin(BinOp::And, a, b) => {
            split_and(a, out);
            split_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// True when the body (recursively) contains `v = v + c` with `c > 0`.
fn increments_var(body: &[Stmt], v: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Assign(name, Expr::Bin(BinOp::Add, a, b)) if name == v => {
            matches!(
                (a.as_ref(), b.as_ref()),
                (Expr::Var(n), Expr::Int(c)) if n == v && *c > 0
            ) || matches!(
                (a.as_ref(), b.as_ref()),
                (Expr::Int(c), Expr::Var(n)) if n == v && *c > 0
            )
        }
        Stmt::For { body, .. }
        | Stmt::ParallelFor { body, .. }
        | Stmt::While { body, .. }
        | Stmt::MapDrainSorted { body, .. } => increments_var(body, v),
        Stmt::If { then, els, .. } => increments_var(then, v) || increments_var(els, v),
        _ => false,
    })
}
