//! Typed diagnostics produced by the verifier.
//!
//! Every finding is a [`VerifyError`] wrapped in a [`Diagnostic`] that
//! carries provenance: the path of child indices from the kernel body to
//! the offending statement, plus that statement's C printout. A
//! [`VerifyReport`] collects the findings for one kernel together with the
//! assumptions the proofs leaned on.

use std::fmt;

/// How verification verdicts are enforced along the compile path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyMode {
    /// Skip verification entirely.
    Off,
    /// Verify and record the report, but never fail compilation.
    Warn,
    /// Verify and fail compilation when any deny-severity finding exists.
    Deny,
}

impl fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyMode::Off => write!(f, "off"),
            VerifyMode::Warn => write!(f, "warn"),
            VerifyMode::Deny => write!(f, "deny"),
        }
    }
}

/// A property violation found by the static verifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VerifyError {
    /// An array element is read (or accumulated into) before any statement
    /// defines its contents on some path.
    UninitializedRead {
        /// The array read too early.
        array: String,
    },
    /// A workspace, guard set, or coordinate list is assumed clean at the
    /// top of a loop iteration but is not restored by the end of the
    /// previous iteration (Section VI reset obligation).
    MissingReset {
        /// The array whose reset obligation is not discharged.
        array: String,
    },
    /// An array access whose index is provably outside `[0, len)`.
    OutOfBounds {
        /// The array accessed out of bounds.
        array: String,
        /// Printed form of the offending index expression.
        index: String,
    },
    /// An append counter that can move backwards, so the `pos` array
    /// assembled from it would not be monotone.
    PosNotMonotone {
        /// The append counter variable.
        counter: String,
    },
    /// Two iterations of a parallel loop may touch the same location (and
    /// the access is not covered by privatization or the append merge).
    DataRace {
        /// The shared variable or array with conflicting accesses.
        name: String,
        /// The parallel loop variable.
        var: String,
        /// Why the accesses conflict.
        detail: String,
    },
    /// A map workspace (hash / coord-list) is scattered into or drained
    /// before any `MapInit` establishes its slots on some path.
    MapNotInitialized {
        /// The map workspace used too early.
        map: String,
    },
    /// A bound or disjointness obligation the verifier could neither prove
    /// nor refute (reported at warn severity).
    Unproven {
        /// The obligation, in printed form.
        obligation: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UninitializedRead { array } => {
                write!(f, "array `{array}` may be read before it is initialized")
            }
            VerifyError::MissingReset { array } => write!(
                f,
                "workspace array `{array}` is assumed clean at the top of each iteration but \
                 is not restored between iterations"
            ),
            VerifyError::OutOfBounds { array, index } => {
                write!(f, "access `{array}[{index}]` is provably out of bounds")
            }
            VerifyError::PosNotMonotone { counter } => write!(
                f,
                "append counter `{counter}` may decrease, breaking pos-array monotonicity"
            ),
            VerifyError::DataRace { name, var, detail } => write!(
                f,
                "parallel loop over `{var}` has conflicting accesses to `{name}`: {detail}"
            ),
            VerifyError::MapNotInitialized { map } => {
                write!(f, "map workspace `{map}` is used before any MapInit establishes it")
            }
            VerifyError::Unproven { obligation } => {
                write!(f, "could not prove: {obligation}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Whether a finding fails compilation under [`VerifyMode::Deny`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Recorded but never fails compilation: an obligation the verifier
    /// could not discharge either way.
    Warn,
    /// A proven violation; fails compilation under [`VerifyMode::Deny`].
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One verifier finding with statement provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What went wrong.
    pub error: VerifyError,
    /// Whether the finding is proven (deny) or merely undischarged (warn).
    pub severity: Severity,
    /// Child-index path from the kernel body to the offending statement:
    /// `path[0]` indexes `Kernel::body`, each later entry indexes the
    /// enclosing statement's body (then-branch indices for `If`).
    pub path: Vec<usize>,
    /// C printout of the offending statement (first line).
    pub stmt: String,
    /// Concrete index-notation printout of the statement the kernel was
    /// lowered from, when the caller supplied it.
    pub origin: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path: Vec<String> = self.path.iter().map(|i| i.to_string()).collect();
        write!(f, "[{}] {} (at body/{}: `{}`", self.severity, self.error, path.join("/"), self.stmt)?;
        if let Some(origin) = &self.origin {
            write!(f, ", lowered from `{origin}`")?;
        }
        write!(f, ")")
    }
}

/// The result of verifying one kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Name of the verified kernel.
    pub kernel: String,
    /// All findings, deny severity first.
    pub diagnostics: Vec<Diagnostic>,
    /// Facts about the inputs the proofs relied on (checked at bind time by
    /// the tensor layer, e.g. pos monotonicity of operands).
    pub assumptions: Vec<String>,
}

impl VerifyReport {
    /// True when no deny-severity finding exists.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.denies() == 0
    }

    /// Number of deny-severity findings.
    #[must_use]
    pub fn denies(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count()
    }

    /// Number of warn-severity findings.
    #[must_use]
    pub fn warns(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// Attaches the concrete-notation origin to every diagnostic.
    pub fn with_origin(mut self, origin: &str) -> VerifyReport {
        for d in &mut self.diagnostics {
            d.origin = Some(origin.to_string());
        }
        self
    }

    /// The first deny-severity diagnostic, if any.
    #[must_use]
    pub fn first_deny(&self) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.severity == Severity::Deny)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verify `{}`: {} deny, {} warn, {} assumption(s)",
            self.kernel,
            self.denies(),
            self.warns(),
            self.assumptions.len()
        )
    }
}
