//! Parallel write-set race check.
//!
//! For every [`Stmt::ParallelFor`] the main walk records the symbolic
//! footprint of each iteration: every store, accumulate, whole-array
//! operation, and load touching an array that is neither in the loop's
//! `private` list nor covered by its [`AppendMerge`]. This module then
//! decides whether the per-iteration write sets are disjoint.
//!
//! The execution model (see `taco_llir::exec`) gives each worker a clone
//! of the machine state and merges shared arrays back by bitwise diff in
//! chunk order. Under that model:
//!
//! * writing a scalar declared *outside* the loop is loop-carried state and
//!   always wrong with more than one worker (the classic
//!   `ReductionNotPrivatized` shape, caught here at the LLIR level);
//! * an *accumulating* store (`+=`) reads the previous value, so its
//!   target slice must be **provably** disjoint across iterations — an
//!   unproven obligation is a deny, because a lost update is silent;
//! * a plain store to an unproven slice merges deterministically (last
//!   chunk wins, matching serial last-iteration-wins), so it only warns;
//! * whole-array operations (`memset`, `sort`, `realloc`) on a shared
//!   array are denied outright.
//!
//! Two slice idioms are proven disjoint: affine indices mentioning the
//! parallel variable (`A[i*D + j]` with `j < D`), and loop variables that
//! range over one segment `pos[i] .. pos[i+1]` of a validated — hence
//! monotone — `pos` array (marked *sliced* by the walk).

use std::collections::HashSet;

use taco_llir::{AppendMerge, Stmt};

use crate::dataflow::Analyzer;
use crate::error::{Severity, VerifyError};
use crate::sym::{Atom, Sym};

/// How a store writes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteKind {
    /// `arr[idx] = v` — overwrites.
    Assign,
    /// `arr[idx] += v` — reads then writes.
    Accumulate,
}

struct Write {
    arr: String,
    idx: Sym,
    kind: WriteKind,
    stmt: String,
}

/// Footprint recorder for one active parallel loop.
pub(crate) struct RaceCtx {
    pub(crate) var_name: String,
    pub(crate) var_atom: Atom,
    /// Arrays exempt from the check: per-thread privates and the arrays a
    /// declared [`AppendMerge`] stitches after the join.
    skip: HashSet<String>,
    /// The append counter, if any — the one outer scalar a parallel loop
    /// may legally advance.
    pub(crate) counter: Option<String>,
    /// Scalars declared inside the body (thread-local by construction).
    pub(crate) declared: HashSet<String>,
    /// Outer scalars already reported as raced (one diagnostic each).
    pub(crate) reported_scalars: HashSet<String>,
    /// Loop-variable atoms whose values partition disjointly across
    /// iterations of this parallel loop (pos-segment loops).
    pub(crate) sliced: HashSet<Atom>,
    writes: Vec<Write>,
    reads: Vec<(String, Sym)>,
    whole: Vec<(String, String)>,
}

impl RaceCtx {
    pub(crate) fn new(
        var: &str,
        var_atom: Atom,
        private: &[String],
        append: &Option<AppendMerge>,
    ) -> RaceCtx {
        let mut skip: HashSet<String> = private.iter().cloned().collect();
        let mut counter = None;
        if let Some(a) = append {
            skip.extend(a.data.iter().cloned());
            if let Some(pos) = &a.pos {
                skip.insert(pos.clone());
            }
            counter = Some(a.counter.clone());
        }
        RaceCtx {
            var_name: var.to_string(),
            var_atom,
            skip,
            counter,
            declared: HashSet::new(),
            reported_scalars: HashSet::new(),
            sliced: HashSet::new(),
            writes: Vec::new(),
            reads: Vec::new(),
            whole: Vec::new(),
        }
    }

    pub(crate) fn record_write(&mut self, arr: &str, idx: &Sym, kind: WriteKind, stmt: String) {
        if !self.skip.contains(arr) {
            self.writes.push(Write { arr: arr.to_string(), idx: idx.clone(), kind, stmt });
        }
    }

    pub(crate) fn record_read(&mut self, arr: &str, idx: &Sym) {
        if !self.skip.contains(arr) {
            self.reads.push((arr.to_string(), idx.clone()));
        }
    }

    pub(crate) fn record_whole_array(&mut self, arr: &str, stmt: String) {
        if !self.skip.contains(arr) {
            self.whole.push((arr.to_string(), stmt));
        }
    }
}

/// The `[lo, ub]` slice an index covers within one iteration, as functions
/// of the parallel variable: iteration-varying atoms (inner loop variables
/// and loaded values — always opaque) are replaced by 0 for the lower end
/// and by their recorded upper bounds for the upper end. Named variables
/// and lengths are loop-invariant and stay symbolic.
fn slice(az: &Analyzer<'_>, ctx: &RaceCtx, idx: &Sym) -> Option<(Sym, Sym)> {
    let mut lo = idx.clone();
    let mut ub = idx.clone();
    for atom in idx.atoms() {
        if atom == ctx.var_atom || !matches!(atom, Atom::Opaque(_)) {
            continue;
        }
        lo = lo.subst(&atom, &Sym::int(0));
        let bound = az.bounds.ubs(&atom).first()?.clone();
        ub = ub.subst(&atom, &bound);
    }
    Some((lo, ub))
}

/// Residue-class disjointness for interleaved writes: `idx = v + S·rest`
/// where the parallel variable appears alone with coefficient 1, every
/// other monomial contains a common stride atom `S` with a nonnegative
/// coefficient, and `v ≤ S - 1`. Distinct iterations then write distinct
/// residues modulo the stride (the `A[i*D + j]` pattern parallelized over
/// the column variable `j`).
fn injective_mod(az: &Analyzer<'_>, ctx: &RaceCtx, idx: &Sym) -> bool {
    let v = &ctx.var_atom;
    let mut v_part = Sym::int(0);
    let mut rest = Sym::int(0);
    for (mono, coeff) in idx.terms() {
        if mono.contains(v) {
            v_part = v_part.add(&Sym::int(coeff).mul(&mono_sym(&mono)));
        } else if coeff < 0 {
            return false;
        } else {
            rest = rest.add(&Sym::int(coeff).mul(&mono_sym(&mono)));
        }
    }
    if v_part != Sym::atom(v.clone()) {
        return false;
    }
    // A common stride atom dividing every non-v monomial (constants break
    // divisibility, so every monomial must be non-constant).
    let candidates = rest.atoms();
    candidates.into_iter().any(|s| {
        s != *v
            && rest.terms().iter().all(|(mono, _)| mono.contains(&s))
            && az.bounds.prove_lt(&Sym::atom(v.clone()), &Sym::atom(s.clone()))
    }) || rest == Sym::int(0)
}

fn mono_sym(mono: &[Atom]) -> Sym {
    let mut out = Sym::int(1);
    for a in mono {
        out = out.mul(&Sym::atom(a.clone()));
    }
    out
}

/// True when iteration `v`'s range `[lo(v), ub(v)]` provably ends before
/// iteration `v + 1`'s range `[lo2(v+1), …]` begins.
fn disjoint(az: &Analyzer<'_>, ctx: &RaceCtx, ub: &Sym, lo2: &Sym) -> bool {
    let next = Sym::atom(ctx.var_atom.clone()).add(&Sym::int(1));
    let lo2_next = lo2.subst(&ctx.var_atom, &next);
    az.bounds.prove_lt(ub, &lo2_next)
}

/// Analyzes the recorded footprint of one completed parallel loop.
pub(crate) fn analyze(az: &mut Analyzer<'_>, ctx: RaceCtx, stmt: &Stmt) {
    // Whole-array operations on shared arrays race by construction.
    for (arr, op) in &ctx.whole {
        az.diag(
            VerifyError::DataRace {
                name: arr.clone(),
                var: ctx.var_name.clone(),
                detail: format!(
                    "whole-array operation `{op}` on an array that is neither private \
                     nor merged by append"
                ),
            },
            Severity::Deny,
            stmt,
        );
    }

    // Per-array pairwise slice disjointness.
    let arrays: Vec<String> = {
        let mut a: Vec<String> = ctx.writes.iter().map(|w| w.arr.clone()).collect();
        a.sort();
        a.dedup();
        a
    };
    for arr in &arrays {
        let writes: Vec<&Write> = ctx.writes.iter().filter(|w| &w.arr == arr).collect();
        let accumulates = writes.iter().any(|w| w.kind == WriteKind::Accumulate);
        let mut proven = true;
        for w in &writes {
            // A pos-segment loop variable partitions disjointly by itself,
            // and a residue-class index is injective across iterations.
            if is_sliced(&ctx, &w.idx) || injective_mod(az, &ctx, &w.idx) {
                continue;
            }
            if !w.idx.mentions(&ctx.var_atom) {
                // The same location (symbolically independent of the
                // parallel variable) is touched by every iteration.
                if w.kind == WriteKind::Accumulate {
                    az.diag(
                        VerifyError::DataRace {
                            name: arr.clone(),
                            var: ctx.var_name.clone(),
                            detail: format!(
                                "`{}` accumulates into a location independent of the \
                                 parallel variable (reduction not privatized)",
                                w.stmt
                            ),
                        },
                        Severity::Deny,
                        stmt,
                    );
                    proven = false;
                    continue;
                }
                proven = false;
                continue;
            }
            // Pairwise: this write's upper end stays below every write's
            // lower end in the next iteration (including its own).
            let Some((_, ub)) = slice(az, &ctx, &w.idx) else {
                proven = false;
                continue;
            };
            for other in &writes {
                let other_lo = if is_sliced(&ctx, &other.idx) {
                    continue;
                } else {
                    match slice(az, &ctx, &other.idx) {
                        Some((lo, _)) => lo,
                        None => {
                            proven = false;
                            continue;
                        }
                    }
                };
                if !disjoint(az, &ctx, &ub, &other_lo) {
                    proven = false;
                }
            }
        }
        if !proven {
            let (error, severity) = if accumulates {
                (
                    VerifyError::DataRace {
                        name: arr.clone(),
                        var: ctx.var_name.clone(),
                        detail: "iteration write sets for an accumulated array cannot be \
                                 proven disjoint"
                            .to_string(),
                    },
                    Severity::Deny,
                )
            } else {
                (
                    VerifyError::Unproven {
                        obligation: format!(
                            "iterations of parallel loop `{}` write disjoint slices of `{arr}`",
                            ctx.var_name
                        ),
                    },
                    Severity::Warn,
                )
            };
            az.diag(error, severity, stmt);
        }

        // Reads of a concurrently written shared array must stay within the
        // iteration's own write slice.
        for (rarr, ridx) in &ctx.reads {
            if rarr != arr || is_sliced(&ctx, ridx) {
                continue;
            }
            let ok = slice(az, &ctx, ridx).is_some_and(|(rlo, rub)| {
                writes.iter().all(|w| {
                    is_sliced(&ctx, &w.idx)
                        || slice(az, &ctx, &w.idx).is_some_and(|(wlo, _)| {
                            disjoint(az, &ctx, &rub, &wlo)
                                && az.bounds.prove_le(&wlo, &rlo)
                        })
                })
            });
            if !ok {
                az.diag(
                    VerifyError::Unproven {
                        obligation: format!(
                            "reads of `{arr}` stay within the writing iteration's slice \
                             in parallel loop `{}`",
                            ctx.var_name
                        ),
                    },
                    Severity::Warn,
                    stmt,
                );
                break;
            }
        }
    }
}

fn is_sliced(ctx: &RaceCtx, idx: &Sym) -> bool {
    ctx.sliced.iter().any(|a| *idx == Sym::atom(a.clone()))
}
