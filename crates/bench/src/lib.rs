//! Benchmark harness reproducing the evaluation of *Tensor Algebra
//! Compilation with Workspaces* (CGO 2019, Section VIII): Table I and
//! Figures 11, 12 and 13.
//!
//! Run the binaries to regenerate each artifact:
//!
//! ```text
//! cargo run --release -p taco-bench --bin table1
//! cargo run --release -p taco-bench --bin fig11      [-- --scale 0.05]
//! cargo run --release -p taco-bench --bin fig12_left [-- --scale 0.01]
//! cargo run --release -p taco-bench --bin fig12_right
//! cargo run --release -p taco-bench --bin fig13
//! ```
//!
//! The paper's absolute numbers came from compiled C on a dual-socket Xeon
//! against the real SuiteSparse/FROSTT datasets; this harness runs native
//! Rust kernels on synthetic stand-ins (DESIGN.md §5), so only the *shape*
//! of each result — who wins, by roughly what factor, where crossovers
//! fall — is expected to match. `EXPERIMENTS.md` records both.

#![warn(missing_docs)]

pub mod figures;
pub mod timing;
pub mod workloads;

/// Parses `--scale X`, `--rank N`, `--reps N` and `--json` style options
/// from argv.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Dataset scale factor in `(0, 1]`.
    pub scale: f64,
    /// Factorization rank (columns of MTTKRP factor matrices).
    pub rank: usize,
    /// Timing repetitions (minimum is reported).
    pub reps: usize,
    /// Also write the bin's machine-readable results to a `BENCH_*.json`
    /// file next to the working directory (bins that support it say which).
    pub json: bool,
    /// Force the static verifier to [`VerifyMode::Deny`] for every compile
    /// the bin issues, regardless of build profile (bins that support it
    /// say so). Verification always runs and is always reported; this flag
    /// only hardens the enforcement.
    ///
    /// [`VerifyMode::Deny`]: taco_core::VerifyMode::Deny
    pub verify: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: 0.02, rank: 16, reps: 3, json: false, verify: false }
    }
}

impl BenchArgs {
    /// Parses command-line arguments, falling back to defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_env() -> BenchArgs {
        let mut out = BenchArgs::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut grab = || {
                it.next().unwrap_or_else(|| panic!("missing value after {a}")).parse::<f64>()
                    .unwrap_or_else(|e| panic!("bad value after {a}: {e}"))
            };
            match a.as_str() {
                "--scale" => out.scale = grab(),
                "--rank" => out.rank = grab() as usize,
                "--reps" => out.reps = (grab() as usize).max(1),
                "--json" => out.json = true,
                "--verify" => out.verify = true,
                other => {
                    panic!(
                        "unknown option `{other}` \
                         (expected --scale/--rank/--reps/--json/--verify)"
                    )
                }
            }
        }
        out
    }
}
