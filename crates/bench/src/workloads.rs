//! Workload builders for the figure harness: synthetic operands generated
//! to the paper's parameters.

use taco_kernels::mttkrp::DenseMat;
use taco_tensor::datasets::{MATRICES, TENSORS};
use taco_tensor::gen::{random_csr, random_dense};
use taco_tensor::{Csf3, Csr};

/// One SpGEMM workload of Figure 11: a Table I matrix stand-in multiplied
/// by a uniform-random matrix of a target density.
#[derive(Debug, Clone)]
pub struct SpgemmWorkload {
    /// Table I matrix id (0–10).
    pub id: usize,
    /// Table I matrix name.
    pub name: &'static str,
    /// The left operand (dataset stand-in).
    pub b: Csr,
    /// The right operand (synthetic, the figure's 4E-4 / 1E-4 densities).
    pub c: Csr,
    /// Density of the synthetic operand.
    pub density: f64,
}

/// Builds the Figure 11 workloads: every Table I matrix at the figure's two
/// synthetic-operand densities.
pub fn fig11_workloads(scale: f64) -> Vec<SpgemmWorkload> {
    let mut out = Vec::new();
    for m in &MATRICES {
        let b = m.generate(scale);
        let n = b.nrows();
        for density in [4e-4, 1e-4] {
            let c = random_csr(n, n, density, 0x000F_1611 + m.id as u64);
            out.push(SpgemmWorkload { id: m.id, name: m.name, b: b.clone(), c, density });
        }
    }
    out
}

/// One MTTKRP workload of Figure 12 (left): a Table I tensor stand-in and
/// dense factor matrices.
#[derive(Debug, Clone)]
pub struct MttkrpWorkload {
    /// Tensor name.
    pub name: &'static str,
    /// The sparse CSF tensor.
    pub b: Csf3,
    /// Dense factor matrix `C` (`dims[2] x rank`).
    pub c: DenseMat,
    /// Dense factor matrix `D` (`dims[1] x rank`).
    pub d: DenseMat,
}

/// Builds the Figure 12 (left) workloads: Facebook, NELL-2 and NELL-1
/// stand-ins with dense factor matrices of the given rank.
pub fn fig12_workloads(scale: f64, rank: usize, max_dim: usize) -> Vec<MttkrpWorkload> {
    TENSORS
        .iter()
        .map(|t| {
            let b = t.generate(scale, max_dim);
            let [_, dk, dl] = b.dims();
            let c = dense_mat(dl, rank, 0x000F_1612);
            let d = dense_mat(dk, rank, 0x000F_1613);
            MttkrpWorkload { name: t.name, b, c, d }
        })
        .collect()
}

/// A dense random factor matrix.
pub fn dense_mat(rows: usize, cols: usize, seed: u64) -> DenseMat {
    let t = random_dense(rows, cols, seed);
    DenseMat { nrows: rows, ncols: cols, data: t.into_data() }
}

/// Sparse factor matrices for the Figure 12 (right) density sweep.
pub fn sparse_factors(dk: usize, dl: usize, rank: usize, density: f64) -> (Csr, Csr) {
    let c = random_csr(dl, rank, density, 0x000F_1614);
    let d = random_csr(dk, rank, density, 0x000F_1615);
    (c, d)
}

/// The paper's Figure 12 (right) operand densities.
pub const FIG12_DENSITIES: [f64; 6] = [1.0, 0.25, 0.02, 0.01, 2.5e-3, 1e-4];

/// The operand densities of the Figure 13 (right) seven-operand addition.
pub const FIG13_DENSITIES: [f64; 7] =
    [2.56e-2, 1.68e-3, 2.89e-4, 2.50e-3, 2.92e-3, 2.96e-2, 1.06e-2];

/// Builds the Figure 13 addition operands: `count` random matrices with
/// target sparsities drawn from the paper's range `[1e-4, 0.01]` (uniformly
/// in log space for variety), at dimension `n`.
pub fn fig13_operands(n: usize, count: usize) -> Vec<Csr> {
    (0..count)
        .map(|x| {
            let density = if x < FIG13_DENSITIES.len() {
                FIG13_DENSITIES[x]
            } else {
                1e-3
            };
            random_csr(n, n, density, 0x000F_1630 + x as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_workloads_cover_all_matrices_and_densities() {
        let w = fig11_workloads(0.001);
        assert_eq!(w.len(), 22);
        assert!(w.iter().any(|x| x.density == 4e-4));
        assert!(w.iter().any(|x| x.density == 1e-4));
        for x in &w {
            assert_eq!(x.b.nrows(), x.c.nrows());
        }
    }

    #[test]
    fn fig12_workloads_have_consistent_dims() {
        let w = fig12_workloads(1e-6, 8, 256);
        assert_eq!(w.len(), 3);
        for x in &w {
            assert_eq!(x.c.nrows, x.b.dims()[2]);
            assert_eq!(x.d.nrows, x.b.dims()[1]);
            assert_eq!(x.c.ncols, 8);
        }
    }

    #[test]
    fn fig13_operands_match_paper_densities() {
        let ops = fig13_operands(500, 7);
        assert_eq!(ops.len(), 7);
        let d0 = ops[0].nnz() as f64 / (500.0 * 500.0);
        assert!((d0 / FIG13_DENSITIES[0] - 1.0).abs() < 0.1);
    }
}
