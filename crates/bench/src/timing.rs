//! Small timing utilities for the figure harness.

use std::time::{Duration, Instant};

/// Times `f` once.
pub fn time_once<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Runs `f` `reps` times (plus one warmup) and returns the minimum duration
/// together with the last result.
///
/// The paper reports "average cold cache performance"; a warm minimum is
/// the closest robust equivalent for in-process measurement and preserves
/// relative ordering between kernels.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(reps > 0, "at least one repetition required");
    let mut best = Duration::MAX;
    let mut out = None;
    // Warmup.
    let _ = f();
    for _ in 0..reps {
        let (d, r) = time_once(&mut f);
        best = best.min(d);
        out = Some(r);
    }
    (best, out.expect("reps > 0"))
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Prints an aligned table: a header row then data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_returns_result() {
        let (d, r) = time_best(3, || 21 * 2);
        assert_eq!(r, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn formats_units() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(7)).ends_with(" µs"));
    }
}
