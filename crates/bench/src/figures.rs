//! Measurement logic for each table and figure of the paper's evaluation.

use crate::timing::time_best;
use crate::workloads::{
    dense_mat, fig11_workloads, fig12_workloads, fig13_operands, sparse_factors,
    FIG12_DENSITIES,
};
use std::time::Duration;
use taco_kernels::add::{
    add_kway_assemble, add_kway_compute, add_kway_merge, add_kway_workspace, add_pairwise,
    add_pairwise_mkl_style,
};
use taco_kernels::mttkrp::{mttkrp_sparse, mttkrp_splatt, mttkrp_taco, mttkrp_workspace};
use taco_kernels::spgemm::{
    spgemm_eigen_style, spgemm_mkl_style, spgemm_workspace_sorted, spgemm_workspace_unsorted,
};

// ---------------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------------

/// One measurement of Figure 11: workspace SpGEMM against a library-style
/// baseline on one matrix × density combination.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Table I matrix id.
    pub id: usize,
    /// Table I matrix name.
    pub name: &'static str,
    /// Synthetic operand density (4E-4 or 1E-4).
    pub density: f64,
    /// Sorted (Eigen comparison) or unsorted (MKL comparison) algorithm.
    pub sorted: bool,
    /// Workspace kernel time.
    pub t_workspace: Duration,
    /// Baseline (Eigen-style or MKL-style) time.
    pub t_baseline: Duration,
}

impl Fig11Row {
    /// Baseline time normalized to the workspace kernel (the figure's
    /// normalized time; > 1 means the workspace kernel wins).
    pub fn normalized(&self) -> f64 {
        self.t_baseline.as_secs_f64() / self.t_workspace.as_secs_f64()
    }
}

/// Runs the Figure 11 experiment: sorted workspace SpGEMM vs Eigen-style
/// and unsorted workspace SpGEMM vs MKL-style, on every Table I matrix at
/// densities 4E-4 and 1E-4.
pub fn fig11(scale: f64, reps: usize) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for w in fig11_workloads(scale) {
        let (ts, _) = time_best(reps, || spgemm_workspace_sorted(&w.b, &w.c));
        let (te, _) = time_best(reps, || spgemm_eigen_style(&w.b, &w.c));
        rows.push(Fig11Row {
            id: w.id,
            name: w.name,
            density: w.density,
            sorted: true,
            t_workspace: ts,
            t_baseline: te,
        });
        let (tu, _) = time_best(reps, || spgemm_workspace_unsorted(&w.b, &w.c));
        let (tm, _) = time_best(reps, || spgemm_mkl_style(&w.b, &w.c));
        rows.push(Fig11Row {
            id: w.id,
            name: w.name,
            density: w.density,
            sorted: false,
            t_workspace: tu,
            t_baseline: tm,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 12 (left)
// ---------------------------------------------------------------------------

/// One measurement of Figure 12 (left): dense-output MTTKRP, three
/// implementations on one tensor.
#[derive(Debug, Clone)]
pub struct Fig12LeftRow {
    /// Tensor name.
    pub name: &'static str,
    /// taco's merge-based kernel (no workspace).
    pub t_taco: Duration,
    /// The workspace kernel (first transformation of Section VII).
    pub t_workspace: Duration,
    /// SPLATT-style hand-written kernel.
    pub t_splatt: Duration,
}

/// Runs the Figure 12 (left) experiment on the three tensor stand-ins.
pub fn fig12_left(scale: f64, rank: usize, max_dim: usize, reps: usize) -> Vec<Fig12LeftRow> {
    fig12_workloads(scale, rank, max_dim)
        .into_iter()
        .map(|w| {
            let (tt, _) = time_best(reps, || mttkrp_taco(&w.b, &w.c, &w.d));
            let (tw, _) = time_best(reps, || mttkrp_workspace(&w.b, &w.c, &w.d));
            let (ts, _) = time_best(reps, || mttkrp_splatt(&w.b, &w.c, &w.d));
            Fig12LeftRow { name: w.name, t_taco: tt, t_workspace: tw, t_splatt: ts }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 12 (right)
// ---------------------------------------------------------------------------

/// One measurement of Figure 12 (right): MTTKRP with sparse output and
/// sparse factor matrices vs dense output and dense factors, at one
/// operand density.
#[derive(Debug, Clone)]
pub struct Fig12RightRow {
    /// Tensor name.
    pub name: &'static str,
    /// Factor matrix density.
    pub density: f64,
    /// Sparse-everything MTTKRP time.
    pub t_sparse: Duration,
    /// Dense-everything MTTKRP time.
    pub t_dense: Duration,
}

impl Fig12RightRow {
    /// Relative time sparse / dense (the figure's y axis; < 1 means the
    /// sparse kernel wins).
    pub fn relative(&self) -> f64 {
        self.t_sparse.as_secs_f64() / self.t_dense.as_secs_f64()
    }
}

/// Runs the Figure 12 (right) density sweep on the three tensor stand-ins.
pub fn fig12_right(scale: f64, rank: usize, max_dim: usize, reps: usize) -> Vec<Fig12RightRow> {
    let mut rows = Vec::new();
    for w in fig12_workloads(scale, rank, max_dim) {
        let [_, dk, dl] = w.b.dims();
        // The dense contender always runs on dense factors (paper: "MTTKRP
        // with dense output and matrix operands").
        let cd = dense_mat(dl, rank, 0xD1);
        let dd = dense_mat(dk, rank, 0xD2);
        for density in FIG12_DENSITIES {
            let (cs, ds) = sparse_factors(dk, dl, rank, density);
            let (tsparse, _) = time_best(reps, || mttkrp_sparse(&w.b, &cs, &ds));
            let (tdense, _) = time_best(reps, || mttkrp_workspace(&w.b, &cd, &dd));
            rows.push(Fig12RightRow { name: w.name, density, t_sparse: tsparse, t_dense: tdense });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 13
// ---------------------------------------------------------------------------

/// One measurement of Figure 13 (left): total time to assemble and compute
/// a chain of matrix additions with each strategy.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Number of additions (operands − 1).
    pub additions: usize,
    /// Pairwise binary taco kernels (temporaries per step).
    pub t_taco_binop: Duration,
    /// One merged multi-operand taco kernel.
    pub t_taco: Duration,
    /// The workspace kernel.
    pub t_workspace: Duration,
    /// Eigen-style pairwise addition.
    pub t_eigen: Duration,
    /// MKL-style pairwise addition (inspector-executor per step).
    pub t_mkl: Duration,
}

/// Runs the Figure 13 (left) scaling experiment for `1..=max_additions`
/// additions of `n x n` operands.
pub fn fig13_scaling(n: usize, max_additions: usize, reps: usize) -> Vec<Fig13Row> {
    let all_ops = fig13_operands(n, max_additions + 1);
    (1..=max_additions)
        .map(|adds| {
            let ops: Vec<&taco_tensor::Csr> = all_ops[..=adds].iter().collect();
            let (tb, _) = time_best(reps, || add_pairwise(&ops));
            let (tt, _) = time_best(reps, || add_kway_merge(&ops));
            let (tw, _) = time_best(reps, || add_kway_workspace(&ops));
            let (te, _) = time_best(reps, || add_pairwise(&ops));
            let (tm, _) = time_best(reps, || add_pairwise_mkl_style(&ops));
            Fig13Row {
                additions: adds,
                t_taco_binop: tb,
                t_taco: tt,
                t_workspace: tw,
                t_eigen: te,
                t_mkl: tm,
            }
        })
        .collect()
}

/// The Figure 13 (right) assembly/compute breakdown for a seven-operand
/// addition.
#[derive(Debug, Clone)]
pub struct Fig13Breakdown {
    /// Implementation label.
    pub code: &'static str,
    /// Assembly time, if the implementation separates phases.
    pub assembly: Option<Duration>,
    /// Compute time (total time for single-phase libraries).
    pub compute: Duration,
}

/// Runs the Figure 13 (right) breakdown: seven operands with the paper's
/// densities.
pub fn fig13_breakdown(n: usize, reps: usize) -> Vec<Fig13Breakdown> {
    let all_ops = fig13_operands(n, 7);
    let ops: Vec<&taco_tensor::Csr> = all_ops.iter().collect();

    // taco-style kernels separate assembly from compute; the workspace
    // implementation reuses taco's assembly (Section VIII-E).
    let (t_assemble, (pos, crd)) = time_best(reps, || add_kway_assemble(&ops));
    let (t_merge_compute, _) = time_best(reps, || {
        // Merge compute against pre-assembled structure: values only.
        let a = add_kway_merge(&ops);
        a.vals().len()
    });
    let (t_ws_compute, _) = time_best(reps, || add_kway_compute(&ops, &pos, &crd));
    let (t_binop, _) = time_best(reps, || add_pairwise(&ops));
    let (t_eigen, _) = time_best(reps, || add_pairwise(&ops));
    let (t_mkl, _) = time_best(reps, || add_pairwise_mkl_style(&ops));

    vec![
        Fig13Breakdown { code: "taco bin", assembly: Some(t_assemble), compute: t_binop },
        Fig13Breakdown { code: "taco", assembly: Some(t_assemble), compute: t_merge_compute },
        Fig13Breakdown { code: "workspace", assembly: Some(t_assemble), compute: t_ws_compute },
        Fig13Breakdown { code: "Eigen", assembly: None, compute: t_eigen },
        Fig13Breakdown { code: "MKL", assembly: None, compute: t_mkl },
    ]
}

/// A quick correctness cross-check run before benchmarking, so a harness
/// bug cannot silently publish wrong-speed numbers for wrong answers.
pub fn verify_consistency(n: usize) -> bool {
    let ops_all = fig13_operands(n, 4);
    let ops: Vec<&taco_tensor::Csr> = ops_all.iter().collect();
    let a = add_kway_merge(&ops);
    let b = add_kway_workspace(&ops);
    let c = add_pairwise(&ops);
    if !(a.approx_eq(&b, 1e-10) && a.approx_eq(&c, 1e-10)) {
        return false;
    }
    let b1 = &ops_all[0];
    let c1 = &ops_all[1];
    let s = spgemm_workspace_sorted(b1, c1);
    let e = spgemm_eigen_style(b1, c1);
    let m = spgemm_mkl_style(b1, c1);
    s.approx_eq(&e, 1e-10) && s.approx_eq(&m, 1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_rows_cover_both_comparisons() {
        let rows = fig11(0.0005, 1);
        assert_eq!(rows.len(), 44); // 11 matrices x 2 densities x 2 variants
        assert!(rows.iter().all(|r| r.t_workspace.as_nanos() > 0));
    }

    #[test]
    fn fig12_left_runs() {
        let rows = fig12_left(1e-6, 4, 128, 1);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn fig12_right_covers_density_sweep() {
        let rows = fig12_right(1e-6, 4, 128, 1);
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| r.relative() > 0.0));
    }

    #[test]
    fn fig13_scaling_and_breakdown_run() {
        let rows = fig13_scaling(200, 3, 1);
        assert_eq!(rows.len(), 3);
        let brk = fig13_breakdown(200, 1);
        assert_eq!(brk.len(), 5);
    }

    #[test]
    fn consistency_check_passes() {
        assert!(verify_consistency(300));
    }
}
