//! Sweeps the static verifier over every autotuner candidate of the four
//! case-study kernels (SpGEMM, sparse add, dense MTTKRP, sparse MTTKRP).
//!
//! Every candidate that lowers must be accepted (zero deny-severity
//! findings) under both the fused and the compute lowering; candidates
//! that fail to lower are skipped, exactly as the autotuner treats them.
//! Exits nonzero on any deny, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p taco-bench --bin verify
//! ```

use taco_core::{enumerate_candidates, IndexStmt};
use taco_ir::expr::{sum, IndexExpr, IndexVar, TensorVar};
use taco_ir::notation::IndexAssignment;
use taco_lower::{lower, LowerOptions};
use taco_tensor::{Format, ModeFormat};

fn iv(n: &str) -> IndexVar {
    IndexVar::new(n)
}

fn spgemm(n: usize) -> IndexStmt {
    let a = TensorVar::new("A", vec![n, n], Format::csr());
    let b = TensorVar::new("B", vec![n, n], Format::csr());
    let c = TensorVar::new("C", vec![n, n], Format::csr());
    let (i, j, k) = (iv("i"), iv("j"), iv("k"));
    IndexStmt::new(IndexAssignment::assign(
        a.access([i.clone(), j.clone()]),
        sum(k.clone(), b.access([i, k.clone()]) * c.access([k, j])),
    ))
    .unwrap()
}

fn sparse_add(m: usize, n: usize) -> IndexStmt {
    let a = TensorVar::new("A", vec![m, n], Format::csr());
    let b = TensorVar::new("B", vec![m, n], Format::csr());
    let c = TensorVar::new("C", vec![m, n], Format::csr());
    let (i, j) = (iv("i"), iv("j"));
    let bij: IndexExpr = b.access([i.clone(), j.clone()]).into();
    let cij: IndexExpr = c.access([i.clone(), j.clone()]).into();
    IndexStmt::new(IndexAssignment::assign(a.access([i, j]), bij + cij)).unwrap()
}

fn mttkrp(di: usize, dk: usize, dl: usize, r: usize, sparse: bool) -> IndexStmt {
    let a = if sparse {
        TensorVar::new("A", vec![di, r], Format::csr())
    } else {
        TensorVar::new("A", vec![di, r], Format::dense(2))
    };
    let b = TensorVar::new(
        "B",
        vec![di, dk, dl],
        Format::new(vec![ModeFormat::Dense, ModeFormat::Compressed, ModeFormat::Compressed]),
    );
    let (c, d) = if sparse {
        (TensorVar::new("C", vec![dl, r], Format::csr()), TensorVar::new("D", vec![dk, r], Format::csr()))
    } else {
        (TensorVar::new("C", vec![dl, r], Format::dense(2)), TensorVar::new("D", vec![dk, r], Format::dense(2)))
    };
    let (i, j, k, l) = (iv("i"), iv("j"), iv("k"), iv("l"));
    IndexStmt::new(IndexAssignment::assign(
        a.access([i.clone(), j.clone()]),
        sum(
            k.clone(),
            sum(
                l.clone(),
                b.access([i, k.clone(), l.clone()]) * c.access([l, j.clone()]) * d.access([k, j]),
            ),
        ),
    ))
    .unwrap()
}

fn main() {
    let cases: Vec<(&str, IndexStmt)> = vec![
        ("spgemm", spgemm(16)),
        ("sparse_add", sparse_add(16, 20)),
        ("mttkrp_dense", mttkrp(12, 10, 11, 8, false)),
        ("mttkrp_sparse", mttkrp(14, 9, 10, 12, true)),
    ];
    let mut total = 0usize;
    let mut lowered = 0usize;
    let mut warns = 0usize;
    let mut denies = 0usize;
    for (case, stmt) in &cases {
        for cand in enumerate_candidates(stmt) {
            for opts in [
                LowerOptions::fused(format!("{case}_f")),
                LowerOptions::compute(format!("{case}_c")),
            ] {
                total += 1;
                let Ok(lk) = lower(cand.stmt.concrete(), &opts) else {
                    continue;
                };
                lowered += 1;
                let report = taco_verify::verify_lowered(&lk);
                warns += report.warns();
                if !report.accepted() {
                    denies += report.denies();
                    println!("DENY {case} [{}] ({:?}):", cand.name, opts.kind);
                    for d in &report.diagnostics {
                        println!("  {d}");
                    }
                }
            }
        }
    }
    println!(
        "verified {lowered}/{total} lowered candidates across {} kernels: {denies} deny, {warns} warn",
        cases.len()
    );
    if denies > 0 {
        std::process::exit(1);
    }
}
