//! Measures the kernel engine's cold/warm split: what the first request
//! pays (autotune search + compile + run) versus what every later request
//! pays (decision reuse + cache hit + run).
//!
//! ```text
//! cargo run --release -p taco-bench --bin runtime [-- --scale 0.05 --reps 3 --json --verify]
//! ```
//!
//! With `--json`, writes the results to `BENCH_runtime.json` in the working
//! directory (CI asserts this file is produced and parses). Every compile
//! runs the static verifier; `--verify` hardens enforcement to deny so any
//! proven violation fails the bin, and the JSON always carries
//! `verify_nanos` plus the verdict counts.

use std::sync::Arc;
use std::time::{Duration, Instant};
use taco_bench::timing::{fmt_duration, time_once};
use taco_bench::BenchArgs;
use taco_core::{
    enumerate_candidates, CoreError, DegradeRung, IndexStmt, ResourceBudget, Supervisor,
};
use taco_ir::expr::{sum, IndexVar, TensorVar};
use taco_ir::notation::IndexAssignment;
use taco_llir::WorkspaceKind;
use taco_lower::LowerOptions;
use taco_runtime::{Backend, Engine, EngineEvent, VerifyMode};
use taco_serve::{Request, Server, TenantPolicy, Ticket};
use taco_tensor::gen::{random_csr, random_csr_nnz, Pattern};
use taco_tensor::{Format, Tensor};

fn spgemm_unscheduled(n: usize) -> IndexStmt {
    let a = TensorVar::new("A", vec![n, n], Format::csr());
    let b = TensorVar::new("B", vec![n, n], Format::csr());
    let c = TensorVar::new("C", vec![n, n], Format::csr());
    let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
    IndexStmt::new(IndexAssignment::assign(
        a.access([i.clone(), j.clone()]),
        sum(k.clone(), b.access([i, k.clone()]) * c.access([k, j])),
    ))
    .expect("valid statement")
}

/// The Figure 2 SpGEMM schedule: reorder to linear combinations of rows,
/// precompute into a dense row workspace.
fn spgemm_fig2(n: usize) -> IndexStmt {
    let a = TensorVar::new("A", vec![n, n], Format::csr());
    let b = TensorVar::new("B", vec![n, n], Format::csr());
    let c = TensorVar::new("C", vec![n, n], Format::csr());
    let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
    let mul = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
    let mut s = IndexStmt::new(IndexAssignment::assign(
        a.access([i.clone(), j.clone()]),
        sum(k.clone(), mul.clone()),
    ))
    .expect("valid statement");
    s.reorder(&k, &j).expect("reorders");
    let w = TensorVar::new("w", vec![n], Format::dvec());
    s.precompute(&mul, &[(j.clone(), j.clone(), j.clone())], &w).expect("precomputes");
    s
}

fn main() {
    let args = BenchArgs::from_env();
    // --scale 1.0 is a 1024×1024 SpGEMM; the default smoke scale keeps the
    // whole bin under a second.
    let n = ((1024.0 * args.scale) as usize).clamp(32, 4096);
    let stmt = spgemm_unscheduled(n);
    let opts = LowerOptions::fused("spgemm");
    let b = random_csr(n, n, 0.05, 41).to_tensor();
    let c = random_csr(n, n, 0.05, 42).to_tensor();
    let inputs: Vec<(&str, &Tensor)> = vec![("B", &b), ("C", &c)];

    let verify_mode =
        if args.verify { VerifyMode::Deny } else { taco_core::default_verify_mode() };
    println!(
        "KERNEL ENGINE: {n}x{n} SpGEMM, density 0.05, no manual schedule, verify {verify_mode}\n"
    );
    let engine = Engine::builder().verify(verify_mode).build();

    // Cold: autotune search (every candidate compiled and timed) + run.
    let (cold, outcome) =
        time_once(|| engine.run_tuned(&stmt, opts.clone(), &inputs).expect("tunes"));
    assert!(outcome.tuned, "first request must run the search");
    let schedule = outcome.schedule.clone();
    // Candidates the search never timed because the cost analyzer proved
    // their peak footprint dominated (read now, before later compiles can
    // age the Autotuned event out of the bounded ring).
    let pruned_candidates: usize = engine
        .last_events()
        .iter()
        .map(|e| match e {
            EngineEvent::Autotuned { pruned, .. } => *pruned,
            _ => 0,
        })
        .sum();

    // Warm: decision reuse + kernel-cache hit + run (best of reps).
    let mut warm = Duration::MAX;
    for _ in 0..args.reps {
        let (d, o) = time_once(|| engine.run_tuned(&stmt, opts.clone(), &inputs).expect("runs"));
        assert!(!o.tuned, "later requests must reuse the decision");
        warm = warm.min(d);
    }

    // Compile-only split, measured on the tuned schedule through a fresh
    // engine so the cold side is a genuine miss.
    let tuned = enumerate_candidates(&stmt)
        .into_iter()
        .find(|cand| cand.name == schedule)
        .expect("tuned schedule is in the candidate space");
    let fresh = Engine::builder().verify(verify_mode).build();
    let (cold_compile, _) = time_once(|| fresh.compile(&tuned.stmt, opts.clone()).expect("compiles"));
    let (warm_compile, kernel) =
        time_once(|| fresh.compile(&tuned.stmt, opts.clone()).expect("compiles"));
    let (run_only, _) = time_once(|| kernel.run(&inputs).expect("runs"));

    // Parallel scaling: the Figure 2 schedule with the outer row loop
    // parallelized, timed at increasing pinned thread counts. threads = 1
    // exercises the executor's serial fallback and is the baseline the
    // speedup column divides by.
    let avail = std::thread::available_parallelism().map_or(1, |t| t.get());
    let par_stmt = {
        let mut s = spgemm_fig2(n);
        s.parallelize(&IndexVar::new("i")).expect("workspace privatizes the reduction");
        s
    };
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, avail];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut scaling: Vec<(usize, Duration)> = Vec::new();
    for &t in &thread_counts {
        let kernel =
            engine.compile(&par_stmt, opts.clone().with_threads(t)).expect("parallel compiles");
        let mut best = Duration::MAX;
        for _ in 0..args.reps.max(1) {
            let (d, _) = time_once(|| kernel.run(&inputs).expect("runs"));
            best = best.min(d);
        }
        scaling.push((t, best));
    }

    // Verifier cost on the tuned kernel, measured standalone (the engine
    // path folds it into compile time), plus the verdict totals the two
    // engines recorded across every fresh compile.
    let (verify_d, tuned_report) = time_once(|| taco_verify::verify_lowered(kernel.lowered()));
    let (mut verified_kernels, mut verify_denies, mut verify_warns) = (0usize, 0usize, 0usize);
    for event in engine.last_events().iter().chain(fresh.last_events().iter()) {
        if let EngineEvent::Verified { denies, warns, .. } = event {
            verified_kernels += 1;
            verify_denies += denies;
            verify_warns += warns;
        }
    }

    // Symbolic cost analysis (DESIGN.md §17): analyzer latency re-measured
    // standalone on the tuned kernel (the compile path folds it in and
    // caches the report), and bound tightness — the proven peak-byte bound
    // evaluated against the real binding, over the budget meter's observed
    // allocation peak from a supervised run. Tightness ≥ 1 is the soundness
    // invariant; how far above 1 is the price of proof.
    let (analysis_d, _) = time_once(|| taco_core::analyze_cost(kernel.lowered()));
    let mut cost_binding = kernel.bind(&inputs, None).expect("binds");
    let static_peak = kernel.static_peak_bytes(&cost_binding);
    let observed_peak = kernel
        .run_bound_supervised(&mut cost_binding, &Supervisor::new())
        .expect("supervised run")
        .progress
        .peak_bytes();
    let bound_tightness = static_peak
        .map(|bound| bound as f64 / observed_peak.max(1) as f64)
        .unwrap_or(f64::NAN);
    assert!(
        static_peak.is_none_or(|bound| bound >= observed_peak),
        "analysis sweep: static bound {static_peak:?} under observed peak {observed_peak}"
    );

    // Workspace storage backends: the Figure 2 schedule timed once per
    // backend on the same operands. Dense is the paper's array workspace;
    // hash and coord-list are the sparse graceful-degradation rungs whose
    // footprint scales with entries touched, not the result dimension.
    let ws_stmt = spgemm_fig2(n);
    let kinds = [WorkspaceKind::Dense, WorkspaceKind::Hash, WorkspaceKind::CoordList];
    let mut kind_nanos: Vec<(WorkspaceKind, Duration)> = Vec::new();
    for kind in kinds {
        let kernel = engine
            .compile(&ws_stmt, opts.clone().with_workspace_kind(kind))
            .expect("workspace backend compiles");
        let mut best = Duration::MAX;
        for _ in 0..args.reps.max(1) {
            let (d, _) = time_once(|| kernel.run(&inputs).expect("runs"));
            best = best.min(d);
        }
        kind_nanos.push((kind, best));
    }

    // Native backend: the Figure 2 schedule compiled to machine code via
    // the system C compiler and raced against the interpreter on the same
    // operands. The first native run pays emit + cc + dlopen + the
    // differential trust check; later runs dispatch straight to the `.so`.
    // Without a toolchain the engine degrades to the interpreter and the
    // section reports `available: false` — the JSON parses either way.
    let native_stmt = spgemm_fig2(n);
    let interp_engine = Engine::builder().verify(verify_mode).backend(Backend::Interp).build();
    let native_engine = Engine::builder().verify(verify_mode).backend(Backend::Native).build();
    let mut interp_best = Duration::MAX;
    for _ in 0..args.reps.max(1) {
        let (d, _) =
            time_once(|| interp_engine.run(&native_stmt, opts.clone(), &inputs).expect("runs"));
        interp_best = interp_best.min(d);
    }
    // First run compiles and differentially validates; it is not timed as a
    // native run because it commits the interpreter's result.
    native_engine.run(&native_stmt, opts.clone(), &inputs).expect("trust-establishing run");
    let mut native_best = Duration::MAX;
    for _ in 0..args.reps.max(1) {
        let (d, _) =
            time_once(|| native_engine.run(&native_stmt, opts.clone(), &inputs).expect("runs"));
        native_best = native_best.min(d);
    }
    let native_stats = native_engine.native_stats();
    let native_available = native_stats.trusted > 0;
    let native_compile_nanos: u64 = native_engine
        .last_events()
        .iter()
        .map(|e| match e {
            EngineEvent::NativeCompiled { compile_nanos, .. } => *compile_nanos,
            _ => 0,
        })
        .sum();

    // Format matrix (DESIGN.md §16): the same SpMV with the sparse operand
    // packed into each level-capability format, timed on the interpreter,
    // plus the blocked BCSR kernel raced native vs interp. Column-major
    // formats reorder the loops to match their level order; the timings
    // isolate what the storage layout alone costs on identical nonzeros.
    let spmv_of = |fmt: &Format| -> IndexStmt {
        let a = TensorVar::new("a", vec![n], Format::dvec());
        let bv = TensorVar::new("B", vec![n, n], fmt.clone());
        let xv = TensorVar::new("x", vec![n], Format::dvec());
        let (i, j) = (IndexVar::new("i"), IndexVar::new("j"));
        let mut s = IndexStmt::new(IndexAssignment::assign(
            a.access([i.clone()]),
            sum(j.clone(), bv.access([i.clone(), j.clone()]) * xv.access([j.clone()])),
        ))
        .expect("valid statement");
        if !fmt.is_identity_order() {
            s.reorder(&i, &j).expect("column-major reorder");
        }
        s
    };
    let x = Tensor::from_entries(
        vec![n],
        Format::dvec(),
        (0..n).map(|c| (vec![c], (c % 7) as f64 + 1.0)).collect(),
    )
    .expect("dense vector");
    let spmv_opts = LowerOptions::fused("spmv_formats");
    let format_list: Vec<(&str, Format)> = vec![
        ("csr", Format::csr()),
        ("dcsr", Format::dcsr()),
        ("coo", Format::coo(2)),
        ("csc", Format::csc()),
        ("dcsc", Format::dcsc()),
    ];
    let mut format_nanos: Vec<(&str, Duration)> = Vec::new();
    for (label, fmt) in &format_list {
        let bf = b.convert(fmt.clone()).expect("format conversion");
        let fmt_inputs: Vec<(&str, &Tensor)> = vec![("B", &bf), ("x", &x)];
        let kernel =
            interp_engine.compile(&spmv_of(fmt), spmv_opts.clone()).expect("format compiles");
        let mut best = Duration::MAX;
        for _ in 0..args.reps.max(1) {
            let (d, _) = time_once(|| kernel.run(&fmt_inputs).expect("runs"));
            best = best.min(d);
        }
        format_nanos.push((label, best));
    }
    // Blocked BCSR SpMV y(i,k) = Σ_{j,l} B(i,j,k,l) x(j,l) over 2×2 tiles.
    let (br, bc) = (2usize, 2usize);
    let bn = n - n % br.max(bc);
    let b_even = random_csr(bn, bn, 0.05, 41).to_tensor();
    let b4 = b_even.to_blocked(br, bc).expect("blocks");
    let x2 = Tensor::from_entries(
        vec![bn / bc, bc],
        Format::dense(2),
        (0..bn).map(|c| (vec![c / bc, c % bc], (c % 7) as f64 + 1.0)).collect(),
    )
    .expect("blocked vector");
    let bcsr_stmt = {
        let y = TensorVar::new("y", vec![bn / br, br], Format::dense(2));
        let bt = TensorVar::new("B", vec![bn / br, bn / bc, br, bc], Format::bcsr());
        let xt = TensorVar::new("x", vec![bn / bc, bc], Format::dense(2));
        let (i, j, k, l) = (
            IndexVar::new("i"),
            IndexVar::new("j"),
            IndexVar::new("k"),
            IndexVar::new("l"),
        );
        IndexStmt::new(IndexAssignment::assign(
            y.access([i.clone(), k.clone()]),
            sum(
                j.clone(),
                sum(
                    l.clone(),
                    bt.access([i.clone(), j.clone(), k.clone(), l.clone()])
                        * xt.access([j, l]),
                ),
            ),
        ))
        .expect("valid statement")
    };
    let bcsr_inputs: Vec<(&str, &Tensor)> = vec![("B", &b4), ("x", &x2)];
    let bcsr_opts = LowerOptions::compute("bspmv");
    let mut bcsr_interp = Duration::MAX;
    for _ in 0..args.reps.max(1) {
        let (d, _) =
            time_once(|| interp_engine.run(&bcsr_stmt, bcsr_opts.clone(), &bcsr_inputs).expect("runs"));
        bcsr_interp = bcsr_interp.min(d);
    }
    // First native run pays the differential trust check; time the later ones.
    native_engine.run(&bcsr_stmt, bcsr_opts.clone(), &bcsr_inputs).expect("trust run");
    let mut bcsr_native = Duration::MAX;
    for _ in 0..args.reps.max(1) {
        let (d, _) =
            time_once(|| native_engine.run(&bcsr_stmt, bcsr_opts.clone(), &bcsr_inputs).expect("runs"));
        bcsr_native = bcsr_native.min(d);
    }

    // Degrade-and-retry ladder under shrinking byte budgets, on operands
    // sparse enough (fixed 256 nnz per 1024-row matrix) that the sparse
    // workspace rungs genuinely fit where the dense one does not. Budgets:
    // unlimited commits on the first rung; one just below the dense
    // workspace's runtime footprint lands on a sparse-workspace rung; one
    // below every rung's working set exhausts the ladder.
    let ln = 1024;
    let lb = random_csr_nnz(ln, ln, 256, Pattern::Uniform, 41).to_tensor();
    let lc = random_csr_nnz(ln, ln, 256, Pattern::Uniform, 42).to_tensor();
    let ladder_inputs: Vec<(&str, &Tensor)> = vec![("B", &lb), ("C", &lc)];
    let ladder_stmt = spgemm_fig2(ln);
    let budgets: Vec<(&str, ResourceBudget)> = vec![
        ("unlimited", ResourceBudget::unlimited()),
        ("15000-byte total", ResourceBudget::unlimited().with_max_total_bytes(15_000)),
        ("2000-byte total", ResourceBudget::unlimited().with_max_total_bytes(2_000)),
    ];
    let mut ladder_rungs: Vec<(String, String, usize)> = Vec::new();
    let mut ladder_exhausted = 0usize;
    let mut ladder_retries = 0usize;
    for (label, budget) in &budgets {
        let sup = Supervisor::new().with_budget(budget.clone());
        match ladder_stmt.run_supervised(
            LowerOptions::fused("spgemm_ladder"),
            &sup,
            &ladder_inputs,
            None,
        ) {
            Ok(out) => {
                let retries = out
                    .fallbacks
                    .iter()
                    .filter(|f| matches!(f, taco_core::FallbackEvent::DegradedRetry { .. }))
                    .count();
                ladder_retries += retries;
                ladder_rungs.push((label.to_string(), out.rung.to_string(), retries));
            }
            Err(CoreError::Aborted(_)) => {
                ladder_exhausted += 1;
                ladder_retries += DegradeRung::LADDER.len();
                ladder_rungs.push((label.to_string(), "exhausted".to_string(), DegradeRung::LADDER.len()));
            }
            Err(e) => panic!("ladder run failed outside the budget protocol: {e}"),
        }
    }

    // Serving front end: the same Figure 2 schedule pushed through the
    // multi-tenant daemon under deliberate overload — 48 clients on 4
    // workers with a 16-slot queue, one tenant rate-capped so shedding is
    // deterministic. Reported as client-observed (submit-to-outcome)
    // latency percentiles plus shed and warm-kernel coalesce rates.
    const SERVE_CLIENTS: usize = 48;
    const SERVE_WORKERS: usize = 4;
    let serve_stmt = spgemm_fig2(n);
    let sb = Arc::new(b.clone());
    let sc = Arc::new(c.clone());
    let server = Server::builder()
        .workers(SERVE_WORKERS)
        .queue_capacity(16)
        .tenant("metered", TenantPolicy::default().with_rate(0.0, 4))
        .build();
    let mut serve_latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SERVE_CLIENTS)
            .map(|client| {
                let (server, serve_stmt, sb, sc) = (&server, &serve_stmt, &sb, &sc);
                scope.spawn(move || {
                    let tenant = if client % 4 == 3 { "metered" } else { "bulk" };
                    let request = Request::new(
                        tenant,
                        serve_stmt.clone(),
                        LowerOptions::fused("spgemm_served"),
                        vec![("B".into(), Arc::clone(sb)), ("C".into(), Arc::clone(sc))],
                        Duration::from_secs(60),
                    );
                    let t0 = Instant::now();
                    let completed = server
                        .submit(request)
                        .map(Ticket::wait)
                        .is_ok_and(|outcome| outcome.is_completed());
                    completed.then(|| t0.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("bench client thread must not panic"))
            .collect()
    });
    server.drain();
    serve_latencies.sort_unstable();
    let serve_stats = server.stats();
    let percentile = |p: f64| -> Duration {
        if serve_latencies.is_empty() {
            Duration::ZERO
        } else {
            serve_latencies[((serve_latencies.len() - 1) as f64 * p).round() as usize]
        }
    };
    let (serve_p50, serve_p99) = (percentile(0.50), percentile(0.99));
    assert!(serve_stats.totals.completed > 0, "the serving bench must complete requests");
    assert!(serve_stats.totals.shed() > 0, "deliberate overload must shed");

    let stats = engine.cache_stats();
    println!("  tuned schedule          {schedule}");
    println!("  verify (tuned kernel)   {:>12}  [{tuned_report}]", fmt_duration(verify_d));
    println!(
        "  verified kernels        {verified_kernels:>12}  ({verify_denies} deny, \
         {verify_warns} warn)"
    );
    println!("  cold request (tune+run) {:>12}", fmt_duration(cold));
    println!("  warm request            {:>12}", fmt_duration(warm));
    println!("  cold compile            {:>12}", fmt_duration(cold_compile));
    println!("  warm compile (hit)      {:>12}", fmt_duration(warm_compile));
    println!("  run only                {:>12}", fmt_duration(run_only));
    println!("  available parallelism   {avail:>12}");
    let base = scaling[0].1;
    for &(t, d) in &scaling {
        println!(
            "  parallel run, {t} thread{} {:>11}  ({:.2}x vs 1 thread)",
            if t == 1 { " " } else { "s" },
            fmt_duration(d),
            base.as_secs_f64() / d.as_secs_f64().max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "  cost analysis           {:>12}  (bound {} B vs peak {observed_peak} B, \
         tightness {bound_tightness:.2}x, {pruned_candidates} candidates pruned)",
        fmt_duration(analysis_d),
        static_peak.map_or_else(|| "unbounded".to_string(), |b| b.to_string()),
    );
    let dense_kind = kind_nanos[0].1;
    for &(kind, d) in &kind_nanos {
        println!(
            "  {:<22}  {:>13}  ({:.2}x vs dense)",
            format!("workspace({kind})"),
            fmt_duration(d),
            d.as_secs_f64() / dense_kind.as_secs_f64().max(f64::MIN_POSITIVE),
        );
    }
    if native_available {
        println!(
            "  native run              {:>12}  ({:.2}x vs interp {}, compile {})",
            fmt_duration(native_best),
            interp_best.as_secs_f64() / native_best.as_secs_f64().max(f64::MIN_POSITIVE),
            fmt_duration(interp_best),
            fmt_duration(Duration::from_nanos(native_compile_nanos)),
        );
    } else {
        println!(
            "  native run              {:>12}  (unavailable: no toolchain or kernel rejected; \
             interpreter served {} runs)",
            "-",
            native_stats.unavailable + native_stats.rejected,
        );
    }
    let csr_spmv = format_nanos[0].1;
    for &(label, d) in &format_nanos {
        println!(
            "  spmv(B:{:<5})          {:>13}  ({:.2}x vs csr)",
            label,
            fmt_duration(d),
            d.as_secs_f64() / csr_spmv.as_secs_f64().max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "  spmv(B:bcsr {br}x{bc})      {:>13}  interp, {} native ({:.2}x)",
        fmt_duration(bcsr_interp),
        fmt_duration(bcsr_native),
        bcsr_interp.as_secs_f64() / bcsr_native.as_secs_f64().max(f64::MIN_POSITIVE),
    );
    println!("  ladder ({ln}x{ln}, 256 nnz operands):");
    for (label, rung, retries) in &ladder_rungs {
        println!("    {label:<18} -> {rung} ({retries} degraded retries)");
    }
    println!(
        "  ladder totals           {:>12}  ({} exhausted, {} degraded retries)",
        format!("{} runs", ladder_rungs.len()),
        ladder_exhausted,
        ladder_retries,
    );
    println!(
        "  serving ({SERVE_CLIENTS} clients / {SERVE_WORKERS} workers): {} completed, \
         {} shed ({:.0}%), p50 {}, p99 {}, coalesce {:.0}%",
        serve_stats.totals.completed,
        serve_stats.totals.shed(),
        serve_stats.shed_rate() * 100.0,
        fmt_duration(serve_p50),
        fmt_duration(serve_p99),
        serve_stats.coalesce_rate() * 100.0,
    );
    println!("  cache                   {stats}");
    for event in engine.last_events() {
        println!("  event: {event}");
    }

    if args.json {
        let threads_json =
            thread_counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let scaling_json = scaling
            .iter()
            .map(|(t, d)| format!("\"{t}\": {}", d.as_nanos()))
            .collect::<Vec<_>>()
            .join(", ");
        let kinds_json = kind_nanos
            .iter()
            .map(|(k, d)| format!("\"{k}\": {}", d.as_nanos()))
            .collect::<Vec<_>>()
            .join(", ");
        let formats_json = format_nanos
            .iter()
            .map(|(label, d)| format!("\"{label}\": {}", d.as_nanos()))
            .collect::<Vec<_>>()
            .join(", ");
        let rungs_json = ladder_rungs
            .iter()
            .map(|(label, rung, retries)| {
                format!(
                    "{{\"budget\": {label:?}, \"rung\": {rung:?}, \"degraded_retries\": {retries}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"kernel\": \"spgemm\",\n  \"n\": {n},\n  \"schedule\": {schedule:?},\n  \
             \"cold_request_nanos\": {},\n  \"warm_request_nanos\": {},\n  \
             \"cold_compile_nanos\": {},\n  \"warm_compile_nanos\": {},\n  \
             \"run_nanos\": {},\n  \"available_parallelism\": {avail},\n  \
             \"threads\": [{threads_json}],\n  \
             \"parallel_run_nanos\": {{{scaling_json}}},\n  \
             \"workspace_kind_run_nanos\": {{{kinds_json}}},\n  \
             \"native\": {{\"available\": {native_available}, \
             \"interp_run_nanos\": {}, \"native_run_nanos\": {}, \
             \"compile_nanos\": {native_compile_nanos}, \
             \"compiled\": {}, \"trusted\": {}, \"rejected\": {}, \
             \"unavailable\": {}, \"native_runs\": {}}},\n  \
             \"formats\": {{\"spmv_run_nanos\": {{{formats_json}}}, \
             \"bcsr\": {{\"block\": [{br}, {bc}], \
             \"interp_run_nanos\": {}, \"native_run_nanos\": {}}}}},\n  \
             \"ladder_runs\": [{rungs_json}],\n  \
             \"ladder_exhausted\": {ladder_exhausted},\n  \
             \"ladder_degraded_retries\": {ladder_retries},\n  \
             \"verify_mode\": \"{verify_mode}\",\n  \"verify_nanos\": {},\n  \
             \"verified_kernels\": {verified_kernels},\n  \
             \"verify_denies\": {verify_denies},\n  \"verify_warns\": {verify_warns},\n  \
             \"analysis\": {{\"analysis_nanos\": {}, \
             \"static_peak_bytes\": {}, \"observed_peak_bytes\": {observed_peak}, \
             \"bound_tightness\": {}, \"pruned_candidates\": {pruned_candidates}}},\n  \
             \"serving\": {{\"clients\": {SERVE_CLIENTS}, \"workers\": {SERVE_WORKERS}, \
             \"completed\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
             \"coalesce_rate\": {:.4}, \"p50_latency_nanos\": {}, \
             \"p99_latency_nanos\": {}}},\n  \
             \"cache_hit_rate\": {:.4},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"cache_compiles\": {},\n  \"tunings\": {}\n}}\n",
            cold.as_nanos(),
            warm.as_nanos(),
            cold_compile.as_nanos(),
            warm_compile.as_nanos(),
            run_only.as_nanos(),
            interp_best.as_nanos(),
            native_best.as_nanos(),
            native_stats.compiled,
            native_stats.trusted,
            native_stats.rejected,
            native_stats.unavailable,
            native_stats.native_runs,
            bcsr_interp.as_nanos(),
            bcsr_native.as_nanos(),
            verify_d.as_nanos(),
            analysis_d.as_nanos(),
            static_peak.map_or_else(|| "null".to_string(), |b| b.to_string()),
            if bound_tightness.is_finite() {
                format!("{bound_tightness:.4}")
            } else {
                "null".to_string()
            },
            serve_stats.totals.completed,
            serve_stats.totals.shed(),
            serve_stats.shed_rate(),
            serve_stats.coalesce_rate(),
            serve_p50.as_nanos(),
            serve_p99.as_nanos(),
            stats.hit_rate(),
            stats.hits,
            stats.misses,
            stats.compiles,
            engine.tuner().tunings(),
        );
        std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
        println!("\nwrote BENCH_runtime.json");
    }
}
