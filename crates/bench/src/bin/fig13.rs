//! Regenerates Figure 13: sparse matrix addition.
//!
//! Left: total time to assemble and compute `n` additions (n+1 operands)
//! for taco pairwise, taco multi-operand merge, the workspace kernel, and
//! Eigen/MKL-style pairwise baselines. Paper shapes: libraries lose to code
//! generation; the workspace kernel overtakes the merge kernel as operands
//! grow.
//!
//! Right: assembly/compute breakdown for adding 7 operands with the paper's
//! densities; assembly dominates.

use taco_bench::figures::{fig13_breakdown, fig13_scaling};
use taco_bench::timing::{fmt_duration, print_table};
use taco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    // The paper does not state the addition dimensions; 20k scaled by
    // --scale keeps the default run fast.
    let n = ((20_000.0 * args.scale.max(1e-3)) as usize).max(500);
    println!("FIGURE 13 (left): time for n additions of {n}x{n} operands ({} reps)\n", args.reps);

    let rows = fig13_scaling(n, 6, args.reps);
    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.additions.to_string(),
            fmt_duration(r.t_taco_binop),
            fmt_duration(r.t_taco),
            fmt_duration(r.t_workspace),
            fmt_duration(r.t_eigen),
            fmt_duration(r.t_mkl),
        ]);
    }
    print_table(&["Additions", "taco-binop", "taco", "workspace", "eigen", "mkl"], &table);

    println!("\nFIGURE 13 (right): assembly/compute breakdown, 7 operands\n");
    let brk = fig13_breakdown(n, args.reps);
    let mut table = Vec::new();
    for b in &brk {
        table.push(vec![
            b.code.to_string(),
            b.assembly.map(fmt_duration).unwrap_or_else(|| "-".to_string()),
            fmt_duration(b.compute),
        ]);
    }
    print_table(&["Code", "Assembly", "Compute"], &table);
    println!("\npaper (ms): taco bin 247/211, taco 190/182, workspace 190/93.3, Eigen 436, MKL 1141");
}
