//! Regenerates Figure 12 (left): dense-output MTTKRP running times for
//! taco (merge-based), the workspace kernel, and the SPLATT-style kernel,
//! normalized to taco.
//!
//! Paper shapes: the workspace kernel wins by 12% (NELL-1) and 35% (NELL-2)
//! and is within 5% of SPLATT; on the small Facebook tensor the merge-based
//! kernel is fastest.

use taco_bench::figures::fig12_left;
use taco_bench::timing::{fmt_duration, print_table};
use taco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    println!(
        "FIGURE 12 (left): MTTKRP normalized to taco, scale {} rank {} ({} reps)\n",
        args.scale, args.rank, args.reps
    );

    let rows = fig12_left(args.scale, args.rank, 4096, args.reps);
    let mut table = Vec::new();
    for r in &rows {
        let base = r.t_taco.as_secs_f64();
        table.push(vec![
            r.name.to_string(),
            fmt_duration(r.t_taco),
            fmt_duration(r.t_workspace),
            fmt_duration(r.t_splatt),
            format!("{:.2}", 1.0),
            format!("{:.2}", r.t_workspace.as_secs_f64() / base),
            format!("{:.2}", r.t_splatt.as_secs_f64() / base),
        ]);
    }
    print_table(
        &["Tensor", "taco", "workspace", "splatt", "taco (norm)", "ws (norm)", "splatt (norm)"],
        &table,
    );
    println!("\npaper: workspace beats taco by 12–35% on the NELL tensors and loses on Facebook.");
}
