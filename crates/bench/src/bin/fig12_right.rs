//! Regenerates Figure 12 (right): relative MTTKRP compute time
//! (sparse output + sparse factors) / (dense output + dense factors) as the
//! factor-matrix density sweeps the paper's values
//! {1.0, 0.25, 0.02, 0.01, 2.5E-3, 1E-4}.
//!
//! Paper shapes: crossover at about 25% density; speedups of 4.5–11x at
//! density 1E-4.

use taco_bench::figures::fig12_right;
use taco_bench::timing::{fmt_duration, print_table};
use taco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    println!(
        "FIGURE 12 (right): sparse/dense MTTKRP relative time, scale {} rank {} ({} reps)\n",
        args.scale, args.rank, args.reps
    );

    let rows = fig12_right(args.scale, args.rank, 4096, args.reps);
    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.name.to_string(),
            format!("{:.1E}", r.density),
            fmt_duration(r.t_sparse),
            fmt_duration(r.t_dense),
            format!("{:.3}", r.relative()),
        ]);
    }
    print_table(&["Tensor", "Density", "sparse", "dense", "sparse/dense"], &table);

    // Report the crossover per tensor.
    for name in ["Facebook", "NELL-2", "NELL-1"] {
        let mut crossover = None;
        for r in rows.iter().filter(|r| r.name == name) {
            if r.relative() <= 1.0 && crossover.is_none() {
                crossover = Some(r.density);
            }
        }
        match crossover {
            Some(d) => println!("{name}: sparse wins from density {d:.1E} (paper: ~0.25)"),
            None => println!("{name}: sparse never wins at this scale"),
        }
    }
}
