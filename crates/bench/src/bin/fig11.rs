//! Regenerates Figure 11: sparse matrix multiplication, workspace kernel
//! vs Eigen-style (sorted) and MKL-style (unsorted) baselines, for every
//! Table I matrix at synthetic-operand densities 4E-4 and 1E-4.
//!
//! The paper reports normalized time (baseline / taco-workspace); averages
//! of 4x (Eigen, sorted) and ~1.16–1.28x (MKL, unsorted) are the shapes to
//! look for.

use taco_bench::figures::{fig11, verify_consistency};
use taco_bench::timing::{fmt_duration, print_table};
use taco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    assert!(verify_consistency(400), "kernel cross-check failed; refusing to benchmark");
    println!(
        "FIGURE 11: SpGEMM normalized runtimes at scale {} ({} reps)\n",
        args.scale, args.reps
    );

    let rows = fig11(args.scale, args.reps);

    for sorted in [true, false] {
        let label = if sorted { "SORTED (vs Eigen-style)" } else { "UNSORTED (vs MKL-style)" };
        println!("{label}");
        let mut table = Vec::new();
        let mut ratios = Vec::new();
        for r in rows.iter().filter(|r| r.sorted == sorted) {
            ratios.push(r.normalized());
            table.push(vec![
                r.id.to_string(),
                r.name.to_string(),
                format!("{:.0E}", r.density),
                fmt_duration(r.t_workspace),
                fmt_duration(r.t_baseline),
                format!("{:.2}x", r.normalized()),
            ]);
        }
        print_table(
            &["#", "Matrix", "C density", "workspace", "baseline", "normalized (baseline/ws)"],
            &table,
        );
        let geo: f64 =
            (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        println!("geometric-mean normalized time: {geo:.2}x  (paper: ~4x sorted, ~1.2x unsorted)\n");
    }
}
