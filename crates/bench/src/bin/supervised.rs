//! Measures the cost of supervised execution and demonstrates the
//! degradation ladder.
//!
//! The supervisor arms cancellation, deadline and progress checks at loop
//! back-edges (amortized over a 1024-iteration stride) and snapshots the
//! writable output arrays for the transactional guarantee, so the
//! interesting questions are: how much slower is a supervised run of a
//! healthy kernel, and what does the report look like when a schedule has
//! to degrade?
//!
//! ```text
//! cargo run --release -p taco-bench --bin supervised
//! ```

use std::time::Duration;
use taco_bench::timing::{fmt_duration, time_best};
use taco_bench::BenchArgs;
use taco_core::{IndexStmt, Supervisor};
use taco_ir::expr::{sum, IndexExpr, IndexVar, TensorVar};
use taco_ir::notation::IndexAssignment;
use taco_lower::LowerOptions;
use taco_tensor::gen::random_csr;
use taco_tensor::{DenseTensor, Format, Tensor};

fn scheduled_spgemm(n: usize) -> IndexStmt {
    let a = TensorVar::new("A", vec![n, n], Format::csr());
    let b = TensorVar::new("B", vec![n, n], Format::csr());
    let c = TensorVar::new("C", vec![n, n], Format::csr());
    let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
    let mul = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
    let mut stmt = IndexStmt::new(IndexAssignment::assign(
        a.access([i.clone(), j.clone()]),
        sum(k.clone(), mul.clone()),
    ))
    .expect("valid statement");
    stmt.reorder(&k, &j).expect("reorder");
    let w = TensorVar::new("w", vec![n], Format::dvec());
    stmt.precompute(&mul, &[(j.clone(), j.clone(), j.clone())], &w).expect("precompute");
    stmt
}

fn main() {
    let args = BenchArgs::from_env();
    let n = 256;
    let stmt = scheduled_spgemm(n);
    let kernel = stmt.compile(LowerOptions::fused("spgemm")).expect("compiles");
    let b = random_csr(n, n, 0.1, 31).to_tensor();
    let c = random_csr(n, n, 0.1, 32).to_tensor();
    let inputs: Vec<(&str, &Tensor)> = vec![("B", &b), ("C", &c)];

    println!("SUPERVISION OVERHEAD: {n}x{n} SpGEMM, density 0.1 ({} reps)\n", args.reps);
    let (plain, _) = time_best(args.reps, || kernel.run(&inputs).expect("runs"));
    let supervisor = Supervisor::new().with_deadline(Duration::from_secs(60));
    let (supervised, (_, report)) = time_best(args.reps, || {
        kernel.run_supervised(&inputs, None, &supervisor).expect("runs")
    });
    println!("  unsupervised run        {:>12}", fmt_duration(plain));
    println!("  supervised run          {:>12}", fmt_duration(supervised));
    println!(
        "  overhead                {:>11.1}%",
        (supervised.as_secs_f64() / plain.as_secs_f64() - 1.0) * 100.0
    );
    println!("  last report: {}\n", report.summary());

    // A pathological schedule under a tight deadline: the dense operand of
    // the sampled product is precomputed into a row workspace, so the
    // scheduled kernel scans all n columns per row while B holds three
    // nonzeros. The ladder drops to the direct merge kernel and says why.
    let (m, nn) = (128usize, 1usize << 15);
    let a2 = TensorVar::new("A", vec![m, nn], Format::csr());
    let b2 = TensorVar::new("B", vec![m, nn], Format::csr());
    let c2 = TensorVar::new("C", vec![m, nn], Format::dense(2));
    let (i, j) = (IndexVar::new("i"), IndexVar::new("j"));
    let cij: IndexExpr = c2.access([i.clone(), j.clone()]).into();
    let mut sampled = IndexStmt::new(IndexAssignment::assign(
        a2.access([i.clone(), j.clone()]),
        b2.access([i.clone(), j.clone()]) * c2.access([i.clone(), j.clone()]),
    ))
    .expect("valid statement");
    let w = TensorVar::new("w", vec![nn], Format::dvec());
    sampled.precompute(&cij, &[(j.clone(), j.clone(), j.clone())], &w).expect("precompute");

    let b2t = Tensor::from_entries(
        vec![m, nn],
        Format::csr(),
        vec![(vec![0, 5], 2.0), (vec![64, 100], 3.0), (vec![127, 7], 4.0)],
    )
    .expect("valid tensor");
    let c2t = Tensor::from_dense(
        &DenseTensor::from_data(vec![m, nn], (0..m * nn).map(|p| (p % 97) as f64 + 1.0).collect()),
        Format::dense(2),
    )
    .expect("valid tensor");

    println!("DEGRADE AND RETRY: sampled product with a pathological workspace, 50 ms deadline\n");
    let deadline = Supervisor::new().with_deadline(Duration::from_millis(50));
    match sampled.run_supervised(
        LowerOptions::fused("sampled"),
        &deadline,
        &[("B", &b2t), ("C", &c2t)],
        None,
    ) {
        Ok(outcome) => println!("  {}", outcome.summary().replace('\n', "\n  ")),
        Err(e) => println!("  every rung aborted: {e}"),
    }
}
