//! Regenerates Table I: the test matrices and tensors with their domains,
//! nonzero counts and densities, plus the synthetic stand-ins generated at
//! the chosen scale.

use taco_bench::timing::print_table;
use taco_bench::BenchArgs;
use taco_tensor::datasets::{MATRICES, TENSORS};

fn main() {
    let args = BenchArgs::from_env();
    println!("TABLE I: TEST MATRICES AND TENSORS (paper metadata + stand-ins at scale {})\n", args.scale);

    let mut rows = Vec::new();
    for m in &MATRICES {
        let g = m.generate(args.scale);
        rows.push(vec![
            m.id.to_string(),
            m.name.to_string(),
            m.domain.to_string(),
            m.nnz.to_string(),
            format!("{:.0E}", m.density()),
            format!("{}x{}", g.nrows(), g.ncols()),
            g.nnz().to_string(),
        ]);
    }
    print_table(&["#", "Matrix", "Domain", "NNZ", "Density", "Stand-in dims", "Stand-in NNZ"], &rows);

    println!();
    let mut trows = Vec::new();
    for t in &TENSORS {
        let g = t.generate((args.scale * 0.1).min(1.0), 4096);
        let d = g.dims();
        trows.push(vec![
            t.name.to_string(),
            t.domain.to_string(),
            t.nnz.to_string(),
            format!("{:.0E}", t.density()),
            format!("{}x{}x{}", d[0], d[1], d[2]),
            g.nnz().to_string(),
        ]);
    }
    print_table(&["Tensor", "Domain", "NNZ", "Density", "Stand-in dims", "Stand-in NNZ"], &trows);
}
