//! Criterion benches for Figure 12: MTTKRP variants — merge-based (taco),
//! workspace, SPLATT-style, and the sparse-everything kernel across the
//! density sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taco_bench::workloads::{dense_mat, fig12_workloads, sparse_factors};
use taco_kernels::mttkrp::{mttkrp_sparse, mttkrp_splatt, mttkrp_taco, mttkrp_workspace};

fn bench_mttkrp_dense(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("fig12_left_mttkrp");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    for w in fig12_workloads(0.002, 16, 2048) {
        group.bench_with_input(BenchmarkId::new("taco_merge", w.name), &w, |bch, w| {
            bch.iter(|| mttkrp_taco(&w.b, &w.c, &w.d))
        });
        group.bench_with_input(BenchmarkId::new("workspace", w.name), &w, |bch, w| {
            bch.iter(|| mttkrp_workspace(&w.b, &w.c, &w.d))
        });
        group.bench_with_input(BenchmarkId::new("splatt_style", w.name), &w, |bch, w| {
            bch.iter(|| mttkrp_splatt(&w.b, &w.c, &w.d))
        });
    }
    group.finish();
}

fn bench_mttkrp_sparse_sweep(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("fig12_right_sparse_mttkrp");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    let w = &fig12_workloads(0.002, 16, 2048)[0]; // Facebook stand-in
    let [_, dk, dl] = w.b.dims();
    let cd = dense_mat(dl, 16, 1);
    let dd = dense_mat(dk, 16, 2);
    group.bench_function("dense_reference", |bch| {
        bch.iter(|| mttkrp_workspace(&w.b, &cd, &dd))
    });
    for density in [1.0, 0.25, 0.01, 1e-4] {
        let (cs, ds) = sparse_factors(dk, dl, 16, density);
        group.bench_with_input(
            BenchmarkId::new("sparse", format!("{density:.0e}")),
            &(&cs, &ds),
            |bch, (cs, ds)| bch.iter(|| mttkrp_sparse(&w.b, cs, ds)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mttkrp_dense, bench_mttkrp_sparse_sweep);
criterion_main!(benches);
