//! Measures the interpretation overhead of the compiled-kernel executor
//! against the native generated-equivalent kernel on the same SpGEMM
//! workload — making the cost of the pure-Rust "target code" substitution
//! (DESIGN.md §5) visible rather than hidden.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use taco_core::IndexStmt;
use taco_ir::expr::{sum, IndexVar, TensorVar};
use taco_ir::notation::IndexAssignment;
use taco_kernels::spgemm::spgemm_workspace_sorted;
use taco_lower::LowerOptions;
use taco_tensor::gen::random_csr;
use taco_tensor::Format;

fn bench_compiled_vs_native(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("compiled_vs_native_spgemm");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    let n = 400;
    let a = TensorVar::new("A", vec![n, n], Format::csr());
    let b = TensorVar::new("B", vec![n, n], Format::csr());
    let c = TensorVar::new("C", vec![n, n], Format::csr());
    let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
    let mul = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
    let mut stmt = IndexStmt::new(IndexAssignment::assign(
        a.access([i.clone(), j.clone()]),
        sum(k.clone(), mul.clone()),
    ))
    .expect("valid index notation");
    stmt.reorder(&k, &j).expect("reorderable");
    let w = TensorVar::new("w", vec![n], Format::dvec());
    stmt.precompute(&mul, &[(j.clone(), j.clone(), j.clone())], &w).expect("precomputable");
    let kernel = stmt.compile(LowerOptions::fused("spgemm")).expect("compiles");

    let bm = random_csr(n, n, 0.02, 1);
    let cm = random_csr(n, n, 0.02, 2);
    let (bt, ct) = (bm.to_tensor(), cm.to_tensor());

    group.bench_function("compiled_executor", |bch| {
        bch.iter(|| kernel.run(&[("B", &bt), ("C", &ct)]).expect("runs"))
    });
    group.bench_function("native_equivalent", |bch| {
        bch.iter(|| spgemm_workspace_sorted(&bm, &cm))
    });
    group.finish();
}

criterion_group!(benches, bench_compiled_vs_native);
criterion_main!(benches);
