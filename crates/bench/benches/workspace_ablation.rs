//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * dense-array vs hash-map workspace (paper Section III / Section IX on
//!   Patwary et al.'s hash experiment),
//! * sorted vs unsorted result assembly (Figure 8's optional sort),
//! * linear-combination-of-rows vs inner-product SpGEMM (the asymptotic
//!   argument of Section II).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use taco_kernels::spgemm::{
    spgemm_hash_workspace, spgemm_inner_product, spgemm_workspace_sorted,
    spgemm_workspace_unsorted,
};
use taco_tensor::gen::random_csr;

fn bench_ablation(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("workspace_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let n = 2000;
    let b = random_csr(n, n, 2e-3, 1);
    let c = random_csr(n, n, 2e-3, 2);
    let ct = c.transpose();

    group.bench_function("dense_workspace_sorted", |bch| {
        bch.iter(|| spgemm_workspace_sorted(&b, &c))
    });
    group.bench_function("dense_workspace_unsorted", |bch| {
        bch.iter(|| spgemm_workspace_unsorted(&b, &c))
    });
    group.bench_function("hash_workspace", |bch| bch.iter(|| spgemm_hash_workspace(&b, &c)));
    group.bench_function("inner_product", |bch| bch.iter(|| spgemm_inner_product(&b, &ct)));
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
