//! Criterion benches for Figure 13: multi-operand sparse matrix addition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taco_bench::workloads::fig13_operands;
use taco_kernels::add::{
    add_kway_merge, add_kway_workspace, add_pairwise, add_pairwise_mkl_style,
};
use taco_tensor::Csr;

fn bench_add(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("fig13_matrix_add");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    let n = 2000;
    let all = fig13_operands(n, 7);
    for adds in [2usize, 4, 6] {
        let ops: Vec<&Csr> = all[..=adds].iter().collect();
        group.bench_with_input(BenchmarkId::new("taco_binop_pairwise", adds), &ops, |b, ops| {
            b.iter(|| add_pairwise(ops))
        });
        group.bench_with_input(BenchmarkId::new("taco_merge", adds), &ops, |b, ops| {
            b.iter(|| add_kway_merge(ops))
        });
        group.bench_with_input(BenchmarkId::new("workspace", adds), &ops, |b, ops| {
            b.iter(|| add_kway_workspace(ops))
        });
        group.bench_with_input(BenchmarkId::new("mkl_style_pairwise", adds), &ops, |b, ops| {
            b.iter(|| add_pairwise_mkl_style(ops))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_add);
criterion_main!(benches);
