//! Criterion benches for Figure 11: SpGEMM kernel variants on Table I
//! stand-ins at the paper's synthetic-operand densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taco_kernels::spgemm::{
    spgemm_eigen_style, spgemm_mkl_style, spgemm_workspace_sorted, spgemm_workspace_unsorted,
};
use taco_tensor::datasets::MATRICES;
use taco_tensor::gen::random_csr;

fn bench_spgemm(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("fig11_spgemm");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    // A representative subset of Table I keeps the default run short; the
    // fig11 binary covers all eleven matrices.
    for info in [&MATRICES[0], &MATRICES[5], &MATRICES[7]] {
        let b = info.generate(0.01);
        for density in [4e-4, 1e-4] {
            let c = random_csr(b.nrows(), b.ncols(), density, 42);
            let tag = format!("{}_{:.0e}", info.name, density);
            group.bench_with_input(
                BenchmarkId::new("workspace_sorted", &tag),
                &(&b, &c),
                |bch, (b, c)| bch.iter(|| spgemm_workspace_sorted(b, c)),
            );
            group.bench_with_input(
                BenchmarkId::new("eigen_style", &tag),
                &(&b, &c),
                |bch, (b, c)| bch.iter(|| spgemm_eigen_style(b, c)),
            );
            group.bench_with_input(
                BenchmarkId::new("workspace_unsorted", &tag),
                &(&b, &c),
                |bch, (b, c)| bch.iter(|| spgemm_workspace_unsorted(b, c)),
            );
            group.bench_with_input(
                BenchmarkId::new("mkl_style", &tag),
                &(&b, &c),
                |bch, (b, c)| bch.iter(|| spgemm_mkl_style(b, c)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
