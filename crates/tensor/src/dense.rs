use std::fmt;

/// A dense multi-dimensional array of `f64` in row-major order.
///
/// Dense tensors serve two roles in this project: as the reference oracle
/// against which compiled sparse kernels are checked, and as the dense
/// operands/results of kernels such as the MTTKRP with dense output
/// (Figure 9 of the paper).
///
/// # Example
///
/// ```
/// use taco_tensor::DenseTensor;
///
/// let mut t = DenseTensor::zeros(vec![2, 3]);
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.get(&[0, 0]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a zero-filled dense tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "dense tensor must have at least one mode");
        let len = shape.iter().product();
        DenseTensor { shape, data: vec![0.0; len] }
    }

    /// Creates a dense tensor from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of the dimensions.
    pub fn from_data(shape: Vec<usize>, data: Vec<f64>) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(len, data.len(), "data length must match shape volume");
        DenseTensor { shape, data }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of modes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Row-major linear offset of a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate rank or any coordinate is out of bounds.
    pub fn offset(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.shape.len(), "coordinate rank mismatch");
        let mut off = 0;
        for (c, d) in coord.iter().zip(&self.shape) {
            assert!(c < d, "coordinate {c} out of bounds for dimension {d}");
            off = off * d + c;
        }
        off
    }

    /// Reads the component at `coord`.
    pub fn get(&self, coord: &[usize]) -> f64 {
        self.data[self.offset(coord)]
    }

    /// Writes the component at `coord`.
    pub fn set(&mut self, coord: &[usize], value: f64) {
        let off = self.offset(coord);
        self.data[off] = value;
    }

    /// Adds `value` to the component at `coord`.
    pub fn add(&mut self, coord: &[usize], value: f64) {
        let off = self.offset(coord);
        self.data[off] += value;
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns its row-major data.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Number of stored components (the shape volume).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor stores no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of components with nonzero value.
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Iterates over `(coordinate, value)` pairs of the *nonzero* components
    /// in row-major (lexicographic) coordinate order.
    pub fn iter_nonzeros(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let shape = self.shape.clone();
        self.data.iter().enumerate().filter(|(_, v)| **v != 0.0).map(move |(off, v)| {
            let mut coord = vec![0; shape.len()];
            let mut rem = off;
            for (k, d) in shape.iter().enumerate().rev() {
                coord[k] = rem % d;
                rem /= d;
            }
            (coord, *v)
        })
    }

    /// True if every component differs from `other` by at most `tol`.
    ///
    /// Shapes must match exactly; returns `false` otherwise.
    pub fn approx_eq(&self, other: &DenseTensor, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl fmt::Display for DenseTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseTensor{:?} [", self.shape)?;
        let show = self.data.len().min(16);
        for (i, v) in self.data[..show].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > show {
            write!(f, ", ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = DenseTensor::zeros(vec![3, 4]);
        assert_eq!(t.len(), 12);
        t.set(&[2, 3], 7.0);
        t.add(&[2, 3], 1.0);
        assert_eq!(t.get(&[2, 3]), 8.0);
        assert_eq!(t.get(&[0, 0]), 0.0);
    }

    #[test]
    fn offsets_row_major() {
        let t = DenseTensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        DenseTensor::zeros(vec![2, 2]).get(&[0, 2]);
    }

    #[test]
    fn iter_nonzeros_in_order() {
        let mut t = DenseTensor::zeros(vec![2, 2]);
        t.set(&[1, 0], 3.0);
        t.set(&[0, 1], 2.0);
        let nz: Vec<_> = t.iter_nonzeros().collect();
        assert_eq!(nz, vec![(vec![0, 1], 2.0), (vec![1, 0], 3.0)]);
    }

    #[test]
    fn approx_eq_tolerates_roundoff() {
        let a = DenseTensor::from_data(vec![2], vec![1.0, 2.0]);
        let b = DenseTensor::from_data(vec![2], vec![1.0 + 1e-12, 2.0]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = DenseTensor::from_data(vec![1, 2], vec![1.0, 2.0]);
        assert!(!a.approx_eq(&c, 1.0), "shape mismatch must not compare equal");
    }

    #[test]
    fn count_nonzeros() {
        let t = DenseTensor::from_data(vec![4], vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(t.count_nonzeros(), 2);
    }
}
