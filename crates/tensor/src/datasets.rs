//! Synthetic stand-ins for the Table I datasets.
//!
//! The paper evaluates on real-world matrices from the SuiteSparse Matrix
//! Collection and tensors from FROSTT. Those collections are not available
//! offline, so this module records the Table I metadata (name, domain, nnz,
//! density — and dimensions from the public collections) and *generates*
//! matrices/tensors with matching shape, nonzero count and a structure class
//! appropriate for the domain (banded for FEM/structural problems, power-law
//! for web/circuit graphs, uniform otherwise).
//!
//! Because full-size generation would take minutes and gigabytes, every
//! generator takes a `scale` in `(0, 1]` that shrinks dimensions by
//! `sqrt(scale)` and nonzeros by `scale`, preserving density — the quantity
//! the paper's experiments sweep and report.

use crate::gen::{random_csf3_fibered, random_csr_nnz, Pattern};
use crate::{Csf3, Csr};

/// Metadata of one Table I matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixInfo {
    /// Matrix number in Table I (0–10).
    pub id: usize,
    /// SuiteSparse name.
    pub name: &'static str,
    /// Application domain (Table I column).
    pub domain: &'static str,
    /// Number of rows (= columns; all Table I matrices are square).
    pub dim: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Structure class used by the synthetic generator.
    pub pattern: Pattern,
}

impl MatrixInfo {
    /// Density (fraction of nonzeros), as reported in Table I.
    pub fn density(&self) -> f64 {
        self.nnz as f64 / (self.dim as f64 * self.dim as f64)
    }

    /// Generates a synthetic stand-in at the given scale.
    ///
    /// `scale = 1.0` reproduces the full-size matrix; smaller values shrink
    /// dimensions by `sqrt(scale)` and nonzeros by `scale`, keeping density
    /// fixed. Deterministic in the matrix id.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(&self, scale: f64) -> Csr {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let dim = ((self.dim as f64 * scale.sqrt()).round() as usize).max(8);
        let nnz = ((self.nnz as f64 * scale).round() as usize).max(1);
        random_csr_nnz(dim, dim, nnz, self.pattern, 0x7ac0 + self.id as u64)
    }
}

/// Metadata of one Table I FROSTT tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorInfo {
    /// FROSTT name.
    pub name: &'static str,
    /// Application domain (Table I column).
    pub domain: &'static str,
    /// Mode dimensions, from FROSTT.
    pub dims: [usize; 3],
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Average entries per `(mode-0, mode-1)` fiber, estimated from the
    /// FROSTT statistics; governs how profitable loop-invariant hoisting is
    /// (paper Section VIII-C).
    pub fiber_len: f64,
}

impl TensorInfo {
    /// Density as reported in Table I.
    pub fn density(&self) -> f64 {
        self.nnz as f64 / (self.dims[0] as f64 * self.dims[1] as f64 * self.dims[2] as f64)
    }

    /// Generates a synthetic stand-in at the given scale, with each mode
    /// dimension additionally capped at `max_dim` (dense MTTKRP outputs are
    /// `dim0 x rank` and must stay allocatable).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]` or `max_dim` is zero.
    pub fn generate(&self, scale: f64, max_dim: usize) -> Csf3 {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        assert!(max_dim > 0, "max_dim must be nonzero");
        let f = scale.cbrt();
        let dims = [
            (((self.dims[0] as f64) * f).round() as usize).clamp(4, max_dim),
            (((self.dims[1] as f64) * f).round() as usize).clamp(4, max_dim),
            (((self.dims[2] as f64) * f).round() as usize).clamp(4, max_dim),
        ];
        let nnz = ((self.nnz as f64 * scale).round() as usize).max(1);
        random_csf3_fibered(dims, nnz, self.fiber_len, 0x7e45 + self.dims[0] as u64)
    }
}

/// The eleven matrices of Table I.
pub const MATRICES: [MatrixInfo; 11] = [
    MatrixInfo { id: 0, name: "bcsstk17", domain: "Structural", dim: 10_974, nnz: 428_650, pattern: Pattern::Banded(0.02) },
    MatrixInfo { id: 1, name: "pdb1HYS", domain: "Protein data base", dim: 36_417, nnz: 4_344_765, pattern: Pattern::Banded(0.02) },
    MatrixInfo { id: 2, name: "rma10", domain: "3D CFD", dim: 46_835, nnz: 2_329_092, pattern: Pattern::Banded(0.02) },
    MatrixInfo { id: 3, name: "cant", domain: "FEM/Cantilever", dim: 62_451, nnz: 4_007_383, pattern: Pattern::Banded(0.01) },
    MatrixInfo { id: 4, name: "consph", domain: "FEM/Spheres", dim: 83_334, nnz: 6_010_480, pattern: Pattern::Banded(0.01) },
    MatrixInfo { id: 5, name: "cop20k", domain: "FEM/Accelerator", dim: 121_192, nnz: 2_624_331, pattern: Pattern::Uniform },
    MatrixInfo { id: 6, name: "shipsec1", domain: "FEM", dim: 140_874, nnz: 3_568_176, pattern: Pattern::Banded(0.01) },
    MatrixInfo { id: 7, name: "scircuit", domain: "Circuit", dim: 170_998, nnz: 958_936, pattern: Pattern::PowerLaw },
    MatrixInfo { id: 8, name: "mac-econ", domain: "Economics", dim: 119_000, nnz: 1_273_389, pattern: Pattern::Uniform },
    MatrixInfo { id: 9, name: "pwtk", domain: "Wind tunnel", dim: 217_918, nnz: 11_524_432, pattern: Pattern::Banded(0.005) },
    MatrixInfo { id: 10, name: "webbase-1M", domain: "Web connectivity", dim: 1_000_005, nnz: 3_105_536, pattern: Pattern::PowerLaw },
];

/// The three tensors of Table I (dimensions from FROSTT).
pub const TENSORS: [TensorInfo; 3] = [
    TensorInfo { name: "Facebook", domain: "Social Media", dims: [1_591, 63_891, 63_890], nnz: 737_934, fiber_len: 1.0 },
    TensorInfo { name: "NELL-2", domain: "Machine learning", dims: [12_092, 9_184, 28_818], nnz: 76_879_419, fiber_len: 24.0 },
    TensorInfo { name: "NELL-1", domain: "Machine learning", dims: [2_902_330, 2_143_368, 25_495_389], nnz: 143_599_552, fiber_len: 6.0 },
];

/// Looks up a Table I matrix by name.
pub fn matrix_by_name(name: &str) -> Option<&'static MatrixInfo> {
    MATRICES.iter().find(|m| m.name == name)
}

/// Looks up a Table I tensor by name.
pub fn tensor_by_name(name: &str) -> Option<&'static TensorInfo> {
    TENSORS.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_match_table1_orders_of_magnitude() {
        // Table I reports densities 4E-3 ... 3E-6 for the matrices.
        let expected = [4e-3, 3e-3, 1e-3, 1e-3, 9e-4, 2e-4, 2e-4, 3e-5, 9e-5, 2e-4, 3e-6];
        for (m, e) in MATRICES.iter().zip(expected) {
            let d = m.density();
            assert!(
                d / e > 0.4 && d / e < 2.6,
                "{}: density {d:.1e} does not match Table I {e:.1e}",
                m.name
            );
        }
    }

    #[test]
    fn tensor_densities_match_table1() {
        let expected = [1e-7, 2e-5, 9e-13];
        for (t, e) in TENSORS.iter().zip(expected) {
            let d = t.density();
            assert!(
                d / e > 0.2 && d / e < 5.0,
                "{}: density {d:.1e} does not match Table I {e:.1e}",
                t.name
            );
        }
    }

    #[test]
    fn generate_preserves_density() {
        let m = &MATRICES[0];
        let g = m.generate(0.01);
        let gd = g.nnz() as f64 / (g.nrows() as f64 * g.ncols() as f64);
        assert!((gd / m.density()).abs() > 0.3 && (gd / m.density()) < 3.0);
    }

    #[test]
    fn generate_tensor_respects_cap() {
        let t = &TENSORS[2]; // NELL-1, enormous dims
        let g = t.generate(1e-5, 4096);
        assert!(g.dims().iter().all(|d| *d <= 4096));
        assert!(g.nnz() > 0);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(matrix_by_name("pwtk").unwrap().id, 9);
        assert!(matrix_by_name("nope").is_none());
        assert_eq!(tensor_by_name("NELL-2").unwrap().dims[0], 12_092);
    }
}
