use crate::{Format, LevelType, ModeStorage, Result, Tensor, TensorError};

/// Incremental builder for [`Tensor`] values.
///
/// Entries may be inserted in any order; [`TensorBuilder::build`] sorts them
/// lexicographically, sums duplicates, and packs the per-level `pos`/`crd`
/// arrays.
///
/// # Example
///
/// ```
/// use taco_tensor::{Format, TensorBuilder};
///
/// let mut b = TensorBuilder::new(vec![3, 3], Format::csr())?;
/// b.insert(&[2, 1], 4.0)?;
/// b.insert(&[0, 0], 1.0)?;
/// b.insert(&[2, 1], 1.0)?; // duplicates are summed
/// let t = b.build();
/// assert_eq!(t.nnz(), 2);
/// assert_eq!(t.to_dense().get(&[2, 1]), 5.0);
/// # Ok::<(), taco_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TensorBuilder {
    shape: Vec<usize>,
    format: Format,
    entries: Vec<(Vec<usize>, f64)>,
}

impl TensorBuilder {
    /// Creates a builder for a tensor of the given shape and format.
    ///
    /// # Errors
    ///
    /// Returns an error if the format rank does not match the shape rank,
    /// the shape is empty, or the format's level-type chain is unrealizable
    /// (see [`Format::check_level_types`]).
    pub fn new(shape: Vec<usize>, format: Format) -> Result<Self> {
        if shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        if shape.len() != format.rank() {
            return Err(TensorError::FormatRankMismatch {
                shape_rank: shape.len(),
                format_rank: format.rank(),
            });
        }
        format.check_level_types()?;
        Ok(TensorBuilder { shape, format, entries: Vec::new() })
    }

    /// Queues a component for insertion.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate has the wrong rank or is out of
    /// bounds.
    pub fn insert(&mut self, coord: &[usize], value: f64) -> Result<&mut Self> {
        if coord.len() != self.shape.len() {
            return Err(TensorError::RankMismatch {
                expected: self.shape.len(),
                found: coord.len(),
            });
        }
        for (mode, (&c, &d)) in coord.iter().zip(&self.shape).enumerate() {
            if c >= d {
                return Err(TensorError::CoordOutOfBounds { mode, coord: c, dim: d });
            }
        }
        self.entries.push((coord.to_vec(), value));
        Ok(self)
    }

    /// Number of queued entries (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, merges and packs the queued entries into a [`Tensor`].
    ///
    /// Entries are sorted by the format's *storage* order (levels outermost
    /// first, each level reading the mode it stores), duplicates are merged
    /// by summation, and each level is packed according to its
    /// [`LevelType`]: dense levels multiply positions out, compressed and
    /// hashed levels group by `(parent, coordinate)`, non-unique compressed
    /// levels (those above singletons) give every component its own
    /// position, and singleton levels store one coordinate per parent
    /// position.
    pub fn build(mut self) -> Tensor {
        let order = self.format.mode_order().to_vec();
        let storage_key = |coord: &[usize]| -> Vec<usize> {
            order.iter().map(|&m| coord[m]).collect()
        };
        self.entries.sort_by_key(|(coord, _)| storage_key(coord));
        // Merge duplicate coordinates up front: non-unique levels below give
        // every surviving entry its own position, so duplicates must not
        // survive to packing.
        let mut merged: Vec<(Vec<usize>, f64)> = Vec::with_capacity(self.entries.len());
        for (coord, v) in self.entries.drain(..) {
            match merged.last_mut() {
                Some((prev, pv)) if *prev == coord => *pv += v,
                _ => merged.push((coord, v)),
            }
        }

        let rank = self.shape.len();
        let n = merged.len();
        let mut modes: Vec<ModeStorage> = Vec::with_capacity(rank);

        // `parent_pos[e]` is the position of entry `e` in the level above the
        // one currently being packed. Level -1 (the root) has one position.
        let mut parent_pos: Vec<usize> = vec![0; n];
        let mut num_parent_positions = 1usize;

        for (level, &mode) in order.iter().enumerate().take(rank) {
            let dim = self.shape[mode];
            let lt = self.format.mode(level);
            match lt {
                LevelType::Dense => {
                    for (e, (coord, _)) in merged.iter().enumerate() {
                        parent_pos[e] = parent_pos[e] * dim + coord[mode];
                    }
                    num_parent_positions *= dim;
                    modes.push(ModeStorage::Dense { dim });
                }
                LevelType::Compressed | LevelType::Hashed
                    if !self.format.level_unique(level) =>
                {
                    // Non-unique level (a singleton level follows): every
                    // entry keeps its own position even when coordinates
                    // repeat, as in COO's outer coordinate array.
                    let mut pos = vec![0usize; num_parent_positions + 1];
                    let mut crd = Vec::with_capacity(n);
                    for (pp, entry) in parent_pos.iter_mut().zip(&merged) {
                        pos[*pp + 1] += 1;
                        crd.push(entry.0[mode]);
                        *pp = crd.len() - 1;
                    }
                    for p in 0..num_parent_positions {
                        pos[p + 1] += pos[p];
                    }
                    num_parent_positions = crd.len();
                    modes.push(ModeStorage::Compressed { pos, crd });
                }
                LevelType::Compressed | LevelType::Hashed => {
                    let mut pos = vec![0usize; num_parent_positions + 1];
                    let mut crd = Vec::new();
                    let mut prev: Option<(usize, usize)> = None;
                    for (pp, entry) in parent_pos.iter_mut().zip(&merged) {
                        let key = (*pp, entry.0[mode]);
                        if prev != Some(key) {
                            // A new (parent, coordinate) group starts here.
                            pos[key.0 + 1] += 1;
                            crd.push(key.1);
                            prev = Some(key);
                        }
                        *pp = crd.len() - 1;
                    }
                    // Prefix-sum the per-parent counts into segment bounds.
                    for p in 0..num_parent_positions {
                        pos[p + 1] += pos[p];
                    }
                    num_parent_positions = crd.len();
                    modes.push(ModeStorage::Compressed { pos, crd });
                }
                LevelType::Singleton => {
                    // One coordinate per parent position; positions pass
                    // through unchanged. The parent is non-unique, so each
                    // entry already owns a distinct parent position.
                    let crd: Vec<usize> = merged.iter().map(|(c, _)| c[mode]).collect();
                    modes.push(ModeStorage::Singleton { crd });
                }
            }
        }

        let mut vals = vec![0.0; num_parent_positions];
        for (e, (_, v)) in merged.iter().enumerate() {
            vals[parent_pos[e]] += v;
        }

        Tensor::from_parts(self.shape, self.format, modes, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_tensor() {
        let t = TensorBuilder::new(vec![3, 3], Format::csr()).unwrap().build();
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.pos(1).unwrap(), &[0, 0, 0, 0]);
        assert_eq!(t.crd(1).unwrap(), &[] as &[usize]);
    }

    #[test]
    fn empty_dense_tensor_is_all_zero() {
        let t = TensorBuilder::new(vec![2, 2], Format::dense(2)).unwrap().build();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.vals(), &[0.0; 4]);
    }

    #[test]
    fn out_of_order_insertion_is_sorted() {
        let mut b = TensorBuilder::new(vec![4], Format::svec()).unwrap();
        b.insert(&[3], 3.0).unwrap();
        b.insert(&[0], 0.5).unwrap();
        b.insert(&[1], 1.0).unwrap();
        let t = b.build();
        assert_eq!(t.crd(0).unwrap(), &[0, 1, 3]);
        assert_eq!(t.vals(), &[0.5, 1.0, 3.0]);
    }

    #[test]
    fn rank_mismatch_rejected() {
        let mut b = TensorBuilder::new(vec![4], Format::svec()).unwrap();
        let err = b.insert(&[1, 2], 1.0).unwrap_err();
        assert_eq!(err, TensorError::RankMismatch { expected: 1, found: 2 });
    }

    #[test]
    fn bounds_checked() {
        let mut b = TensorBuilder::new(vec![2, 4], Format::csr()).unwrap();
        let err = b.insert(&[1, 4], 1.0).unwrap_err();
        assert_eq!(err, TensorError::CoordOutOfBounds { mode: 1, coord: 4, dim: 4 });
    }

    #[test]
    fn format_rank_checked() {
        let err = TensorBuilder::new(vec![2, 2], Format::svec()).unwrap_err();
        assert_eq!(err, TensorError::FormatRankMismatch { shape_rank: 2, format_rank: 1 });
    }

    #[test]
    fn dcsr_skips_empty_rows() {
        let mut b = TensorBuilder::new(vec![4, 4], Format::dcsr()).unwrap();
        b.insert(&[0, 1], 1.0).unwrap();
        b.insert(&[3, 2], 2.0).unwrap();
        let t = b.build();
        // Only two rows are stored at the outer level.
        assert_eq!(t.crd(0).unwrap(), &[0, 3]);
        assert_eq!(t.pos(0).unwrap(), &[0, 2]);
        assert_eq!(t.pos(1).unwrap(), &[0, 1, 2]);
    }

    #[test]
    fn dense_inner_level() {
        // Row-major dense columns under compressed rows ({s, d}).
        let mut b = TensorBuilder::new(
            vec![3, 2],
            Format::new(vec![LevelType::Compressed, LevelType::Dense]),
        )
        .unwrap();
        b.insert(&[1, 1], 5.0).unwrap();
        let t = b.build();
        assert_eq!(t.crd(0).unwrap(), &[1]);
        // One stored row of 2 dense values.
        assert_eq!(t.vals(), &[0.0, 5.0]);
    }
}
