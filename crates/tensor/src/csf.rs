use crate::{Format, Result, Tensor, TensorError};

/// A 3-order tensor in compressed sparse fiber (CSF) layout — three levels of
/// `pos`/`crd` arrays over a value array, as used by the MTTKRP kernels in
/// Section VII of the paper (arrays `B1_pos/B1_crd`, `B2_pos/B2_crd`,
/// `B3_pos/B3_crd`, `B`).
///
/// # Example
///
/// ```
/// use taco_tensor::{Csf3, Format, Tensor};
///
/// let t = Tensor::from_entries(
///     vec![2, 2, 2],
///     Format::csf3(),
///     vec![(vec![0, 1, 0], 1.0), (vec![1, 0, 1], 2.0)],
/// )?;
/// let b = Csf3::from_tensor(&t)?;
/// assert_eq!(b.nnz(), 2);
/// # Ok::<(), taco_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csf3 {
    dims: [usize; 3],
    pos1: Vec<usize>,
    crd1: Vec<usize>,
    pos2: Vec<usize>,
    crd2: Vec<usize>,
    pos3: Vec<usize>,
    crd3: Vec<usize>,
    vals: Vec<f64>,
}

impl Csf3 {
    /// Builds a CSF tensor from `(i, k, l, value)` quadruples (mode order as
    /// in the paper's MTTKRP: `B_ikl`). Duplicates are summed.
    pub fn from_quads(dims: [usize; 3], quads: &[(usize, usize, usize, f64)]) -> Self {
        let entries = quads
            .iter()
            .map(|&(i, k, l, v)| (vec![i, k, l], v))
            .collect();
        let t = Tensor::from_entries(dims.to_vec(), Format::csf3(), entries)
            .expect("coordinates validated by Tensor::from_entries");
        Csf3::from_tensor(&t).expect("format is csf3 by construction")
    }

    /// Converts a `{Compressed, Compressed, Compressed}` rank-3 [`Tensor`].
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-3 CSF.
    pub fn from_tensor(t: &Tensor) -> Result<Self> {
        if t.rank() != 3 || *t.format() != Format::csf3() {
            return Err(TensorError::FormatMismatch { expected: "rank-3 (s,s,s) CSF tensor" });
        }
        Ok(Csf3 {
            dims: [t.dim(0), t.dim(1), t.dim(2)],
            pos1: t.pos(0)?.to_vec(),
            crd1: t.crd(0)?.to_vec(),
            pos2: t.pos(1)?.to_vec(),
            crd2: t.crd(1)?.to_vec(),
            pos3: t.pos(2)?.to_vec(),
            crd3: t.crd(2)?.to_vec(),
            vals: t.vals().to_vec(),
        })
    }

    /// Creates a CSF tensor from raw arrays with **no** invariant checks.
    ///
    /// This exists for fault-injection testing: it can represent corrupted
    /// storage that [`Csf3::validate`] rejects. Any other use is a bug —
    /// [`Csf3::to_tensor`] may panic on tensors built this way.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_unchecked(
        dims: [usize; 3],
        pos1: Vec<usize>,
        crd1: Vec<usize>,
        pos2: Vec<usize>,
        crd2: Vec<usize>,
        pos3: Vec<usize>,
        crd3: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        Csf3 { dims, pos1, crd1, pos2, crd2, pos3, crd3, vals }
    }

    /// Checks the CSF storage invariants at all three levels: each `pos`
    /// array starts at 0, is monotone, has one entry per parent position
    /// plus one, and ends at its `crd` length; each `crd` segment is strictly
    /// increasing and in bounds; `vals` has one entry per innermost position;
    /// and every value is finite.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidStorage`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        let levels: [(&[usize], &[usize], usize); 3] = [
            (&self.pos1, &self.crd1, self.dims[0]),
            (&self.pos2, &self.crd2, self.dims[1]),
            (&self.pos3, &self.crd3, self.dims[2]),
        ];
        let mut parent_positions = 1usize;
        for (level, (pos, crd, dim)) in levels.into_iter().enumerate() {
            crate::storage::check_pos_level(pos, crd.len(), parent_positions, level)?;
            // CSF levels are ordered and unique: strictly increasing
            // segments, coordinates in bounds.
            crate::storage::check_crd_level(pos, crd, parent_positions, dim, true, true, level)?;
            parent_positions = crd.len();
        }
        crate::storage::check_vals_level(&self.vals, parent_positions, 2)?;
        Ok(())
    }

    /// Converts back into a rank-3 CSF [`Tensor`].
    pub fn to_tensor(&self) -> Tensor {
        let mut entries = Vec::with_capacity(self.vals.len());
        for p1 in self.pos1[0]..self.pos1[1] {
            let i = self.crd1[p1];
            for p2 in self.pos2[p1]..self.pos2[p1 + 1] {
                let k = self.crd2[p2];
                for p3 in self.pos3[p2]..self.pos3[p2 + 1] {
                    entries.push((vec![i, k, self.crd3[p3]], self.vals[p3]));
                }
            }
        }
        Tensor::from_entries(self.dims.to_vec(), Format::csf3(), entries)
            .expect("entries validated by construction")
    }

    /// The three dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Level-1 position array.
    pub fn pos1(&self) -> &[usize] {
        &self.pos1
    }
    /// Level-1 coordinate array.
    pub fn crd1(&self) -> &[usize] {
        &self.crd1
    }
    /// Level-2 position array.
    pub fn pos2(&self) -> &[usize] {
        &self.pos2
    }
    /// Level-2 coordinate array.
    pub fn crd2(&self) -> &[usize] {
        &self.crd2
    }
    /// Level-3 position array.
    pub fn pos3(&self) -> &[usize] {
        &self.pos3
    }
    /// Level-3 coordinate array.
    pub fn crd3(&self) -> &[usize] {
        &self.crd3
    }
    /// Value array.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quads_round_trip() {
        let b = Csf3::from_quads(
            [3, 4, 5],
            &[(0, 1, 2, 1.0), (0, 1, 4, 2.0), (2, 0, 0, 3.0), (2, 3, 1, 4.0)],
        );
        assert_eq!(b.nnz(), 4);
        assert_eq!(b.crd1(), &[0, 2]);
        let t = b.to_tensor();
        let b2 = Csf3::from_tensor(&t).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn duplicates_summed() {
        let b = Csf3::from_quads([2, 2, 2], &[(1, 1, 1, 1.0), (1, 1, 1, 2.5)]);
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.vals(), &[3.5]);
    }

    #[test]
    fn wrong_format_rejected() {
        let t = Tensor::from_entries(vec![2, 2], Format::csr(), vec![(vec![0, 0], 1.0)]).unwrap();
        assert!(Csf3::from_tensor(&t).is_err());
    }
}
