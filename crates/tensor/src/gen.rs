//! Random tensor generators.
//!
//! The paper constructs synthetic operands "using the random matrix
//! generator in taco, which places nonzeros randomly to reach a target
//! sparsity" (Section VIII-A). This module reproduces that generator and adds
//! banded and power-law variants used to mimic the structure of the Table I
//! matrices (FEM problems are banded; web/circuit graphs have skewed row
//! degrees).

use crate::{Csf3, Csr, DenseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Sparsity structure used when placing nonzeros.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniformly random placement (taco's generator).
    Uniform,
    /// Nonzeros clustered within a band around the diagonal; the parameter is
    /// the band half-width as a fraction of the number of columns.
    Banded(f64),
    /// Row degrees follow a power law (a few very dense rows).
    PowerLaw,
}

/// Generates a sparse CSR matrix with `nnz` nonzeros placed according to
/// `pattern`. Values are uniform in `[0, 1)`. Deterministic in `seed`.
///
/// The requested `nnz` is clamped to `nrows * ncols`.
///
/// # Panics
///
/// Panics if `nrows` or `ncols` is zero.
pub fn random_csr_nnz(nrows: usize, ncols: usize, nnz: usize, pattern: Pattern, seed: u64) -> Csr {
    assert!(nrows > 0 && ncols > 0, "matrix dimensions must be nonzero");
    let nnz = nnz.min(nrows * ncols);
    let mut rng = StdRng::seed_from_u64(seed);

    // Dense Bernoulli sweep is cheaper and exact-ish for high densities.
    let density = nnz as f64 / (nrows * ncols) as f64;
    if density > 0.25 {
        let mut triplets = Vec::with_capacity(nnz + 16);
        for r in 0..nrows {
            for c in 0..ncols {
                if rng.gen::<f64>() < density {
                    triplets.push((r, c, rng.gen::<f64>()));
                }
            }
        }
        return Csr::from_triplets(nrows, ncols, &triplets);
    }

    let mut seen = HashSet::with_capacity(nnz * 2);
    let mut triplets = Vec::with_capacity(nnz);
    // Power-law row weights: weight(r) ~ 1 / (r+1), shuffled implicitly by
    // hashing the row id.
    while triplets.len() < nnz {
        let (r, c) = match pattern {
            Pattern::Uniform => (rng.gen_range(0..nrows), rng.gen_range(0..ncols)),
            Pattern::Banded(frac) => {
                let r = rng.gen_range(0..nrows);
                let half = ((ncols as f64 * frac).ceil() as usize).max(1);
                let center = (r as f64 / nrows as f64 * ncols as f64) as usize;
                let lo = center.saturating_sub(half);
                let hi = (center + half).min(ncols - 1);
                (r, rng.gen_range(lo..=hi))
            }
            Pattern::PowerLaw => {
                // Inverse-CDF sample of a Zipf-ish distribution over rows.
                let u: f64 = rng.gen_range(0.0f64..1.0);
                let r = ((nrows as f64).powf(u) - 1.0) as usize;
                (r.min(nrows - 1), rng.gen_range(0..ncols))
            }
        };
        if seen.insert((r, c)) {
            triplets.push((r, c, rng.gen::<f64>()));
        }
    }
    Csr::from_triplets(nrows, ncols, &triplets)
}

/// Generates a sparse CSR matrix with a target `density` (fraction of
/// nonzeros), like taco's random generator. Deterministic in `seed`.
pub fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> Csr {
    let nnz = ((nrows * ncols) as f64 * density).round() as usize;
    random_csr_nnz(nrows, ncols, nnz, Pattern::Uniform, seed)
}

/// Generates a dense matrix with uniform `[0, 1)` values.
pub fn random_dense(nrows: usize, ncols: usize, seed: u64) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..nrows * ncols).map(|_| rng.gen::<f64>()).collect();
    DenseTensor::from_data(vec![nrows, ncols], data)
}

/// Generates a sparse 3-tensor in CSF with `nnz` uniformly placed nonzeros.
pub fn random_csf3(dims: [usize; 3], nnz: usize, seed: u64) -> Csf3 {
    let cap = dims[0]
        .saturating_mul(dims[1])
        .saturating_mul(dims[2]);
    let nnz = nnz.min(cap);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(nnz * 2);
    let mut quads = Vec::with_capacity(nnz);
    while quads.len() < nnz {
        let c = (rng.gen_range(0..dims[0]), rng.gen_range(0..dims[1]), rng.gen_range(0..dims[2]));
        if seen.insert(c) {
            quads.push((c.0, c.1, c.2, rng.gen::<f64>()));
        }
    }
    Csf3::from_quads(dims, &quads)
}

/// Generates a sparse 3-tensor whose nonzeros cluster into fibers: about
/// `nnz / fiber_len` distinct `(i, k)` fibers, each holding `~fiber_len`
/// entries along the last mode.
///
/// Real tensors differ sharply in fiber density — NELL-2's long fibers are
/// what make loop-invariant hoisting (the first MTTKRP workspace
/// transformation) profitable, while Facebook's near-singleton fibers make
/// it a loss (paper Section VIII-C).
pub fn random_csf3_fibered(dims: [usize; 3], nnz: usize, fiber_len: f64, seed: u64) -> Csf3 {
    assert!(fiber_len >= 1.0, "fibers hold at least one entry");
    let cap = dims[0].saturating_mul(dims[1]).saturating_mul(dims[2]);
    let nnz = nnz.min(cap);
    let mut rng = StdRng::seed_from_u64(seed);
    // Enough fibers that the target nnz fits (each fiber holds at most
    // dims[2] entries).
    let nfibers = ((nnz as f64 / fiber_len).ceil() as usize)
        .max(nnz.div_ceil(dims[2].max(1)))
        .clamp(1, dims[0].saturating_mul(dims[1]).max(1));
    let mut fibers = HashSet::with_capacity(nfibers * 2);
    while fibers.len() < nfibers {
        fibers.insert((rng.gen_range(0..dims[0]), rng.gen_range(0..dims[1])));
    }
    let fibers: Vec<(usize, usize)> = fibers.into_iter().collect();
    let mut seen = HashSet::with_capacity(nnz * 2);
    let mut quads = Vec::with_capacity(nnz);
    while quads.len() < nnz {
        let (i, k) = fibers[rng.gen_range(0..fibers.len())];
        let l = rng.gen_range(0..dims[2]);
        if seen.insert((i, k, l)) {
            quads.push((i, k, l, rng.gen::<f64>()));
        }
    }
    Csf3::from_quads(dims, &quads)
}

/// Generates a sparse vector as a single-row CSR (convenience for tests).
pub fn random_svec(len: usize, density: f64, seed: u64) -> Vec<(usize, f64)> {
    let nnz = ((len as f64) * density).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(nnz);
    while out.len() < nnz.min(len) {
        let i = rng.gen_range(0..len);
        if seen.insert(i) {
            out.push((i, rng.gen::<f64>()));
        }
    }
    out.sort_by_key(|e| e.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = random_csr(50, 50, 0.05, 42);
        let b = random_csr(50, 50, 0.05, 42);
        let c = random_csr(50, 50, 0.05, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hits_target_nnz() {
        let a = random_csr_nnz(100, 100, 500, Pattern::Uniform, 1);
        assert_eq!(a.nnz(), 500);
        assert!(a.is_sorted());
    }

    #[test]
    fn nnz_clamped_to_capacity() {
        let a = random_csr_nnz(4, 4, 100, Pattern::Uniform, 1);
        assert_eq!(a.nnz(), 16);
    }

    #[test]
    fn banded_stays_in_band() {
        let a = random_csr_nnz(100, 100, 400, Pattern::Banded(0.05), 7);
        for r in 0..100 {
            let (cols, _) = a.row(r);
            for &c in cols {
                assert!((c as i64 - r as i64).unsigned_abs() <= 12, "row {r} col {c} outside band");
            }
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let a = random_csr_nnz(1000, 100, 5000, Pattern::PowerLaw, 3);
        // The first rows (log-uniform head) should hold far more than the last.
        let head: usize = (0..100).map(|r| a.row(r).0.len()).sum();
        let tail: usize = (900..1000).map(|r| a.row(r).0.len()).sum();
        assert!(head > 4 * tail, "expected skew: head={head} tail={tail}");
    }

    #[test]
    fn csf3_generator() {
        let t = random_csf3([20, 30, 40], 200, 5);
        assert_eq!(t.nnz(), 200);
        assert_eq!(t.dims(), [20, 30, 40]);
    }

    #[test]
    fn dense_generator_shape() {
        let d = random_dense(3, 5, 9);
        assert_eq!(d.shape(), &[3, 5]);
        assert!(d.data().iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn svec_sorted_unique() {
        let v = random_svec(100, 0.2, 11);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
