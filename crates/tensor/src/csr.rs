use crate::{Format, Result, Tensor, TensorError};

/// A compressed sparse row matrix in the exact array layout of Figure 1b of
/// the paper (`pos`, `crd`, `vals`).
///
/// This flat representation is what the hand-written baseline kernels
/// (Gustavson SpGEMM, merge-based addition, MTTKRP, ...) operate on; it
/// converts losslessly to and from a `{Dense, Compressed}` [`Tensor`]. It is
/// a *view* over the same level-based arrays the rank-generic [`Tensor`]
/// stores — [`Csr::validate`] delegates to the shared per-level checks, so
/// the two representations enforce identical invariants.
///
/// Rows may hold their column entries *sorted* (like Eigen's products) or
/// *unsorted* (like MKL's `mkl_sparse_spmm`); see [`Csr::is_sorted`] and
/// [`Csr::sort_rows`].
///
/// # Example
///
/// ```
/// use taco_tensor::Csr;
///
/// let a = Csr::from_triplets(2, 3, &[(0, 2, 1.0), (1, 0, 2.0), (1, 1, 3.0)]);
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.row(1), (&[0, 1][..], &[2.0, 3.0][..]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    pos: Vec<usize>,
    crd: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Creates a CSR matrix from raw arrays.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths are inconsistent (`pos.len() != nrows+1`,
    /// `crd.len() != vals.len()`, `pos` not monotone, or
    /// `*pos.last() != crd.len()`).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        pos: Vec<usize>,
        crd: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(pos.len(), nrows + 1, "pos must have nrows+1 entries");
        assert_eq!(crd.len(), vals.len(), "crd and vals must have equal length");
        assert!(pos.windows(2).all(|w| w[0] <= w[1]), "pos must be monotone");
        assert_eq!(*pos.last().expect("pos nonempty"), crd.len(), "pos end must equal nnz");
        assert!(crd.iter().all(|c| *c < ncols), "column coordinate out of bounds");
        Csr { nrows, ncols, pos, crd, vals }
    }

    /// Creates a CSR matrix from raw arrays with **no** invariant checks.
    ///
    /// This exists for fault-injection testing: it can represent corrupted
    /// storage that [`Csr::validate`] rejects and [`Csr::from_raw`] would
    /// panic on. Any other use is a bug — accessors like [`Csr::row`] may
    /// panic on matrices built this way.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        pos: Vec<usize>,
        crd: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        Csr { nrows, ncols, pos, crd, vals }
    }

    /// Checks the CSR storage invariants: `pos` has `nrows + 1` entries,
    /// starts at 0, is monotone and ends at `crd.len()`; `crd` and `vals`
    /// have equal length; every column coordinate is in bounds; and every
    /// value is finite. Row entries may be unsorted (MKL-style results are
    /// legal), so sortedness is *not* required — see [`Csr::is_sorted`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidStorage`] describing the first violated
    /// invariant (level 0 for `pos` faults, level 1 for `crd`/`vals` faults).
    pub fn validate(&self) -> Result<()> {
        crate::storage::check_pos_level(&self.pos, self.crd.len(), self.nrows, 0)?;
        // Rows may be unsorted (ordered = false) and may repeat columns
        // (unique = false); only bounds are enforced.
        crate::storage::check_crd_level(
            &self.pos, &self.crd, self.nrows, self.ncols, false, false, 1,
        )?;
        crate::storage::check_vals_level(&self.vals, self.crd.len(), 1)?;
        Ok(())
    }

    /// Creates an empty (all-zero) matrix.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr { nrows, ncols, pos: vec![0; nrows + 1], crd: Vec::new(), vals: Vec::new() }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicates are
    /// summed and rows end up sorted.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut t: Vec<_> = triplets.to_vec();
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut pos = vec![0usize; nrows + 1];
        let mut crd = Vec::with_capacity(t.len());
        let mut vals: Vec<f64> = Vec::with_capacity(t.len());
        for &(r, c, v) in &t {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
            if crd.len() > pos[r] && *crd.last().unwrap() == c && pos[r + 1] == crd.len() {
                *vals.last_mut().unwrap() += v;
            } else {
                crd.push(c);
                vals.push(v);
                pos[r + 1] = crd.len();
            }
        }
        // Fill gaps: pos[r+1] currently only set for rows with entries.
        for r in 0..nrows {
            if pos[r + 1] < pos[r] {
                pos[r + 1] = pos[r];
            }
        }
        Csr { nrows, ncols, pos, crd, vals }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The row-segment position array (`B_pos` in the paper).
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The column coordinate array (`B_crd` in the paper).
    pub fn crd(&self) -> &[usize] {
        &self.crd
    }

    /// The value array (`B` in the paper).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// The column coordinates and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.pos[i];
        let hi = self.pos[i + 1];
        (&self.crd[lo..hi], &self.vals[lo..hi])
    }

    /// True if every row's column coordinates are strictly increasing.
    pub fn is_sorted(&self) -> bool {
        (0..self.nrows).all(|i| {
            let (c, _) = self.row(i);
            c.windows(2).all(|w| w[0] < w[1])
        })
    }

    /// Sorts every row's entries by column coordinate (stable on values).
    pub fn sort_rows(&mut self) {
        for i in 0..self.nrows {
            let lo = self.pos[i];
            let hi = self.pos[i + 1];
            let mut idx: Vec<usize> = (lo..hi).collect();
            idx.sort_by_key(|&q| self.crd[q]);
            let crd: Vec<usize> = idx.iter().map(|&q| self.crd[q]).collect();
            let vals: Vec<f64> = idx.iter().map(|&q| self.vals[q]).collect();
            self.crd[lo..hi].copy_from_slice(&crd);
            self.vals[lo..hi].copy_from_slice(&vals);
        }
    }

    /// Returns the transposed matrix (CSC of `self`, stored as CSR of the
    /// transpose), with sorted rows.
    pub fn transpose(&self) -> Csr {
        // Counting sort by column: O(nnz + ncols).
        let mut pos = vec![0usize; self.ncols + 1];
        for &c in &self.crd {
            pos[c + 1] += 1;
        }
        for c in 0..self.ncols {
            pos[c + 1] += pos[c];
        }
        let mut crd = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut next = pos.clone();
        for i in 0..self.nrows {
            for q in self.pos[i]..self.pos[i + 1] {
                let c = self.crd[q];
                crd[next[c]] = i;
                vals[next[c]] = self.vals[q];
                next[c] += 1;
            }
        }
        Csr { nrows: self.ncols, ncols: self.nrows, pos, crd, vals }
    }

    /// Converts a CSR [`Tensor`] into this flat representation.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2 `{Dense, Compressed}`.
    pub fn from_tensor(t: &Tensor) -> Result<Self> {
        if t.rank() != 2 || *t.format() != Format::csr() {
            return Err(TensorError::FormatMismatch { expected: "rank-2 (d,s) CSR tensor" });
        }
        Ok(Csr {
            nrows: t.dim(0),
            ncols: t.dim(1),
            pos: t.pos(1)?.to_vec(),
            crd: t.crd(1)?.to_vec(),
            vals: t.vals().to_vec(),
        })
    }

    /// Converts into a CSR [`Tensor`]. Rows are sorted first if needed.
    pub fn to_tensor(&self) -> Tensor {
        let mut m = self.clone();
        if !m.is_sorted() {
            m.sort_rows();
        }
        let mut b = TensorBuilderProxy::new(m.nrows, m.ncols);
        for i in 0..m.nrows {
            let (cs, vs) = m.row(i);
            for (c, v) in cs.iter().zip(vs) {
                b.push(i, *c, *v);
            }
        }
        b.finish()
    }

    /// Dense `nrows * ncols` row-major image of the matrix (duplicates
    /// summed).
    pub fn to_dense_vec(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows * self.ncols];
        for i in 0..self.nrows {
            let (cs, vs) = self.row(i);
            for (c, v) in cs.iter().zip(vs) {
                out[i * self.ncols + c] += *v;
            }
        }
        out
    }

    /// True if the two matrices represent the same values up to `tol`
    /// (entry order within rows does not matter; duplicates are summed).
    pub fn approx_eq(&self, other: &Csr, tol: f64) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        let a = self.to_dense_vec();
        let b = other.to_dense_vec();
        a.iter().zip(&b).all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }
}

/// Small helper that assembles a CSR tensor row by row (entries must arrive
/// in lexicographic order).
struct TensorBuilderProxy {
    nrows: usize,
    ncols: usize,
    entries: Vec<(Vec<usize>, f64)>,
}

impl TensorBuilderProxy {
    fn new(nrows: usize, ncols: usize) -> Self {
        TensorBuilderProxy { nrows, ncols, entries: Vec::new() }
    }
    fn push(&mut self, r: usize, c: usize, v: f64) {
        self.entries.push((vec![r, c], v));
    }
    fn finish(self) -> Tensor {
        Tensor::from_entries(vec![self.nrows, self.ncols], Format::csr(), self.entries)
            .expect("entries validated by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sums_duplicates() {
        let a = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 4.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.row(0), (&[1][..], &[3.0][..]));
    }

    #[test]
    fn empty_rows_have_empty_segments() {
        let a = Csr::from_triplets(4, 4, &[(2, 0, 1.0)]);
        assert_eq!(a.pos(), &[0, 0, 0, 1, 1]);
        assert_eq!(a.row(0).0, &[] as &[usize]);
        assert_eq!(a.row(2).0, &[0]);
    }

    #[test]
    fn sortedness() {
        let mut a = Csr::from_raw(1, 4, vec![0, 3], vec![2, 0, 3], vec![1.0, 2.0, 3.0]);
        assert!(!a.is_sorted());
        a.sort_rows();
        assert!(a.is_sorted());
        assert_eq!(a.crd(), &[0, 2, 3]);
        assert_eq!(a.vals(), &[2.0, 1.0, 3.0]);
    }

    #[test]
    fn tensor_round_trip() {
        let t = Tensor::from_entries(
            vec![3, 4],
            Format::csr(),
            vec![(vec![0, 3], 1.0), (vec![2, 0], 2.0)],
        )
        .unwrap();
        let m = Csr::from_tensor(&t).unwrap();
        assert_eq!(m.nnz(), 2);
        let t2 = m.to_tensor();
        assert_eq!(t, t2);
    }

    #[test]
    fn from_tensor_rejects_wrong_format() {
        let t = Tensor::from_entries(vec![3, 4], Format::dcsr(), vec![(vec![0, 3], 1.0)]).unwrap();
        assert!(Csr::from_tensor(&t).is_err());
    }

    #[test]
    fn approx_eq_ignores_row_order() {
        let a = Csr::from_raw(1, 4, vec![0, 2], vec![3, 1], vec![1.0, 2.0], );
        let b = Csr::from_raw(1, 4, vec![0, 2], vec![1, 3], vec![2.0, 1.0]);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    #[should_panic(expected = "pos must be monotone")]
    fn from_raw_validates_pos() {
        Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = crate::gen::random_csr(13, 17, 0.3, 99);
        let t = a.transpose();
        assert_eq!(t.nrows(), 17);
        assert_eq!(t.ncols(), 13);
        assert!(t.is_sorted());
        assert!(t.transpose().approx_eq(&a, 0.0));
        // Spot-check one entry.
        let ad = a.to_dense_vec();
        let td = t.to_dense_vec();
        for i in 0..13 {
            for j in 0..17 {
                assert_eq!(ad[i * 17 + j], td[j * 13 + i]);
            }
        }
    }

    #[test]
    fn transpose_empty() {
        let a = Csr::zero(3, 5);
        let t = a.transpose();
        assert_eq!((t.nrows(), t.ncols(), t.nnz()), (5, 3, 0));
    }
}
