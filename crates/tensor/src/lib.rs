//! Sparse tensor storage substrate for the `taco-workspaces` compiler.
//!
//! This crate implements the tensor storage machinery that the CGO 2019 paper
//! *Tensor Algebra Compilation with Workspaces* builds on (its prior work,
//! taco \[4\] and the format abstraction \[5\]): tensors are stored level by
//! level, where each level is a [`LevelType`] — [`LevelType::Dense`] (every
//! coordinate stored), [`LevelType::Compressed`] (only nonzero coordinates,
//! via `pos`/`crd` arrays as in Figure 1b of the paper),
//! [`LevelType::Singleton`] (one coordinate per parent position, the COO
//! building block), or [`LevelType::Hashed`] (`pos`/`crd` with unordered
//! segments). A [`Format`] additionally carries a *mode order* mapping
//! storage levels to tensor modes, which yields column-major layouts.
//!
//! Composing per-level types yields the classic sparse formats:
//!
//! * `{Dense, Compressed}` — CSR (compressed sparse row),
//! * `{Dense, Compressed}` with order `[1, 0]` — CSC,
//! * `{Compressed, Compressed}` — DCSR (order `[1, 0]` — DCSC),
//! * `{Compressed, Singleton, ...}` — COO (parallel coordinate arrays),
//! * `{Dense, Compressed, Dense, Dense}` over a blocked shape — BCSR,
//! * `{Compressed, Compressed, Compressed}` — CSF for 3-tensors,
//! * `{Dense, Dense, ...}` — ordinary dense arrays,
//! * `{Compressed}` — a sparse vector; `{Dense}` — a dense vector.
//!
//! [`Tensor::convert`] repacks any tensor into any realizable format, and
//! [`Tensor::to_blocked`]/[`Tensor::from_blocked`] move between flat and
//! blocked matrices.
//!
//! # Example
//!
//! ```
//! use taco_tensor::{Format, Tensor};
//!
//! // The 4x4 matrix from Figure 1a of the paper.
//! let b = Tensor::from_entries(
//!     vec![4, 4],
//!     Format::csr(),
//!     vec![
//!         (vec![0, 1], 1.0), // a
//!         (vec![0, 3], 2.0), // b
//!         (vec![2, 2], 3.0), // c
//!         (vec![3, 0], 4.0), // d
//!         (vec![3, 1], 5.0), // e
//!         (vec![3, 2], 6.0), // f
//!     ],
//! )
//! .unwrap();
//! assert_eq!(b.nnz(), 6);
//! assert_eq!(b.to_dense().get(&[3, 1]), 5.0);
//! ```

#![warn(missing_docs)]

mod builder;
pub mod corrupt;
mod csf;
mod csr;
pub mod datasets;
mod dense;
mod error;
mod format;
pub mod gen;
pub mod io;
mod storage;

pub use builder::TensorBuilder;
pub use csf::Csf3;
pub use csr::Csr;
pub use dense::DenseTensor;
pub use error::TensorError;
pub use format::{Format, LevelType, ModeFormat};
pub use storage::{ModeStorage, Tensor};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
