use std::error::Error;
use std::fmt;

/// Errors produced while constructing or converting tensors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A coordinate tuple had the wrong number of modes.
    RankMismatch {
        /// Number of modes the tensor has.
        expected: usize,
        /// Number of coordinates supplied.
        found: usize,
    },
    /// A coordinate was outside the tensor dimensions.
    CoordOutOfBounds {
        /// Mode in which the coordinate was out of bounds.
        mode: usize,
        /// The offending coordinate.
        coord: usize,
        /// The dimension of that mode.
        dim: usize,
    },
    /// The format rank does not match the shape rank.
    FormatRankMismatch {
        /// Rank of the shape.
        shape_rank: usize,
        /// Rank of the format.
        format_rank: usize,
    },
    /// A tensor had an unexpected format for the requested conversion.
    FormatMismatch {
        /// Human-readable description of what was expected.
        expected: &'static str,
    },
    /// A zero-dimensional or zero-sized shape where one is not allowed.
    EmptyShape,
    /// A level index past the end of the format (checked accessor at bind
    /// time).
    LevelOutOfBounds {
        /// The requested level.
        level: usize,
        /// Number of levels the format has.
        rank: usize,
    },
    /// The format itself is malformed: a bad mode-order permutation or an
    /// unrealizable level-type chain (e.g. a singleton level under a dense
    /// parent).
    InvalidFormat {
        /// Description of the problem.
        detail: String,
    },
    /// Storage arrays violate a format invariant (corrupted or hand-built
    /// data): non-monotone `pos`, unsorted or out-of-bounds `crd`, array
    /// length disagreement, or non-finite values.
    InvalidStorage {
        /// Level (mode index) at which the violation was detected.
        level: usize,
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::RankMismatch { expected, found } => {
                write!(f, "coordinate rank mismatch: expected {expected}, found {found}")
            }
            TensorError::CoordOutOfBounds { mode, coord, dim } => {
                write!(f, "coordinate {coord} out of bounds for mode {mode} with dimension {dim}")
            }
            TensorError::FormatRankMismatch { shape_rank, format_rank } => {
                write!(
                    f,
                    "format rank {format_rank} does not match shape rank {shape_rank}"
                )
            }
            TensorError::FormatMismatch { expected } => {
                write!(f, "tensor format mismatch: expected {expected}")
            }
            TensorError::EmptyShape => write!(f, "tensor shape must have at least one mode"),
            TensorError::LevelOutOfBounds { level, rank } => {
                write!(f, "level {level} out of bounds for a rank-{rank} format")
            }
            TensorError::InvalidFormat { detail } => {
                write!(f, "invalid tensor format: {detail}")
            }
            TensorError::InvalidStorage { level, detail } => {
                write!(f, "invalid tensor storage at level {level}: {detail}")
            }
        }
    }
}

impl Error for TensorError {}
