use crate::{DenseTensor, Format, LevelType, Result, TensorBuilder, TensorError};

/// Storage of a single tensor level.
///
/// A tensor of rank *k* is stored as a hierarchy of *k* levels. Each level
/// stores, for every *position* of its parent level, the coordinates present
/// in the mode it holds (see [`Format::mode_order`]). A
/// [`ModeStorage::Dense`] level stores all `0..dim` coordinates implicitly; a
/// [`ModeStorage::Compressed`] level stores a `pos`/`crd` pair exactly as in
/// Figure 1b of the paper: the children of parent position `p` live at
/// positions `pos[p]..pos[p+1]`, and `crd[q]` is the coordinate at position
/// `q`. A [`ModeStorage::Singleton`] level stores one coordinate per parent
/// position with no `pos` array — the child position *is* the parent
/// position. Hashed levels ([`LevelType::Hashed`]) reuse the
/// `pos`/`crd` layout with unordered segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeStorage {
    /// Dense level: all coordinates in `0..dim` exist at every parent
    /// position. Child position = `parent_pos * dim + coord`.
    Dense {
        /// Dimension of this level's mode.
        dim: usize,
    },
    /// Compressed (or hashed) level: explicit segment boundaries and
    /// coordinates.
    Compressed {
        /// `pos[p]..pos[p+1]` is the position range of parent position `p`.
        pos: Vec<usize>,
        /// `crd[q]` is the coordinate stored at position `q`.
        crd: Vec<usize>,
    },
    /// Singleton level: exactly one coordinate per parent position. The
    /// child position equals the parent position, so no `pos` array exists.
    Singleton {
        /// `crd[p]` is the coordinate at (parent) position `p`.
        crd: Vec<usize>,
    },
}

impl ModeStorage {
    /// Number of positions (stored entries) at this level given the parent
    /// level had `parent_positions` positions.
    pub fn num_positions(&self, parent_positions: usize) -> usize {
        match self {
            ModeStorage::Dense { dim } => parent_positions * dim,
            ModeStorage::Compressed { pos, .. } => *pos.last().unwrap_or(&0),
            ModeStorage::Singleton { crd } => crd.len(),
        }
    }
}

/// Per-level `pos` invariants shared by every `pos`/`crd` representation
/// (the generic [`Tensor`], the flat [`crate::Csr`] and [`crate::Csf3`]
/// views): starts at 0, one entry per parent position plus one, monotone,
/// ends at `crd_len`.
pub(crate) fn check_pos_level(
    pos: &[usize],
    crd_len: usize,
    parent_positions: usize,
    level: usize,
) -> Result<()> {
    let bad = |detail: String| Err(TensorError::InvalidStorage { level, detail });
    if pos.len() != parent_positions + 1 {
        return bad(format!(
            "pos has {} entries, expected {} (parent positions + 1)",
            pos.len(),
            parent_positions + 1
        ));
    }
    if pos[0] != 0 {
        return bad(format!("pos must start at 0, found {}", pos[0]));
    }
    if let Some(w) = pos.windows(2).find(|w| w[0] > w[1]) {
        return bad(format!("pos is not monotone: segment bound {} follows {}", w[1], w[0]));
    }
    let end = *pos.last().expect("pos nonempty: checked length above");
    if end != crd_len {
        return bad(format!("pos ends at {end} but crd has {crd_len} entries"));
    }
    Ok(())
}

/// Per-level `crd` segment invariants, parameterized by the level's
/// properties: `ordered` requires sorted segments (strictly increasing when
/// also `unique`, non-decreasing otherwise); `unique` without order checks
/// duplicate-freedom; bounds are always checked.
pub(crate) fn check_crd_level(
    pos: &[usize],
    crd: &[usize],
    parent_positions: usize,
    dim: usize,
    ordered: bool,
    unique: bool,
    level: usize,
) -> Result<()> {
    let bad = |detail: String| Err(TensorError::InvalidStorage { level, detail });
    for p in 0..parent_positions {
        let seg = &crd[pos[p]..pos[p + 1]];
        if ordered {
            let violation = seg.windows(2).find(|w| if unique { w[0] >= w[1] } else { w[0] > w[1] });
            if let Some(w) = violation {
                let want = if unique { "strictly increasing" } else { "non-decreasing" };
                return bad(format!(
                    "crd segment of parent position {p} is not {want} ({} then {})",
                    w[0], w[1]
                ));
            }
        } else if unique && seg.len() > 1 {
            let mut sorted = seg.to_vec();
            sorted.sort_unstable();
            if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
                return bad(format!(
                    "crd segment of parent position {p} repeats coordinate {}",
                    w[0]
                ));
            }
        }
        if let Some(c) = seg.iter().find(|c| **c >= dim) {
            return bad(format!("coordinate {c} out of bounds for dimension {dim}"));
        }
    }
    Ok(())
}

/// Value-array invariants: one value per innermost position, all finite.
pub(crate) fn check_vals_level(vals: &[f64], positions: usize, level: usize) -> Result<()> {
    let bad = |detail: String| Err(TensorError::InvalidStorage { level, detail });
    if vals.len() != positions {
        return bad(format!(
            "vals has {} entries, expected one per innermost position ({positions})",
            vals.len()
        ));
    }
    if let Some(q) = vals.iter().position(|v| !v.is_finite()) {
        return bad(format!("non-finite value {} at position {q}", vals[q]));
    }
    Ok(())
}

/// A sparse (or dense) tensor stored level by level.
///
/// The value array stores one `f64` per position of the innermost level, in
/// position order — exactly the layout taco generates code against.
///
/// Construct tensors with [`Tensor::from_entries`], [`TensorBuilder`], or
/// [`Tensor::from_dense`]; convert between formats with [`Tensor::convert`]
/// and [`Tensor::to_blocked`]/[`Tensor::from_blocked`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    format: Format,
    modes: Vec<ModeStorage>,
    vals: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor directly from its level storage and values.
    ///
    /// This is the raw constructor used by builders and kernel output
    /// extraction; most callers want [`Tensor::from_entries`].
    ///
    /// # Panics
    ///
    /// Panics if the number of levels does not match the shape/format rank,
    /// or if `vals` does not have one value per innermost position.
    pub fn from_parts(
        shape: Vec<usize>,
        format: Format,
        modes: Vec<ModeStorage>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(shape.len(), format.rank(), "shape/format rank mismatch");
        assert_eq!(shape.len(), modes.len(), "shape/levels rank mismatch");
        let mut positions = 1;
        for m in &modes {
            positions = m.num_positions(positions);
        }
        assert_eq!(positions, vals.len(), "vals length must match innermost positions");
        Tensor { shape, format, modes, vals }
    }

    /// Creates a tensor from its level storage and values with **no**
    /// invariant checks.
    ///
    /// This exists for fault-injection testing (see [`crate::corrupt`]): it
    /// can represent corrupted storage that [`Tensor::validate`] rejects and
    /// [`Tensor::from_parts`] would refuse to build. Any other use is a bug —
    /// methods like [`Tensor::entries`] may panic on tensors built this way.
    pub fn from_parts_unchecked(
        shape: Vec<usize>,
        format: Format,
        modes: Vec<ModeStorage>,
        vals: Vec<f64>,
    ) -> Self {
        Tensor { shape, format, modes, vals }
    }

    /// Decomposes the tensor into `(shape, format, modes, vals)`.
    pub fn into_parts(self) -> (Vec<usize>, Format, Vec<ModeStorage>, Vec<f64>) {
        (self.shape, self.format, self.modes, self.vals)
    }

    /// Checks every storage invariant the compiled kernels rely on, level by
    /// level according to each level's [`LevelType`] properties:
    ///
    /// * shape, format and level storage agree in rank, the format's
    ///   level-type chain is realizable, and each level's storage variant
    ///   matches its declared type;
    /// * each `pos`-array level's `pos` starts at 0, is monotonically
    ///   non-decreasing, has one entry per parent position plus one, and ends
    ///   exactly at `crd.len()`;
    /// * ordered segments are sorted (strictly increasing for unique levels,
    ///   non-decreasing for the non-unique levels above singletons), hashed
    ///   segments are duplicate-free, and all coordinates are in bounds;
    /// * singleton levels store exactly one coordinate per parent position,
    ///   and formats containing singleton chains enumerate strictly
    ///   increasing coordinate tuples (no hidden duplicate components);
    /// * `vals` holds exactly one value per innermost position, and every
    ///   value is finite.
    ///
    /// Binding a tensor into the execution pipeline runs this check first, so
    /// corrupted operands fail with a typed error before any kernel touches
    /// their arrays.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidStorage`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        let bad = |level: usize, detail: String| {
            Err(TensorError::InvalidStorage { level, detail })
        };
        if self.shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        if self.format.rank() != self.shape.len() || self.modes.len() != self.shape.len() {
            return bad(
                0,
                format!(
                    "rank disagreement: shape has {} modes, format {}, storage {}",
                    self.shape.len(),
                    self.format.rank(),
                    self.modes.len()
                ),
            );
        }
        self.format.check_level_types()?;
        let mut parent_positions = 1usize;
        for (level, mode) in self.modes.iter().enumerate() {
            let lt = self.format.mode(level);
            let dim = self.shape[self.format.mode_of_level(level)];
            match (mode, lt) {
                (ModeStorage::Dense { dim: stored }, LevelType::Dense) => {
                    if *stored != dim {
                        return bad(
                            level,
                            format!("dense level stores dimension {stored}, shape says {dim}"),
                        );
                    }
                    parent_positions = match parent_positions.checked_mul(dim) {
                        Some(p) => p,
                        None => {
                            return bad(level, format!("dense level size overflows ({dim} wide)"))
                        }
                    };
                }
                (
                    ModeStorage::Compressed { pos, crd },
                    LevelType::Compressed | LevelType::Hashed,
                ) => {
                    check_pos_level(pos, crd.len(), parent_positions, level)?;
                    check_crd_level(
                        pos,
                        crd,
                        parent_positions,
                        dim,
                        lt.is_ordered(),
                        // Hashed levels are always unique; compressed levels
                        // are unique unless a singleton level follows.
                        lt == LevelType::Hashed || self.format.level_unique(level),
                        level,
                    )?;
                    parent_positions = crd.len();
                }
                (ModeStorage::Singleton { crd }, LevelType::Singleton) => {
                    if crd.len() != parent_positions {
                        return bad(
                            level,
                            format!(
                                "singleton crd has {} entries, expected one per parent \
                                 position ({parent_positions})",
                                crd.len()
                            ),
                        );
                    }
                    if let Some(c) = crd.iter().find(|c| **c >= dim) {
                        return bad(
                            level,
                            format!("coordinate {c} out of bounds for dimension {dim}"),
                        );
                    }
                    // Position pass-through: the child count equals the
                    // parent count.
                }
                (stored, declared) => {
                    let kind = match stored {
                        ModeStorage::Dense { .. } => "dense",
                        ModeStorage::Compressed { .. } => "compressed",
                        ModeStorage::Singleton { .. } => "singleton",
                    };
                    return bad(
                        level,
                        format!("storage is {kind} but the format declares {declared}"),
                    );
                }
            }
        }
        check_vals_level(&self.vals, parent_positions, self.rank() - 1)?;
        if self.format.has_singleton() && !self.format.has_hashed() {
            // Singleton chains hide per-component coordinates in non-unique
            // levels; confirm the stored tuples are strictly increasing in
            // storage order so no duplicate component can slip through.
            let mut walked = Vec::with_capacity(self.vals.len());
            let mut coord = vec![0usize; self.rank()];
            self.walk(0, 0, &mut coord, &mut walked);
            let key = |coord: &[usize]| -> Vec<usize> {
                self.format.mode_order().iter().map(|&m| coord[m]).collect()
            };
            if let Some(w) = walked.windows(2).find(|w| key(&w[0].0) >= key(&w[1].0)) {
                return bad(
                    self.rank() - 1,
                    format!(
                        "components are not strictly increasing in storage order \
                         ({:?} then {:?})",
                        w[0].0, w[1].0
                    ),
                );
            }
        }
        Ok(())
    }

    /// Builds a tensor from `(coordinate, value)` entries.
    ///
    /// Duplicate coordinates are summed; explicit zeros are kept (they are
    /// stored nonzeros, as in taco).
    ///
    /// # Errors
    ///
    /// Returns an error if the format rank does not match the shape, or any
    /// entry is out of bounds.
    pub fn from_entries(
        shape: Vec<usize>,
        format: Format,
        entries: Vec<(Vec<usize>, f64)>,
    ) -> Result<Self> {
        let mut b = TensorBuilder::new(shape, format)?;
        for (coord, val) in entries {
            b.insert(&coord, val)?;
        }
        Ok(b.build())
    }

    /// Converts a dense tensor into this format, keeping only nonzeros in
    /// compressed levels.
    pub fn from_dense(dense: &DenseTensor, format: Format) -> Result<Self> {
        let mut b = TensorBuilder::new(dense.shape().to_vec(), format.clone())?;
        if format.is_all_dense() && format.is_identity_order() {
            // Preserve every component, including zeros.
            return Ok(Tensor::from_parts(
                dense.shape().to_vec(),
                format,
                dense.shape().iter().map(|d| ModeStorage::Dense { dim: *d }).collect(),
                dense.data().to_vec(),
            ));
        }
        for (coord, val) in dense.iter_nonzeros() {
            b.insert(&coord, val)?;
        }
        Ok(b.build())
    }

    /// Repacks this tensor into another format (the `pack`/`convert` kernel
    /// of the format-abstraction paper): enumerate stored components, then
    /// rebuild the level storage for the target format. Values are preserved
    /// exactly — only the storage layout changes.
    ///
    /// # Errors
    ///
    /// Returns an error if the target format's rank does not match or its
    /// level-type chain is unrealizable.
    pub fn convert(&self, format: Format) -> Result<Tensor> {
        if format == *self.format() {
            return Ok(self.clone());
        }
        Tensor::from_entries(self.shape.clone(), format, self.entries())
    }

    /// Blocks a rank-2 tensor into `br x bc` tiles, producing the rank-4
    /// blocked tensor that [`Format::bcsr`] stores: mode order
    /// `(block row, block col, row-in-block, col-in-block)` with shape
    /// `[m/br, n/bc, br, bc]`. Stored blocks are dense tiles — every
    /// component of a tile containing at least one nonzero is materialized.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank 2 with dimensions
    /// divisible by the block size.
    pub fn to_blocked(&self, br: usize, bc: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::FormatMismatch { expected: "rank-2 tensor for blocking" });
        }
        if br == 0 || bc == 0 || !self.shape[0].is_multiple_of(br) || !self.shape[1].is_multiple_of(bc) {
            return Err(TensorError::InvalidFormat {
                detail: format!(
                    "block size {br}x{bc} does not divide shape {}x{}",
                    self.shape[0], self.shape[1]
                ),
            });
        }
        let bshape = vec![self.shape[0] / br, self.shape[1] / bc, br, bc];
        let entries = self
            .entries()
            .into_iter()
            .map(|(c, v)| (vec![c[0] / br, c[1] / bc, c[0] % br, c[1] % bc], v))
            .collect();
        Tensor::from_entries(bshape, Format::bcsr(), entries)
    }

    /// Flattens a rank-4 blocked tensor (see [`Tensor::to_blocked`]) back to
    /// a rank-2 tensor in the given format, dropping the explicit zeros that
    /// padded partially-filled blocks.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank 4.
    pub fn from_blocked(&self, format: Format) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::FormatMismatch { expected: "rank-4 blocked tensor" });
        }
        let (br, bc) = (self.shape[2], self.shape[3]);
        let shape = vec![self.shape[0] * br, self.shape[1] * bc];
        let entries = self
            .entries()
            .into_iter()
            .filter(|(_, v)| *v != 0.0)
            .map(|(c, v)| (vec![c[0] * br + c[2], c[1] * bc + c[3]], v))
            .collect();
        Tensor::from_entries(shape, format, entries)
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The dimension of mode `level`.
    pub fn dim(&self, level: usize) -> usize {
        self.shape[level]
    }

    /// The dimension of the mode stored at storage level `level` (these
    /// differ from [`Tensor::dim`] under a non-identity mode order).
    pub fn dim_of_level(&self, level: usize) -> usize {
        self.shape[self.format.mode_of_level(level)]
    }

    /// Number of modes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The storage format.
    pub fn format(&self) -> &Format {
        &self.format
    }

    /// The storage of level `level`.
    pub fn mode_storage(&self, level: usize) -> &ModeStorage {
        &self.modes[level]
    }

    /// The `pos` array of a compressed or hashed level.
    ///
    /// # Errors
    ///
    /// Returns an error if the level stores no `pos` array (dense and
    /// singleton levels).
    pub fn pos(&self, level: usize) -> Result<&[usize]> {
        match &self.modes[level] {
            ModeStorage::Compressed { pos, .. } => Ok(pos),
            ModeStorage::Dense { .. } | ModeStorage::Singleton { .. } => {
                Err(TensorError::FormatMismatch { expected: "level with a pos array" })
            }
        }
    }

    /// The `crd` array of a compressed, hashed, or singleton level.
    ///
    /// # Errors
    ///
    /// Returns an error if the level is dense.
    pub fn crd(&self, level: usize) -> Result<&[usize]> {
        match &self.modes[level] {
            ModeStorage::Compressed { crd, .. } | ModeStorage::Singleton { crd } => Ok(crd),
            ModeStorage::Dense { .. } => {
                Err(TensorError::FormatMismatch { expected: "level with a crd array" })
            }
        }
    }

    /// The value array (one value per innermost position).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of stored components.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Collects all stored `(coordinate, value)` entries in lexicographic
    /// coordinate order (coordinates are in *mode* order regardless of the
    /// storage's mode order).
    pub fn entries(&self) -> Vec<(Vec<usize>, f64)> {
        let mut out = Vec::with_capacity(self.vals.len());
        let mut coord = vec![0usize; self.rank()];
        self.walk(0, 0, &mut coord, &mut out);
        if !self.format.is_ordered() {
            // Storage order differs from lexicographic mode order under a
            // mode permutation or hashed levels.
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out
    }

    fn walk(&self, level: usize, parent_pos: usize, coord: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, f64)>) {
        if level == self.rank() {
            out.push((coord.clone(), self.vals[parent_pos]));
            return;
        }
        let mode = self.format.mode_of_level(level);
        match &self.modes[level] {
            ModeStorage::Dense { dim } => {
                for c in 0..*dim {
                    coord[mode] = c;
                    self.walk(level + 1, parent_pos * dim + c, coord, out);
                }
            }
            ModeStorage::Compressed { pos, crd } => {
                // Position is threaded to the next level, so the index-based
                // loop is the natural form here.
                #[allow(clippy::needless_range_loop)]
                for p in pos[parent_pos]..pos[parent_pos + 1] {
                    coord[mode] = crd[p];
                    self.walk(level + 1, p, coord, out);
                }
            }
            ModeStorage::Singleton { crd } => {
                coord[mode] = crd[parent_pos];
                self.walk(level + 1, parent_pos, coord, out);
            }
        }
    }

    /// Converts to a dense tensor.
    pub fn to_dense(&self) -> DenseTensor {
        let mut out = DenseTensor::zeros(self.shape.clone());
        for (coord, val) in self.entries() {
            out.add(&coord, val);
        }
        out
    }

    /// True if this tensor and `other` represent the same mathematical
    /// tensor up to tolerance `tol`, regardless of format (absent entries
    /// compare as zero).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        if self.shape != other.shape {
            return false;
        }
        // Merge the two sorted entry streams.
        let a = self.entries();
        let b = other.entries();
        let (mut i, mut j) = (0, 0);
        let close = |x: f64, y: f64| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs()));
        while i < a.len() || j < b.len() {
            if j == b.len() || (i < a.len() && a[i].0 < b[j].0) {
                if !close(a[i].1, 0.0) {
                    return false;
                }
                i += 1;
            } else if i == a.len() || b[j].0 < a[i].0 {
                if !close(0.0, b[j].1) {
                    return false;
                }
                j += 1;
            } else {
                if !close(a[i].1, b[j].1) {
                    return false;
                }
                i += 1;
                j += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The matrix of Figure 1a/1b of the paper.
    fn fig1_matrix() -> Tensor {
        Tensor::from_entries(
            vec![4, 4],
            Format::csr(),
            vec![
                (vec![0, 1], 1.0),
                (vec![0, 3], 2.0),
                (vec![2, 2], 3.0),
                (vec![3, 0], 4.0),
                (vec![3, 1], 5.0),
                (vec![3, 2], 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_arrays_match_paper_figure_1b() {
        let b = fig1_matrix();
        assert_eq!(b.pos(1).unwrap(), &[0, 2, 2, 3, 6]);
        assert_eq!(b.crd(1).unwrap(), &[1, 3, 2, 0, 1, 2]);
        assert_eq!(b.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn entries_round_trip() {
        let b = fig1_matrix();
        let entries = b.entries();
        let b2 = Tensor::from_entries(vec![4, 4], Format::csr(), entries).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn to_dense_and_back() {
        let b = fig1_matrix();
        let d = b.to_dense();
        assert_eq!(d.get(&[3, 2]), 6.0);
        assert_eq!(d.get(&[1, 1]), 0.0);
        let b2 = Tensor::from_dense(&d, Format::csr()).unwrap();
        assert!(b.approx_eq(&b2, 0.0));
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let t = Tensor::from_entries(
            vec![3],
            Format::svec(),
            vec![(vec![1], 2.0), (vec![1], 3.0)],
        )
        .unwrap();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.vals(), &[5.0]);
    }

    #[test]
    fn approx_eq_across_formats() {
        let d = {
            let mut d = DenseTensor::zeros(vec![3, 3]);
            d.set(&[0, 2], 1.5);
            d.set(&[2, 0], -2.5);
            d
        };
        let csr = Tensor::from_dense(&d, Format::csr()).unwrap();
        let dcsr = Tensor::from_dense(&d, Format::dcsr()).unwrap();
        let dense = Tensor::from_dense(&d, Format::dense(2)).unwrap();
        assert!(csr.approx_eq(&dcsr, 0.0));
        assert!(csr.approx_eq(&dense, 0.0));
        assert!(dense.approx_eq(&csr, 0.0));
    }

    #[test]
    fn approx_eq_detects_differences() {
        let a = Tensor::from_entries(vec![3], Format::svec(), vec![(vec![0], 1.0)]).unwrap();
        let b = Tensor::from_entries(vec![3], Format::svec(), vec![(vec![0], 2.0)]).unwrap();
        let c = Tensor::from_entries(vec![3], Format::svec(), vec![(vec![1], 1.0)]).unwrap();
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn csf3_storage() {
        let t = Tensor::from_entries(
            vec![2, 3, 4],
            Format::csf3(),
            vec![
                (vec![0, 1, 2], 1.0),
                (vec![0, 1, 3], 2.0),
                (vec![1, 0, 0], 3.0),
                (vec![1, 2, 1], 4.0),
            ],
        )
        .unwrap();
        assert_eq!(t.pos(0).unwrap(), &[0, 2]);
        assert_eq!(t.crd(0).unwrap(), &[0, 1]);
        assert_eq!(t.pos(1).unwrap(), &[0, 1, 3]);
        assert_eq!(t.crd(1).unwrap(), &[1, 0, 2]);
        assert_eq!(t.pos(2).unwrap(), &[0, 2, 3, 4]);
        assert_eq!(t.crd(2).unwrap(), &[2, 3, 0, 1]);
        assert_eq!(t.vals(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dense_format_tensor_stores_zeros() {
        let d = DenseTensor::from_data(vec![2, 2], vec![0.0, 1.0, 0.0, 0.0]);
        let t = Tensor::from_dense(&d, Format::dense(2)).unwrap();
        assert_eq!(t.nnz(), 4); // all positions stored
        assert_eq!(t.vals(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn coo_storage_matches_parallel_arrays() {
        let b = fig1_matrix().convert(Format::coo(2)).unwrap();
        // COO: one outer position per stored component, row coordinates with
        // duplicates, column coordinates in a singleton level.
        assert_eq!(b.pos(0).unwrap(), &[0, 6]);
        assert_eq!(b.crd(0).unwrap(), &[0, 0, 2, 3, 3, 3]);
        assert_eq!(b.crd(1).unwrap(), &[1, 3, 2, 0, 1, 2]);
        assert_eq!(b.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        b.validate().unwrap();
        assert!(b.approx_eq(&fig1_matrix(), 0.0));
    }

    #[test]
    fn csc_stores_columns_outer() {
        let b = fig1_matrix().convert(Format::csc()).unwrap();
        // Columns of Figure 1a: col 0 {r3}, col 1 {r0, r3}, col 2 {r2, r3},
        // col 3 {r0}.
        assert_eq!(b.pos(1).unwrap(), &[0, 1, 3, 5, 6]);
        assert_eq!(b.crd(1).unwrap(), &[3, 0, 3, 2, 3, 0]);
        b.validate().unwrap();
        assert!(b.approx_eq(&fig1_matrix(), 0.0));
        // Entries come back in row-major order despite column-major storage.
        assert_eq!(b.entries(), fig1_matrix().entries());
    }

    #[test]
    fn dcsc_skips_empty_columns() {
        let t = Tensor::from_entries(
            vec![4, 8],
            Format::dcsc(),
            vec![(vec![1, 2], 1.0), (vec![3, 2], 2.0), (vec![0, 7], 3.0)],
        )
        .unwrap();
        assert_eq!(t.crd(0).unwrap(), &[2, 7]); // only nonempty columns
        assert_eq!(t.pos(1).unwrap(), &[0, 2, 3]);
        t.validate().unwrap();
    }

    #[test]
    fn blocked_round_trip() {
        let b = fig1_matrix();
        let blocked = b.to_blocked(2, 2).unwrap();
        assert_eq!(blocked.format(), &Format::bcsr());
        assert_eq!(blocked.shape(), &[2, 2, 2, 2]);
        blocked.validate().unwrap();
        // Stored blocks are dense 2x2 tiles.
        assert_eq!(blocked.nnz() % 4, 0);
        let back = blocked.from_blocked(Format::csr()).unwrap();
        assert!(back.approx_eq(&b, 0.0));
    }

    #[test]
    fn blocking_requires_divisible_dims() {
        let t = Tensor::from_entries(vec![3, 4], Format::csr(), vec![(vec![0, 0], 1.0)]).unwrap();
        assert!(t.to_blocked(2, 2).is_err());
        assert!(t.to_blocked(0, 2).is_err());
        assert!(t.to_blocked(3, 2).is_ok());
    }

    #[test]
    fn convert_round_trips_preserve_values() {
        let b = fig1_matrix();
        for fmt in [
            Format::coo(2),
            Format::csc(),
            Format::dcsc(),
            Format::dcsr(),
            Format::dense(2),
        ] {
            let c = b.convert(fmt.clone()).unwrap();
            c.validate().unwrap();
            let back = c.convert(Format::csr()).unwrap();
            assert!(back.approx_eq(&b, 0.0), "round trip through {fmt} changed values");
        }
    }

    #[test]
    fn singleton_validation_rejects_bad_storage() {
        let good = fig1_matrix().convert(Format::coo(2)).unwrap();
        let (shape, format, mut modes, vals) = good.clone().into_parts();
        if let ModeStorage::Singleton { crd } = &mut modes[1] {
            crd.pop(); // one fewer coordinate than parent positions
        }
        let bad = Tensor::from_parts_unchecked(shape, format, modes, vals);
        assert!(bad.validate().is_err());

        let (shape, format, mut modes, vals) = good.into_parts();
        if let ModeStorage::Singleton { crd } = &mut modes[1] {
            crd[0] = 99; // out of bounds
        }
        let bad = Tensor::from_parts_unchecked(shape, format, modes, vals);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn coo_duplicate_component_rejected() {
        let good = fig1_matrix().convert(Format::coo(2)).unwrap();
        let (shape, format, mut modes, vals) = good.into_parts();
        if let ModeStorage::Singleton { crd } = &mut modes[1] {
            crd[1] = crd[0]; // rows 0/0 now both store column 1
        }
        let bad = Tensor::from_parts_unchecked(shape, format, modes, vals);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn hashed_level_allows_unordered_segments() {
        let f = Format::new(vec![LevelType::Dense, LevelType::Hashed]);
        let t = Tensor::from_parts(
            vec![2, 4],
            f,
            vec![
                ModeStorage::Dense { dim: 2 },
                ModeStorage::Compressed { pos: vec![0, 2, 3], crd: vec![3, 0, 1] },
            ],
            vec![1.0, 2.0, 3.0],
        );
        t.validate().unwrap();
        // Entries are sorted even though storage is not.
        assert_eq!(
            t.entries(),
            vec![(vec![0, 0], 2.0), (vec![0, 3], 1.0), (vec![1, 1], 3.0)]
        );
        // Duplicate coordinates within a segment are rejected.
        let bad = Tensor::from_parts_unchecked(
            vec![2, 4],
            Format::new(vec![LevelType::Dense, LevelType::Hashed]),
            vec![
                ModeStorage::Dense { dim: 2 },
                ModeStorage::Compressed { pos: vec![0, 2, 3], crd: vec![3, 3, 1] },
            ],
            vec![1.0, 2.0, 3.0],
        );
        assert!(bad.validate().is_err());
    }
}
