use crate::{DenseTensor, Format, ModeFormat, Result, TensorBuilder, TensorError};

/// Storage of a single tensor level (mode).
///
/// A tensor of rank *k* is stored as a hierarchy of *k* levels. Each level
/// stores, for every *position* of its parent level, the coordinates present
/// in this mode. A [`ModeStorage::Dense`] level stores all `0..dim`
/// coordinates implicitly; a [`ModeStorage::Compressed`] level stores a
/// `pos`/`crd` pair exactly as in Figure 1b of the paper: the children of
/// parent position `p` live at positions `pos[p]..pos[p+1]`, and `crd[q]` is
/// the coordinate at position `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeStorage {
    /// Dense level: all coordinates in `0..dim` exist at every parent
    /// position. Child position = `parent_pos * dim + coord`.
    Dense {
        /// Dimension of this mode.
        dim: usize,
    },
    /// Compressed level: explicit segment boundaries and coordinates.
    Compressed {
        /// `pos[p]..pos[p+1]` is the position range of parent position `p`.
        pos: Vec<usize>,
        /// `crd[q]` is the coordinate stored at position `q`.
        crd: Vec<usize>,
    },
}

impl ModeStorage {
    /// Number of positions (stored entries) at this level given the parent
    /// level had `parent_positions` positions.
    pub fn num_positions(&self, parent_positions: usize) -> usize {
        match self {
            ModeStorage::Dense { dim } => parent_positions * dim,
            ModeStorage::Compressed { pos, .. } => *pos.last().unwrap_or(&0),
        }
    }
}

/// A sparse (or dense) tensor stored level by level.
///
/// The value array stores one `f64` per position of the innermost level, in
/// position order — exactly the layout taco generates code against.
///
/// Construct tensors with [`Tensor::from_entries`], [`TensorBuilder`], or
/// [`Tensor::from_dense`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    format: Format,
    modes: Vec<ModeStorage>,
    vals: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor directly from its level storage and values.
    ///
    /// This is the raw constructor used by builders and kernel output
    /// extraction; most callers want [`Tensor::from_entries`].
    ///
    /// # Panics
    ///
    /// Panics if the number of levels does not match the shape/format rank,
    /// or if `vals` does not have one value per innermost position.
    pub fn from_parts(
        shape: Vec<usize>,
        format: Format,
        modes: Vec<ModeStorage>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(shape.len(), format.rank(), "shape/format rank mismatch");
        assert_eq!(shape.len(), modes.len(), "shape/levels rank mismatch");
        let mut positions = 1;
        for m in &modes {
            positions = m.num_positions(positions);
        }
        assert_eq!(positions, vals.len(), "vals length must match innermost positions");
        Tensor { shape, format, modes, vals }
    }

    /// Creates a tensor from its level storage and values with **no**
    /// invariant checks.
    ///
    /// This exists for fault-injection testing (see [`crate::corrupt`]): it
    /// can represent corrupted storage that [`Tensor::validate`] rejects and
    /// [`Tensor::from_parts`] would refuse to build. Any other use is a bug —
    /// methods like [`Tensor::entries`] may panic on tensors built this way.
    pub fn from_parts_unchecked(
        shape: Vec<usize>,
        format: Format,
        modes: Vec<ModeStorage>,
        vals: Vec<f64>,
    ) -> Self {
        Tensor { shape, format, modes, vals }
    }

    /// Decomposes the tensor into `(shape, format, modes, vals)`.
    pub fn into_parts(self) -> (Vec<usize>, Format, Vec<ModeStorage>, Vec<f64>) {
        (self.shape, self.format, self.modes, self.vals)
    }

    /// Checks every storage invariant the compiled kernels rely on:
    ///
    /// * shape, format and level storage agree in rank, and each level's
    ///   storage variant matches its [`ModeFormat`];
    /// * each compressed level's `pos` starts at 0, is monotonically
    ///   non-decreasing, has one entry per parent position plus one, and ends
    ///   exactly at `crd.len()`;
    /// * each `crd` segment is strictly increasing (sorted, duplicate-free)
    ///   with coordinates inside the mode dimension;
    /// * `vals` holds exactly one value per innermost position, and every
    ///   value is finite.
    ///
    /// Binding a tensor into the execution pipeline runs this check first, so
    /// corrupted operands fail with a typed error before any kernel touches
    /// their arrays.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidStorage`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        let bad = |level: usize, detail: String| {
            Err(TensorError::InvalidStorage { level, detail })
        };
        if self.shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        if self.format.rank() != self.shape.len() || self.modes.len() != self.shape.len() {
            return bad(
                0,
                format!(
                    "rank disagreement: shape has {} modes, format {}, storage {}",
                    self.shape.len(),
                    self.format.rank(),
                    self.modes.len()
                ),
            );
        }
        let mut parent_positions = 1usize;
        for (level, mode) in self.modes.iter().enumerate() {
            let dim = self.shape[level];
            match (mode, self.format.mode(level)) {
                (ModeStorage::Dense { dim: stored }, ModeFormat::Dense) => {
                    if *stored != dim {
                        return bad(
                            level,
                            format!("dense level stores dimension {stored}, shape says {dim}"),
                        );
                    }
                    parent_positions = match parent_positions.checked_mul(dim) {
                        Some(p) => p,
                        None => {
                            return bad(level, format!("dense level size overflows ({dim} wide)"))
                        }
                    };
                }
                (ModeStorage::Compressed { pos, crd }, ModeFormat::Compressed) => {
                    if pos.len() != parent_positions + 1 {
                        return bad(
                            level,
                            format!(
                                "pos has {} entries, expected {} (parent positions + 1)",
                                pos.len(),
                                parent_positions + 1
                            ),
                        );
                    }
                    if pos[0] != 0 {
                        return bad(level, format!("pos must start at 0, found {}", pos[0]));
                    }
                    if let Some(w) = pos.windows(2).find(|w| w[0] > w[1]) {
                        return bad(
                            level,
                            format!("pos is not monotone: segment bound {} follows {}", w[1], w[0]),
                        );
                    }
                    let end = *pos.last().expect("pos nonempty: checked length above");
                    if end != crd.len() {
                        return bad(
                            level,
                            format!("pos ends at {end} but crd has {} entries", crd.len()),
                        );
                    }
                    for p in 0..parent_positions {
                        let seg = &crd[pos[p]..pos[p + 1]];
                        if let Some(w) = seg.windows(2).find(|w| w[0] >= w[1]) {
                            return bad(
                                level,
                                format!(
                                    "crd segment of parent position {p} is not strictly \
                                     increasing ({} then {})",
                                    w[0], w[1]
                                ),
                            );
                        }
                        if let Some(c) = seg.iter().find(|c| **c >= dim) {
                            return bad(
                                level,
                                format!("coordinate {c} out of bounds for dimension {dim}"),
                            );
                        }
                    }
                    parent_positions = crd.len();
                }
                (stored, declared) => {
                    let kind = match stored {
                        ModeStorage::Dense { .. } => "dense",
                        ModeStorage::Compressed { .. } => "compressed",
                    };
                    return bad(
                        level,
                        format!("storage is {kind} but the format declares {declared}"),
                    );
                }
            }
        }
        if self.vals.len() != parent_positions {
            return bad(
                self.rank() - 1,
                format!(
                    "vals has {} entries, expected one per innermost position ({parent_positions})",
                    self.vals.len()
                ),
            );
        }
        if let Some(q) = self.vals.iter().position(|v| !v.is_finite()) {
            return bad(
                self.rank() - 1,
                format!("non-finite value {} at position {q}", self.vals[q]),
            );
        }
        Ok(())
    }

    /// Builds a tensor from `(coordinate, value)` entries.
    ///
    /// Duplicate coordinates are summed; explicit zeros are kept (they are
    /// stored nonzeros, as in taco).
    ///
    /// # Errors
    ///
    /// Returns an error if the format rank does not match the shape, or any
    /// entry is out of bounds.
    pub fn from_entries(
        shape: Vec<usize>,
        format: Format,
        entries: Vec<(Vec<usize>, f64)>,
    ) -> Result<Self> {
        let mut b = TensorBuilder::new(shape, format)?;
        for (coord, val) in entries {
            b.insert(&coord, val)?;
        }
        Ok(b.build())
    }

    /// Converts a dense tensor into this format, keeping only nonzeros in
    /// compressed levels.
    pub fn from_dense(dense: &DenseTensor, format: Format) -> Result<Self> {
        let mut b = TensorBuilder::new(dense.shape().to_vec(), format.clone())?;
        if format.is_all_dense() {
            // Preserve every component, including zeros.
            return Ok(Tensor::from_parts(
                dense.shape().to_vec(),
                Format::dense(dense.rank()),
                dense.shape().iter().map(|d| ModeStorage::Dense { dim: *d }).collect(),
                dense.data().to_vec(),
            ));
        }
        for (coord, val) in dense.iter_nonzeros() {
            b.insert(&coord, val)?;
        }
        Ok(b.build())
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The dimension of mode `level`.
    pub fn dim(&self, level: usize) -> usize {
        self.shape[level]
    }

    /// Number of modes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The storage format.
    pub fn format(&self) -> &Format {
        &self.format
    }

    /// The storage of level `level`.
    pub fn mode_storage(&self, level: usize) -> &ModeStorage {
        &self.modes[level]
    }

    /// The `pos` array of a compressed level.
    ///
    /// # Errors
    ///
    /// Returns an error if the level is dense.
    pub fn pos(&self, level: usize) -> Result<&[usize]> {
        match &self.modes[level] {
            ModeStorage::Compressed { pos, .. } => Ok(pos),
            ModeStorage::Dense { .. } => {
                Err(TensorError::FormatMismatch { expected: "compressed level" })
            }
        }
    }

    /// The `crd` array of a compressed level.
    ///
    /// # Errors
    ///
    /// Returns an error if the level is dense.
    pub fn crd(&self, level: usize) -> Result<&[usize]> {
        match &self.modes[level] {
            ModeStorage::Compressed { crd, .. } => Ok(crd),
            ModeStorage::Dense { .. } => {
                Err(TensorError::FormatMismatch { expected: "compressed level" })
            }
        }
    }

    /// The value array (one value per innermost position).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of stored components.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Collects all stored `(coordinate, value)` entries in lexicographic
    /// coordinate order.
    pub fn entries(&self) -> Vec<(Vec<usize>, f64)> {
        let mut out = Vec::with_capacity(self.vals.len());
        let mut coord = vec![0usize; self.rank()];
        self.walk(0, 0, &mut coord, &mut out);
        out
    }

    fn walk(&self, level: usize, parent_pos: usize, coord: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, f64)>) {
        if level == self.rank() {
            out.push((coord.clone(), self.vals[parent_pos]));
            return;
        }
        match &self.modes[level] {
            ModeStorage::Dense { dim } => {
                for c in 0..*dim {
                    coord[level] = c;
                    self.walk(level + 1, parent_pos * dim + c, coord, out);
                }
            }
            ModeStorage::Compressed { pos, crd } => {
                // Position is threaded to the next level, so the index-based
                // loop is the natural form here.
                #[allow(clippy::needless_range_loop)]
                for p in pos[parent_pos]..pos[parent_pos + 1] {
                    coord[level] = crd[p];
                    self.walk(level + 1, p, coord, out);
                }
            }
        }
    }

    /// Converts to a dense tensor.
    pub fn to_dense(&self) -> DenseTensor {
        let mut out = DenseTensor::zeros(self.shape.clone());
        for (coord, val) in self.entries() {
            out.add(&coord, val);
        }
        out
    }

    /// True if this tensor and `other` represent the same mathematical
    /// tensor up to tolerance `tol`, regardless of format (absent entries
    /// compare as zero).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        if self.shape != other.shape {
            return false;
        }
        // Merge the two sorted entry streams.
        let a = self.entries();
        let b = other.entries();
        let (mut i, mut j) = (0, 0);
        let close = |x: f64, y: f64| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs()));
        while i < a.len() || j < b.len() {
            if j == b.len() || (i < a.len() && a[i].0 < b[j].0) {
                if !close(a[i].1, 0.0) {
                    return false;
                }
                i += 1;
            } else if i == a.len() || b[j].0 < a[i].0 {
                if !close(0.0, b[j].1) {
                    return false;
                }
                j += 1;
            } else {
                if !close(a[i].1, b[j].1) {
                    return false;
                }
                i += 1;
                j += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The matrix of Figure 1a/1b of the paper.
    fn fig1_matrix() -> Tensor {
        Tensor::from_entries(
            vec![4, 4],
            Format::csr(),
            vec![
                (vec![0, 1], 1.0),
                (vec![0, 3], 2.0),
                (vec![2, 2], 3.0),
                (vec![3, 0], 4.0),
                (vec![3, 1], 5.0),
                (vec![3, 2], 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_arrays_match_paper_figure_1b() {
        let b = fig1_matrix();
        assert_eq!(b.pos(1).unwrap(), &[0, 2, 2, 3, 6]);
        assert_eq!(b.crd(1).unwrap(), &[1, 3, 2, 0, 1, 2]);
        assert_eq!(b.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn entries_round_trip() {
        let b = fig1_matrix();
        let entries = b.entries();
        let b2 = Tensor::from_entries(vec![4, 4], Format::csr(), entries).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn to_dense_and_back() {
        let b = fig1_matrix();
        let d = b.to_dense();
        assert_eq!(d.get(&[3, 2]), 6.0);
        assert_eq!(d.get(&[1, 1]), 0.0);
        let b2 = Tensor::from_dense(&d, Format::csr()).unwrap();
        assert!(b.approx_eq(&b2, 0.0));
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let t = Tensor::from_entries(
            vec![3],
            Format::svec(),
            vec![(vec![1], 2.0), (vec![1], 3.0)],
        )
        .unwrap();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.vals(), &[5.0]);
    }

    #[test]
    fn approx_eq_across_formats() {
        let d = {
            let mut d = DenseTensor::zeros(vec![3, 3]);
            d.set(&[0, 2], 1.5);
            d.set(&[2, 0], -2.5);
            d
        };
        let csr = Tensor::from_dense(&d, Format::csr()).unwrap();
        let dcsr = Tensor::from_dense(&d, Format::dcsr()).unwrap();
        let dense = Tensor::from_dense(&d, Format::dense(2)).unwrap();
        assert!(csr.approx_eq(&dcsr, 0.0));
        assert!(csr.approx_eq(&dense, 0.0));
        assert!(dense.approx_eq(&csr, 0.0));
    }

    #[test]
    fn approx_eq_detects_differences() {
        let a = Tensor::from_entries(vec![3], Format::svec(), vec![(vec![0], 1.0)]).unwrap();
        let b = Tensor::from_entries(vec![3], Format::svec(), vec![(vec![0], 2.0)]).unwrap();
        let c = Tensor::from_entries(vec![3], Format::svec(), vec![(vec![1], 1.0)]).unwrap();
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn csf3_storage() {
        let t = Tensor::from_entries(
            vec![2, 3, 4],
            Format::csf3(),
            vec![
                (vec![0, 1, 2], 1.0),
                (vec![0, 1, 3], 2.0),
                (vec![1, 0, 0], 3.0),
                (vec![1, 2, 1], 4.0),
            ],
        )
        .unwrap();
        assert_eq!(t.pos(0).unwrap(), &[0, 2]);
        assert_eq!(t.crd(0).unwrap(), &[0, 1]);
        assert_eq!(t.pos(1).unwrap(), &[0, 1, 3]);
        assert_eq!(t.crd(1).unwrap(), &[1, 0, 2]);
        assert_eq!(t.pos(2).unwrap(), &[0, 2, 3, 4]);
        assert_eq!(t.crd(2).unwrap(), &[2, 3, 0, 1]);
        assert_eq!(t.vals(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dense_format_tensor_stores_zeros() {
        let d = DenseTensor::from_data(vec![2, 2], vec![0.0, 1.0, 0.0, 0.0]);
        let t = Tensor::from_dense(&d, Format::dense(2)).unwrap();
        assert_eq!(t.nnz(), 4); // all positions stored
        assert_eq!(t.vals(), &[0.0, 1.0, 0.0, 0.0]);
    }
}
