use std::fmt;

use crate::{Result, TensorError};

/// Storage type of a single tensor level, following the level-capability
/// decomposition of Chou, Kjolstad & Amarasinghe ("Format Abstraction for
/// Sparse Tensor Algebra Compilers").
///
/// The paper (Section II) classifies per-level formats as *dense* (every
/// component stored) or *sparse/compressed* (only nonzeros stored, using a
/// `pos` array of segment boundaries and a `crd` array of coordinates).
/// The format-abstraction follow-up adds *singleton* levels (one coordinate
/// per parent position — the building block of COO) and *hashed* levels
/// (`pos`/`crd` storage whose segments are unordered).
///
/// Rather than matching on the concrete type, consumers should ask a level
/// for its **properties** ([`LevelType::is_full`], [`LevelType::is_ordered`],
/// [`LevelType::is_branchless`]) and **capabilities**
/// ([`LevelType::has_locate`], [`LevelType::has_position_iter`],
/// [`LevelType::has_append`], [`LevelType::has_insert`]); uniqueness is a
/// property of a level *within* a [`Format`] (see [`Format::level_unique`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LevelType {
    /// Every coordinate in `0..dim` is stored.
    Dense,
    /// Only nonzero coordinates are stored in `pos`/`crd` arrays
    /// (Figure 1b of the paper), ordered within each segment.
    Compressed,
    /// Exactly one coordinate per parent position, stored in a `crd` array
    /// with no `pos` array: child position equals parent position. Chains of
    /// singleton levels under a non-unique compressed level yield COO.
    Singleton,
    /// `pos`/`crd` storage whose segments are *unordered* (hash-bucket
    /// layout flattened to arrays). Coordinates are unique per segment but
    /// carry no order, so hashed levels cannot drive merged co-iteration.
    Hashed,
}

/// Backwards-compatible alias: earlier revisions called the per-level type
/// `ModeFormat` with only the `Dense`/`Compressed` variants.
pub type ModeFormat = LevelType;

impl LevelType {
    /// **Property — full:** every coordinate in `0..dim` has a stored
    /// position (no compression).
    pub fn is_full(self) -> bool {
        matches!(self, LevelType::Dense)
    }

    /// **Property — ordered:** positions enumerate coordinates in increasing
    /// order, so the level can participate in two-way merge co-iteration.
    pub fn is_ordered(self) -> bool {
        !matches!(self, LevelType::Hashed)
    }

    /// **Property — branchless:** iterating the level introduces no loop of
    /// its own (dense levels are strided address arithmetic, singleton
    /// levels are a single coordinate load per parent position).
    pub fn is_branchless(self) -> bool {
        matches!(self, LevelType::Dense | LevelType::Singleton)
    }

    /// **Capability — locate:** the position of a coordinate can be computed
    /// directly (`pos = parent_pos * dim + coord`), enabling random access.
    pub fn has_locate(self) -> bool {
        matches!(self, LevelType::Dense)
    }

    /// **Capability — position iteration:** the level owns a `pos` array
    /// describing, per parent position, a contiguous position range to loop
    /// over.
    pub fn has_position_iter(self) -> bool {
        matches!(self, LevelType::Compressed | LevelType::Hashed)
    }

    /// **Capability — position pass-through:** the level stores exactly one
    /// coordinate per parent position, so "iterating" it is a single `crd`
    /// load at the parent position with no loop.
    pub fn is_position_passthrough(self) -> bool {
        matches!(self, LevelType::Singleton)
    }

    /// **Capability — append assembly:** result coordinates can be appended
    /// in order, growing `crd`/`vals` and recording segment bounds in `pos`.
    pub fn has_append(self) -> bool {
        matches!(self, LevelType::Compressed)
    }

    /// **Capability — insert assembly:** results can be written by locating
    /// the destination position (requires [`LevelType::has_locate`]).
    pub fn has_insert(self) -> bool {
        matches!(self, LevelType::Dense)
    }

    /// True if the level stores an explicit `pos` array.
    pub fn has_pos_array(self) -> bool {
        matches!(self, LevelType::Compressed | LevelType::Hashed)
    }

    /// True if the level stores an explicit `crd` array.
    pub fn has_crd_array(self) -> bool {
        matches!(self, LevelType::Compressed | LevelType::Singleton | LevelType::Hashed)
    }
}

impl fmt::Display for LevelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelType::Dense => write!(f, "d"),
            LevelType::Compressed => write!(f, "s"),
            LevelType::Singleton => write!(f, "q"),
            LevelType::Hashed => write!(f, "h"),
        }
    }
}

/// A tensor storage format: one [`LevelType`] per storage level (outermost
/// first) plus a *mode order* mapping storage levels to tensor modes.
///
/// With the identity order, level `l` stores mode `l` (row-major for
/// matrices). A non-identity order stores modes permuted — CSC is
/// `{Dense, Compressed}` with order `[1, 0]` (columns outer, rows inner).
///
/// # Example
///
/// ```
/// use taco_tensor::{Format, ModeFormat};
///
/// let csr = Format::csr();
/// assert_eq!(csr.mode(0), ModeFormat::Dense);
/// assert_eq!(csr.mode(1), ModeFormat::Compressed);
/// assert_eq!(csr.to_string(), "(d,s)");
///
/// let csc = Format::csc();
/// assert_eq!(csc.mode_of_level(0), 1); // outer level stores mode 1
/// assert_eq!(csc.to_string(), "(d,s|1,0)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Format {
    modes: Vec<LevelType>,
    /// `order[l]` is the tensor mode stored at level `l`.
    order: Vec<usize>,
}

impl Format {
    /// Creates a format from per-level types, outermost first, storing modes
    /// in identity order (level `l` stores mode `l`).
    pub fn new(modes: Vec<LevelType>) -> Self {
        let order = (0..modes.len()).collect();
        Format { modes, order }
    }

    /// Replaces the mode order: `order[l]` is the tensor mode stored at
    /// level `l`. `order` must be a permutation of `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidFormat`] if `order` is not a
    /// permutation of `0..rank`.
    pub fn with_mode_order(mut self, order: Vec<usize>) -> Result<Self> {
        if order.len() != self.modes.len() {
            return Err(TensorError::InvalidFormat {
                detail: format!(
                    "mode order has {} entries for a rank-{} format",
                    order.len(),
                    self.modes.len()
                ),
            });
        }
        let mut seen = vec![false; order.len()];
        for &m in &order {
            if m >= order.len() || seen[m] {
                return Err(TensorError::InvalidFormat {
                    detail: format!("mode order {order:?} is not a permutation"),
                });
            }
            seen[m] = true;
        }
        self.order = order;
        Ok(self)
    }

    /// All-dense format of the given rank.
    pub fn dense(rank: usize) -> Self {
        Format::new(vec![LevelType::Dense; rank])
    }

    /// All-compressed format of the given rank: DCSR for rank 2, CSF for
    /// rank 3 and above (every level stores only nonempty slices).
    pub fn compressed(rank: usize) -> Self {
        Format::new(vec![LevelType::Compressed; rank])
    }

    /// Compressed sparse row: `{Dense, Compressed}`.
    pub fn csr() -> Self {
        Format::new(vec![LevelType::Dense, LevelType::Compressed])
    }

    /// Doubly compressed sparse row: `{Compressed, Compressed}`.
    pub fn dcsr() -> Self {
        Format::compressed(2)
    }

    /// Compressed sparse column: `{Dense, Compressed}` with mode order
    /// `[1, 0]` — columns at the outer level, row coordinates compressed
    /// within each column.
    pub fn csc() -> Self {
        Format::csr().with_mode_order(vec![1, 0]).expect("[1,0] is a permutation")
    }

    /// Doubly compressed sparse column: `{Compressed, Compressed}` with mode
    /// order `[1, 0]` (only nonempty columns stored).
    pub fn dcsc() -> Self {
        Format::dcsr().with_mode_order(vec![1, 0]).expect("[1,0] is a permutation")
    }

    /// Coordinate format of the given rank: a non-unique compressed outer
    /// level followed by singleton levels, i.e. parallel coordinate arrays
    /// with one entry per stored component.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn coo(rank: usize) -> Self {
        assert!(rank > 0, "COO requires rank >= 1");
        let mut modes = vec![LevelType::Compressed];
        modes.extend(vec![LevelType::Singleton; rank - 1]);
        Format::new(modes)
    }

    /// Blocked CSR over a rank-4 blocked tensor: `{Dense, Compressed,
    /// Dense, Dense}`. A rank-2 matrix blocked into `br x bc` tiles (see
    /// [`crate::Tensor::to_blocked`]) stores block rows densely, nonempty
    /// block columns compressed, and each stored block as a dense `br x bc`
    /// tile — contiguous inner loops for vectorizing backends.
    pub fn bcsr() -> Self {
        Format::new(vec![
            LevelType::Dense,
            LevelType::Compressed,
            LevelType::Dense,
            LevelType::Dense,
        ])
    }

    /// Compressed sparse fiber for 3-tensors: `{Compressed, Compressed, Compressed}`.
    pub fn csf3() -> Self {
        Format::compressed(3)
    }

    /// Dense vector: `{Dense}`.
    pub fn dvec() -> Self {
        Format::dense(1)
    }

    /// Sparse (compressed) vector: `{Compressed}`.
    pub fn svec() -> Self {
        Format::compressed(1)
    }

    /// Number of levels (= number of modes) in the format.
    pub fn rank(&self) -> usize {
        self.modes.len()
    }

    /// The level type of storage level `level` (0 = outermost).
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.rank()`. Use [`Format::level`] for a checked
    /// accessor returning a typed error.
    pub fn mode(&self, level: usize) -> LevelType {
        self.modes[level]
    }

    /// The level type of storage level `level`, checked.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LevelOutOfBounds`] if `level >= self.rank()`.
    pub fn level(&self, level: usize) -> Result<LevelType> {
        self.modes.get(level).copied().ok_or(TensorError::LevelOutOfBounds {
            level,
            rank: self.modes.len(),
        })
    }

    /// Per-level types, outermost first.
    pub fn modes(&self) -> &[LevelType] {
        &self.modes
    }

    /// The mode order: `mode_order()[l]` is the tensor mode stored at
    /// level `l`.
    pub fn mode_order(&self) -> &[usize] {
        &self.order
    }

    /// The tensor mode stored at level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.rank()`.
    pub fn mode_of_level(&self, level: usize) -> usize {
        self.order[level]
    }

    /// The storage level holding tensor mode `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode >= self.rank()`.
    pub fn level_of_mode(&self, mode: usize) -> usize {
        self.order
            .iter()
            .position(|&m| m == mode)
            .expect("mode order is a permutation of 0..rank")
    }

    /// True if level `l` stores mode `l` for every level.
    pub fn is_identity_order(&self) -> bool {
        self.order.iter().enumerate().all(|(l, &m)| l == m)
    }

    /// **Property — unique:** true if no two positions of level `level`
    /// share (ancestry and) coordinate. A level is non-unique exactly when
    /// the next level is a singleton: COO's outer levels repeat coordinates
    /// because each stored component gets its own position chain.
    pub fn level_unique(&self, level: usize) -> bool {
        self.modes.get(level + 1) != Some(&LevelType::Singleton)
    }

    /// True if every level is dense.
    pub fn is_all_dense(&self) -> bool {
        self.modes.iter().all(|m| *m == LevelType::Dense)
    }

    /// True if any level is compressed (or hashed — any level that needs a
    /// `pos` array).
    pub fn has_compressed(&self) -> bool {
        self.modes.iter().any(|m| m.has_pos_array())
    }

    /// True if any level is a singleton.
    pub fn has_singleton(&self) -> bool {
        self.modes.contains(&LevelType::Singleton)
    }

    /// True if any level is hashed (unordered).
    pub fn has_hashed(&self) -> bool {
        self.modes.contains(&LevelType::Hashed)
    }

    /// True if storage enumerates components in lexicographic coordinate
    /// order: every level is ordered and the mode order is the identity.
    pub fn is_ordered(&self) -> bool {
        self.is_identity_order() && self.modes.iter().all(|m| m.is_ordered())
    }

    /// Checks that the level-type chain is realizable: a singleton level
    /// must follow a compressed, hashed, or singleton level (its parent must
    /// be able to hold one position per stored component — dense parents
    /// enumerate every coordinate and cannot).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidFormat`] describing the first invalid
    /// level.
    pub fn check_level_types(&self) -> Result<()> {
        for (l, m) in self.modes.iter().enumerate() {
            if *m == LevelType::Singleton {
                let parent_ok = l > 0
                    && matches!(
                        self.modes[l - 1],
                        LevelType::Compressed | LevelType::Singleton | LevelType::Hashed
                    );
                if !parent_ok {
                    return Err(TensorError::InvalidFormat {
                        detail: format!(
                            "singleton level {l} must follow a compressed, hashed, or \
                             singleton level"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, m) in self.modes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        if !self.is_identity_order() {
            write!(f, "|")?;
            for (i, m) in self.order.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{m}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Format::csr().modes(), &[LevelType::Dense, LevelType::Compressed]);
        assert_eq!(Format::dcsr().modes(), &[LevelType::Compressed; 2]);
        assert_eq!(Format::csf3().rank(), 3);
        assert_eq!(Format::dvec().mode(0), LevelType::Dense);
        assert_eq!(Format::svec().mode(0), LevelType::Compressed);
        assert_eq!(
            Format::coo(3).modes(),
            &[LevelType::Compressed, LevelType::Singleton, LevelType::Singleton]
        );
        assert_eq!(Format::csc().mode_order(), &[1, 0]);
        assert_eq!(Format::bcsr().rank(), 4);
    }

    #[test]
    fn predicates() {
        assert!(Format::dense(3).is_all_dense());
        assert!(!Format::csr().is_all_dense());
        assert!(Format::csr().has_compressed());
        assert!(!Format::dense(2).has_compressed());
        assert!(Format::coo(2).has_singleton());
        assert!(!Format::csr().has_singleton());
        assert!(Format::csr().is_ordered());
        assert!(!Format::csc().is_ordered());
    }

    #[test]
    fn capability_queries() {
        assert!(LevelType::Dense.has_locate());
        assert!(LevelType::Dense.is_full());
        assert!(LevelType::Dense.has_insert());
        assert!(!LevelType::Dense.has_pos_array());
        assert!(LevelType::Compressed.has_position_iter());
        assert!(LevelType::Compressed.has_append());
        assert!(LevelType::Compressed.is_ordered());
        assert!(LevelType::Singleton.is_position_passthrough());
        assert!(LevelType::Singleton.is_branchless());
        assert!(!LevelType::Singleton.has_pos_array());
        assert!(LevelType::Singleton.has_crd_array());
        assert!(LevelType::Hashed.has_position_iter());
        assert!(!LevelType::Hashed.is_ordered());
    }

    #[test]
    fn uniqueness_from_chain() {
        let coo = Format::coo(3);
        assert!(!coo.level_unique(0));
        assert!(!coo.level_unique(1));
        assert!(coo.level_unique(2));
        assert!(Format::csr().level_unique(0));
        assert!(Format::csr().level_unique(1));
    }

    #[test]
    fn mode_order_mapping() {
        let csc = Format::csc();
        assert_eq!(csc.mode_of_level(0), 1);
        assert_eq!(csc.mode_of_level(1), 0);
        assert_eq!(csc.level_of_mode(0), 1);
        assert_eq!(csc.level_of_mode(1), 0);
        assert!(Format::csr().is_identity_order());
        assert!(!csc.is_identity_order());
    }

    #[test]
    fn bad_mode_order_rejected() {
        assert!(Format::csr().with_mode_order(vec![0]).is_err());
        assert!(Format::csr().with_mode_order(vec![0, 0]).is_err());
        assert!(Format::csr().with_mode_order(vec![1, 2]).is_err());
    }

    #[test]
    fn checked_level_accessor() {
        let f = Format::csr();
        assert_eq!(f.level(1).unwrap(), LevelType::Compressed);
        assert_eq!(
            f.level(2).unwrap_err(),
            TensorError::LevelOutOfBounds { level: 2, rank: 2 }
        );
    }

    #[test]
    fn level_chain_check() {
        assert!(Format::coo(3).check_level_types().is_ok());
        assert!(Format::csr().check_level_types().is_ok());
        let bad = Format::new(vec![LevelType::Dense, LevelType::Singleton]);
        assert!(bad.check_level_types().is_err());
        let bad2 = Format::new(vec![LevelType::Singleton]);
        assert!(bad2.check_level_types().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Format::csr().to_string(), "(d,s)");
        assert_eq!(Format::csf3().to_string(), "(s,s,s)");
        assert_eq!(Format::coo(2).to_string(), "(s,q)");
        assert_eq!(Format::csc().to_string(), "(d,s|1,0)");
        assert_eq!(Format::dcsc().to_string(), "(s,s|1,0)");
        assert_eq!(Format::bcsr().to_string(), "(d,s,d,d)");
    }
}
