use std::fmt;

/// Storage format of a single tensor mode (dimension level).
///
/// The paper (Section II) classifies per-level formats as *dense* (every
/// component stored) or *sparse/compressed* (only nonzeros stored, using a
/// `pos` array of segment boundaries and a `crd` array of coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModeFormat {
    /// Every coordinate in `0..dim` is stored.
    Dense,
    /// Only nonzero coordinates are stored in `pos`/`crd` arrays
    /// (Figure 1b of the paper).
    Compressed,
}

impl fmt::Display for ModeFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeFormat::Dense => write!(f, "d"),
            ModeFormat::Compressed => write!(f, "s"),
        }
    }
}

/// A tensor storage format: one [`ModeFormat`] per mode, outermost first.
///
/// # Example
///
/// ```
/// use taco_tensor::{Format, ModeFormat};
///
/// let csr = Format::csr();
/// assert_eq!(csr.mode(0), ModeFormat::Dense);
/// assert_eq!(csr.mode(1), ModeFormat::Compressed);
/// assert_eq!(csr.to_string(), "(d,s)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Format {
    modes: Vec<ModeFormat>,
}

impl Format {
    /// Creates a format from per-mode formats, outermost mode first.
    pub fn new(modes: Vec<ModeFormat>) -> Self {
        Format { modes }
    }

    /// All-dense format of the given rank.
    pub fn dense(rank: usize) -> Self {
        Format::new(vec![ModeFormat::Dense; rank])
    }

    /// All-compressed format of the given rank (CSF for rank 3, DCSR for 2).
    pub fn compressed(rank: usize) -> Self {
        Format::new(vec![ModeFormat::Compressed; rank])
    }

    /// Compressed sparse row: `{Dense, Compressed}`.
    pub fn csr() -> Self {
        Format::new(vec![ModeFormat::Dense, ModeFormat::Compressed])
    }

    /// Doubly compressed sparse row: `{Compressed, Compressed}`.
    pub fn dcsr() -> Self {
        Format::compressed(2)
    }

    /// Compressed sparse fiber for 3-tensors: `{Compressed, Compressed, Compressed}`.
    pub fn csf3() -> Self {
        Format::compressed(3)
    }

    /// Dense vector: `{Dense}`.
    pub fn dvec() -> Self {
        Format::dense(1)
    }

    /// Sparse (compressed) vector: `{Compressed}`.
    pub fn svec() -> Self {
        Format::compressed(1)
    }

    /// Number of modes in the format.
    pub fn rank(&self) -> usize {
        self.modes.len()
    }

    /// The format of mode `level` (0 = outermost).
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.rank()`.
    pub fn mode(&self, level: usize) -> ModeFormat {
        self.modes[level]
    }

    /// Per-mode formats, outermost first.
    pub fn modes(&self) -> &[ModeFormat] {
        &self.modes
    }

    /// True if every mode is dense.
    pub fn is_all_dense(&self) -> bool {
        self.modes.iter().all(|m| *m == ModeFormat::Dense)
    }

    /// True if any mode is compressed.
    pub fn has_compressed(&self) -> bool {
        self.modes.contains(&ModeFormat::Compressed)
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, m) in self.modes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Format::csr().modes(), &[ModeFormat::Dense, ModeFormat::Compressed]);
        assert_eq!(Format::dcsr().modes(), &[ModeFormat::Compressed; 2]);
        assert_eq!(Format::csf3().rank(), 3);
        assert_eq!(Format::dvec().mode(0), ModeFormat::Dense);
        assert_eq!(Format::svec().mode(0), ModeFormat::Compressed);
    }

    #[test]
    fn predicates() {
        assert!(Format::dense(3).is_all_dense());
        assert!(!Format::csr().is_all_dense());
        assert!(Format::csr().has_compressed());
        assert!(!Format::dense(2).has_compressed());
    }

    #[test]
    fn display() {
        assert_eq!(Format::csr().to_string(), "(d,s)");
        assert_eq!(Format::csf3().to_string(), "(s,s,s)");
    }
}
