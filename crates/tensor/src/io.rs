//! Text I/O for the exchange formats the paper's datasets ship in:
//! MatrixMarket coordinate files (SuiteSparse) and FROSTT `.tns` files.
//!
//! With these parsers the benchmark harness can run against the *real*
//! Table I datasets when they are available locally, instead of the
//! synthetic stand-ins:
//!
//! ```no_run
//! use taco_tensor::io::{read_matrix_market, read_tns};
//!
//! let b = read_matrix_market("bcsstk17.mtx")?;
//! let t = read_tns("nell-2.tns", 3)?;
//! # Ok::<(), taco_tensor::io::IoError>(())
//! ```

use crate::{Csf3, Csr, Tensor, TensorError};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from reading or writing tensor exchange files.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The parsed data could not form a tensor.
    Tensor(TensorError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, detail } => write!(f, "parse error on line {line}: {detail}"),
            IoError::Tensor(e) => write!(f, "{e}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Tensor(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
impl From<TensorError> for IoError {
    fn from(e: TensorError) -> Self {
        IoError::Tensor(e)
    }
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, line: usize, what: &str) -> Result<T, IoError> {
    tok.ok_or_else(|| IoError::Parse { line, detail: format!("missing {what}") })?
        .parse::<T>()
        .map_err(|_| IoError::Parse { line, detail: format!("invalid {what}") })
}

/// Parses a value token, rejecting non-finite values. `"nan"` and `"inf"`
/// parse successfully as `f64`, so the finiteness check must be explicit —
/// a NaN smuggled in through a data file would otherwise defeat every
/// downstream numeric check.
fn parse_value(tok: Option<&str>, line: usize) -> Result<f64, IoError> {
    let v: f64 = parse(tok, line, "value")?;
    if !v.is_finite() {
        return Err(IoError::Parse { line, detail: format!("non-finite value `{v}`") });
    }
    Ok(v)
}

/// Reads a MatrixMarket coordinate file into a CSR matrix.
///
/// Supports the `matrix coordinate real/integer/pattern general/symmetric`
/// headers used by the SuiteSparse collection. Pattern entries get value
/// 1.0; symmetric files are expanded. Entries repeating a coordinate are
/// summed (as taco does), so parsing is deterministic regardless of file
/// order; non-finite values are rejected with their line number.
///
/// # Errors
///
/// Returns [`IoError`] on malformed input.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Csr, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines().enumerate();

    // Header.
    let (mut pattern, mut symmetric) = (false, false);
    let mut first_data: Option<(usize, String)> = None;
    for (n, line) in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("%%MatrixMarket") {
            let h = header.to_ascii_lowercase();
            if !h.contains("matrix") || !h.contains("coordinate") {
                return Err(IoError::Parse {
                    line: n + 1,
                    detail: "only `matrix coordinate` files are supported".into(),
                });
            }
            pattern = h.contains("pattern");
            symmetric = h.contains("symmetric") || h.contains("skew-symmetric");
            continue;
        }
        if trimmed.starts_with('%') {
            continue;
        }
        first_data = Some((n + 1, trimmed.to_string()));
        break;
    }
    let (size_line_no, size_line) =
        first_data.ok_or(IoError::Parse { line: 0, detail: "missing size line".into() })?;
    let mut toks = size_line.split_whitespace();
    let nrows: usize = parse(toks.next(), size_line_no, "row count")?;
    let ncols: usize = parse(toks.next(), size_line_no, "column count")?;
    let nnz: usize = parse(toks.next(), size_line_no, "nonzero count")?;

    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(nnz * 2);
    for (n, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let r: usize = parse(toks.next(), n + 1, "row index")?;
        let c: usize = parse(toks.next(), n + 1, "column index")?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(IoError::Parse { line: n + 1, detail: format!("index ({r},{c}) out of bounds") });
        }
        let v: f64 = if pattern { 1.0 } else { parse_value(toks.next(), n + 1)? };
        triplets.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
    }
    Ok(Csr::from_triplets(nrows, ncols, &triplets))
}

/// Writes a CSR matrix as a MatrixMarket coordinate file (general, real).
///
/// # Errors
///
/// Returns [`IoError`] on I/O failure.
pub fn write_matrix_market(path: impl AsRef<Path>, m: &Csr) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for i in 0..m.nrows() {
        let (cs, vs) = m.row(i);
        for (c, v) in cs.iter().zip(vs) {
            writeln!(w, "{} {} {}", i + 1, c + 1, v)?;
        }
    }
    Ok(())
}

/// Reads a FROSTT `.tns` file of the given order into a [`Tensor`] in the
/// all-compressed (CSF) format. Coordinates in `.tns` files are 1-based;
/// dimensions are inferred from the data. Entries repeating a coordinate are
/// summed (as taco does); non-finite values are rejected with their line
/// number.
///
/// # Errors
///
/// Returns [`IoError`] on malformed input or the wrong order.
pub fn read_tns(path: impl AsRef<Path>, order: usize) -> Result<Tensor, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut entries: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut dims = vec![0usize; order];
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        if toks.len() != order + 1 {
            return Err(IoError::Parse {
                line: n + 1,
                detail: format!("expected {} fields, found {}", order + 1, toks.len()),
            });
        }
        let mut coord = Vec::with_capacity(order);
        for (m, tok) in toks[..order].iter().enumerate() {
            let c: usize = parse(Some(tok), n + 1, "coordinate")?;
            if c == 0 {
                return Err(IoError::Parse { line: n + 1, detail: "coordinates are 1-based".into() });
            }
            dims[m] = dims[m].max(c);
            coord.push(c - 1);
        }
        let v: f64 = parse_value(Some(toks[order]), n + 1)?;
        entries.push((coord, v));
    }
    if entries.is_empty() {
        return Err(IoError::Parse { line: 0, detail: "empty tensor file".into() });
    }
    Ok(Tensor::from_entries(dims, crate::Format::compressed(order), entries)?)
}

/// Writes a rank-3 CSF tensor as a FROSTT `.tns` file.
///
/// # Errors
///
/// Returns [`IoError`] on I/O failure.
pub fn write_tns(path: impl AsRef<Path>, t: &Csf3) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    let tensor = t.to_tensor();
    for (coord, v) in tensor.entries() {
        writeln!(w, "{} {} {} {}", coord[0] + 1, coord[1] + 1, coord[2] + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_csf3, random_csr};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("taco_ws_io_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn matrix_market_round_trip() {
        let m = random_csr(20, 30, 0.1, 1);
        let path = tmp("mm_rt.mtx");
        write_matrix_market(&path, &m).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert!(m.approx_eq(&back, 1e-12));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_market_symmetric_and_pattern() {
        let path = tmp("mm_sym.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n3 3 2\n2 1\n3 3\n",
        )
        .unwrap();
        let m = read_matrix_market(&path).unwrap();
        // (2,1) expands to (1,2); (3,3) is diagonal.
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).0, &[1]);
        assert_eq!(m.row(1).0, &[0]);
        assert_eq!(m.row(2).0, &[2]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        let path = tmp("mm_bad.mtx");
        std::fs::write(&path, "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3.0\n")
            .unwrap();
        let err = read_matrix_market(&path).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_market_sums_duplicate_coordinates() {
        let path = tmp("mm_dup.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 2 1.5\n2 1 4.0\n1 2 2.5\n",
        )
        .unwrap();
        let m = read_matrix_market(&path).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0), (&[1usize][..], &[4.0][..]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_market_rejects_non_finite_values() {
        let path = tmp("mm_nan.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 nan\n",
        )
        .unwrap();
        let err = read_matrix_market(&path).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 4, .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tns_sums_duplicate_coordinates() {
        let path = tmp("dup.tns");
        std::fs::write(&path, "1 1 2 1.0\n2 1 1 3.0\n1 1 2 0.5\n").unwrap();
        let t = read_tns(&path, 3).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.to_dense().get(&[0, 0, 1]), 1.5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tns_rejects_non_finite_values() {
        let path = tmp("inf.tns");
        std::fs::write(&path, "1 1 1 2.0\n2 2 2 inf\n").unwrap();
        let err = read_tns(&path, 3).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tns_round_trip() {
        let t = random_csf3([5, 6, 7], 40, 2);
        let path = tmp("rt.tns");
        write_tns(&path, &t).unwrap();
        let back = read_tns(&path, 3).unwrap();
        // Dims are inferred, so compare entries.
        let expect = t.to_tensor();
        for ((c1, v1), (c2, v2)) in expect.entries().iter().zip(back.entries()) {
            assert_eq!(*c1, c2);
            assert!((v1 - v2).abs() < 1e-12);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tns_wrong_order_rejected() {
        let path = tmp("bad.tns");
        std::fs::write(&path, "1 2 3 4 5.0\n").unwrap();
        assert!(matches!(read_tns(&path, 3), Err(IoError::Parse { .. })));
        std::fs::remove_file(path).ok();
    }
}
