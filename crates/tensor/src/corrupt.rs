//! Systematic tensor corruption for fault-injection testing.
//!
//! Robustness of the compilation pipeline is defined by a contract: any
//! corrupted operand must produce a typed error from [`Tensor::validate`] (and
//! therefore from bind-time validation), never a panic, hang, or unbounded
//! allocation further down. This module produces the corrupted operands. Each
//! [`Corruption`] mutates one storage field of a valid tensor the way real
//! corruption does — truncated arrays, shuffled or duplicated coordinates,
//! out-of-range offsets, non-finite values, shrunken dimensions.
//!
//! Tensors are rebuilt with [`Tensor::from_parts_unchecked`], so the mutations
//! bypass every constructor check; whether they are *caught* is exactly what
//! the fault-injection suite measures.
//!
//! # Example
//!
//! ```
//! use taco_tensor::{corrupt, Format, Tensor};
//!
//! let t = Tensor::from_entries(
//!     vec![2, 2],
//!     Format::csr(),
//!     vec![(vec![0, 1], 1.0), (vec![1, 0], 2.0)],
//! )?;
//! for (corruption, mutant) in corrupt::all_corruptions(&t) {
//!     assert!(mutant.validate().is_err(), "{corruption:?} must be detected");
//! }
//! # Ok::<(), taco_tensor::TensorError>(())
//! ```

use crate::{ModeStorage, Tensor};

/// A single-field storage mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Drop the last entry of a compressed level's `pos` array.
    TruncatePos(usize),
    /// Make a compressed level's `pos` array non-monotone.
    NonMonotonePos(usize),
    /// Push a compressed level's final `pos` bound past `crd.len()`.
    OverflowPos(usize),
    /// Reverse a multi-entry `crd` segment (unsorted coordinates).
    ShuffleCrd(usize),
    /// Duplicate a coordinate within a `crd` segment.
    DuplicateCrd(usize),
    /// Set a coordinate to the mode dimension (one past the last valid).
    OutOfBoundsCrd(usize),
    /// Drop the last value, breaking the positions/values agreement.
    TruncateVals,
    /// Replace a stored value with NaN.
    NanValue,
    /// Replace a stored value with +∞.
    InfValue,
    /// Shrink a mode dimension below its stored data.
    ShrinkDim(usize),
}

/// Applies `corruption` to a copy of `tensor`.
///
/// Returns `None` when the corruption does not apply (for example
/// [`Corruption::ShuffleCrd`] on a tensor with no multi-entry segment, or any
/// `crd` corruption on a dense level).
pub fn apply(tensor: &Tensor, corruption: Corruption) -> Option<Tensor> {
    let (mut shape, format, mut modes, mut vals) = tensor.clone().into_parts();
    match corruption {
        Corruption::TruncatePos(level) => {
            let (pos, _) = compressed(&mut modes, level)?;
            if pos.len() < 2 {
                return None;
            }
            pos.pop();
        }
        Corruption::NonMonotonePos(level) => {
            let (pos, _) = compressed(&mut modes, level)?;
            if pos.len() < 2 {
                return None;
            }
            let last = pos.len() - 1;
            pos[last - 1] = pos[last] + 1;
        }
        Corruption::OverflowPos(level) => {
            let (pos, _) = compressed(&mut modes, level)?;
            *pos.last_mut()? += 7;
        }
        Corruption::ShuffleCrd(level) => {
            let (pos, crd) = compressed(&mut modes, level)?;
            let seg = multi_entry_segment(pos)?;
            crd[seg.0..seg.1].reverse();
        }
        Corruption::DuplicateCrd(level) => {
            let (pos, crd) = compressed(&mut modes, level)?;
            let seg = multi_entry_segment(pos)?;
            crd[seg.0 + 1] = crd[seg.0];
        }
        Corruption::OutOfBoundsCrd(level) => {
            let dim = *shape.get(level)?;
            let (_, crd) = compressed(&mut modes, level)?;
            *crd.first_mut()? = dim;
        }
        Corruption::TruncateVals => {
            vals.pop()?;
        }
        Corruption::NanValue => {
            *vals.first_mut()? = f64::NAN;
        }
        Corruption::InfValue => {
            *vals.first_mut()? = f64::INFINITY;
        }
        Corruption::ShrinkDim(level) => {
            // Shrink far enough that stored data no longer fits: dense
            // storage keeps its original width and disagrees with the shape;
            // compressed storage is cut to its largest stored coordinate,
            // putting that coordinate out of bounds.
            let new_dim = match modes.get(level)? {
                ModeStorage::Dense { .. } => shape.get(level)?.checked_sub(1)?,
                ModeStorage::Compressed { crd, .. } => *crd.iter().max()?,
            };
            shape[level] = new_dim;
        }
    }
    Some(Tensor::from_parts_unchecked(shape, format, modes, vals))
}

/// Every applicable `(corruption, mutated tensor)` pair for `tensor`.
///
/// Covers each corruption kind at each level it applies to. The returned
/// tensors share `tensor`'s format and are all storage-invalid — callers
/// assert that [`Tensor::validate`] rejects them and that no pipeline entry
/// point panics on them.
pub fn all_corruptions(tensor: &Tensor) -> Vec<(Corruption, Tensor)> {
    let mut kinds = vec![
        Corruption::TruncateVals,
        Corruption::NanValue,
        Corruption::InfValue,
    ];
    for level in 0..tensor.rank() {
        kinds.extend([
            Corruption::TruncatePos(level),
            Corruption::NonMonotonePos(level),
            Corruption::OverflowPos(level),
            Corruption::ShuffleCrd(level),
            Corruption::DuplicateCrd(level),
            Corruption::OutOfBoundsCrd(level),
            Corruption::ShrinkDim(level),
        ]);
    }
    kinds
        .into_iter()
        .filter_map(|c| apply(tensor, c).map(|t| (c, t)))
        .collect()
}

/// The `pos`/`crd` arrays of a compressed level, or `None` if dense.
fn compressed(
    modes: &mut [ModeStorage],
    level: usize,
) -> Option<(&mut Vec<usize>, &mut Vec<usize>)> {
    match modes.get_mut(level)? {
        ModeStorage::Compressed { pos, crd } => Some((pos, crd)),
        ModeStorage::Dense { .. } => None,
    }
}

/// Bounds of the first segment holding at least two coordinates.
fn multi_entry_segment(pos: &[usize]) -> Option<(usize, usize)> {
    pos.windows(2).find(|w| w[1].checked_sub(w[0]).is_some_and(|n| n >= 2)).map(|w| (w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Format;

    fn sample_csr() -> Tensor {
        Tensor::from_entries(
            vec![3, 4],
            Format::csr(),
            vec![(vec![0, 1], 1.0), (vec![0, 3], 2.0), (vec![2, 0], 3.0)],
        )
        .unwrap()
    }

    fn sample_csf() -> Tensor {
        Tensor::from_entries(
            vec![2, 3, 4],
            Format::csf3(),
            vec![(vec![0, 1, 2], 1.0), (vec![0, 1, 3], 2.0), (vec![1, 0, 0], 3.0)],
        )
        .unwrap()
    }

    #[test]
    fn every_corruption_is_rejected_by_validate() {
        for t in [sample_csr(), sample_csf()] {
            assert!(t.validate().is_ok(), "sample must start valid");
            let mutants = all_corruptions(&t);
            assert!(mutants.len() >= 8, "expected broad coverage, got {}", mutants.len());
            for (c, mutant) in mutants {
                assert!(
                    mutant.validate().is_err(),
                    "corruption {c:?} slipped past validate()"
                );
            }
        }
    }

    #[test]
    fn inapplicable_corruptions_return_none() {
        let t = sample_csr();
        // Level 0 of CSR is dense: no pos/crd to corrupt there.
        assert!(apply(&t, Corruption::TruncatePos(0)).is_none());
        assert!(apply(&t, Corruption::ShuffleCrd(0)).is_none());
        // Out-of-range level.
        assert!(apply(&t, Corruption::TruncatePos(9)).is_none());
    }

    #[test]
    fn corruption_changes_exactly_the_targeted_field() {
        let t = sample_csr();
        let mutant = apply(&t, Corruption::NanValue).unwrap();
        assert_eq!(mutant.shape(), t.shape());
        assert_eq!(mutant.pos(1).unwrap(), t.pos(1).unwrap());
        assert_eq!(mutant.crd(1).unwrap(), t.crd(1).unwrap());
        assert!(mutant.vals()[0].is_nan());
        assert_eq!(&mutant.vals()[1..], &t.vals()[1..]);
    }
}
