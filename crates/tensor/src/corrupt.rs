//! Systematic tensor corruption for fault-injection testing.
//!
//! Robustness of the compilation pipeline is defined by a contract: any
//! corrupted operand must produce a typed error from [`Tensor::validate`] (and
//! therefore from bind-time validation), never a panic, hang, or unbounded
//! allocation further down. This module produces the corrupted operands. Each
//! [`Corruption`] mutates one storage field of a valid tensor the way real
//! corruption does — truncated arrays, shuffled or duplicated coordinates,
//! out-of-range offsets, non-finite values, shrunken dimensions.
//!
//! Tensors are rebuilt with [`Tensor::from_parts_unchecked`], so the mutations
//! bypass every constructor check; whether they are *caught* is exactly what
//! the fault-injection suite measures.
//!
//! # Example
//!
//! ```
//! use taco_tensor::{corrupt, Format, Tensor};
//!
//! let t = Tensor::from_entries(
//!     vec![2, 2],
//!     Format::csr(),
//!     vec![(vec![0, 1], 1.0), (vec![1, 0], 2.0)],
//! )?;
//! for (corruption, mutant) in corrupt::all_corruptions(&t) {
//!     assert!(mutant.validate().is_err(), "{corruption:?} must be detected");
//! }
//! # Ok::<(), taco_tensor::TensorError>(())
//! ```

use crate::{ModeStorage, Tensor};

/// A single-field storage mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Drop the last entry of a compressed level's `pos` array.
    TruncatePos(usize),
    /// Make a compressed level's `pos` array non-monotone.
    NonMonotonePos(usize),
    /// Push a compressed level's final `pos` bound past `crd.len()`.
    OverflowPos(usize),
    /// Reverse a multi-entry `crd` segment (unsorted coordinates).
    ShuffleCrd(usize),
    /// Duplicate a coordinate within a `crd` segment.
    DuplicateCrd(usize),
    /// Set a coordinate to the mode dimension (one past the last valid).
    OutOfBoundsCrd(usize),
    /// Drop the last value, breaking the positions/values agreement.
    TruncateVals,
    /// Replace a stored value with NaN.
    NanValue,
    /// Replace a stored value with +∞.
    InfValue,
    /// Shrink a mode dimension below its stored data.
    ShrinkDim(usize),
    /// Drop the last coordinate of a singleton level's `crd` array (COO
    /// parallel arrays out of step with their parent positions).
    TruncateSingletonCrd(usize),
    /// Set a singleton level's coordinate to the mode dimension.
    OutOfBoundsSingletonCrd(usize),
    /// Overwrite the second stored component's coordinates with the first
    /// component's at every level, making two stored components identical (a
    /// duplicate COO entry). Applies only to formats where every level
    /// stores one coordinate per component (COO-style chains).
    DuplicateComponent,
}

/// Applies `corruption` to a copy of `tensor`.
///
/// Returns `None` when the corruption does not apply (for example
/// [`Corruption::ShuffleCrd`] on a tensor with no multi-entry segment, or any
/// `crd` corruption on a dense level).
pub fn apply(tensor: &Tensor, corruption: Corruption) -> Option<Tensor> {
    let (mut shape, format, mut modes, mut vals) = tensor.clone().into_parts();
    match corruption {
        Corruption::TruncatePos(level) => {
            let (pos, _) = compressed(&mut modes, level)?;
            if pos.len() < 2 {
                return None;
            }
            pos.pop();
        }
        Corruption::NonMonotonePos(level) => {
            let (pos, _) = compressed(&mut modes, level)?;
            if pos.len() < 2 {
                return None;
            }
            let last = pos.len() - 1;
            pos[last - 1] = pos[last] + 1;
        }
        Corruption::OverflowPos(level) => {
            let (pos, _) = compressed(&mut modes, level)?;
            *pos.last_mut()? += 7;
        }
        Corruption::ShuffleCrd(level) => {
            // Unordered (hashed) levels accept any segment order, so the
            // shuffle would not be a corruption there.
            if !format.level(level).ok()?.is_ordered() {
                return None;
            }
            let (pos, crd) = compressed(&mut modes, level)?;
            let seg = multi_entry_segment(pos)?;
            if crd[seg.0..seg.1].iter().all(|c| *c == crd[seg.0]) {
                // Reversing an all-equal segment changes nothing.
                return None;
            }
            crd[seg.0..seg.1].reverse();
        }
        Corruption::DuplicateCrd(level) => {
            // Non-unique levels (above singletons) legally repeat
            // coordinates; the duplicate would not be a corruption there.
            let lt = format.level(level).ok()?;
            if lt != crate::LevelType::Hashed && !format.level_unique(level) {
                return None;
            }
            let (pos, crd) = compressed(&mut modes, level)?;
            let seg = multi_entry_segment(pos)?;
            crd[seg.0 + 1] = crd[seg.0];
        }
        Corruption::OutOfBoundsCrd(level) => {
            if level >= format.rank() {
                return None;
            }
            let dim = *shape.get(format.mode_of_level(level))?;
            let (_, crd) = compressed(&mut modes, level)?;
            *crd.first_mut()? = dim;
        }
        Corruption::TruncateVals => {
            vals.pop()?;
        }
        Corruption::NanValue => {
            *vals.first_mut()? = f64::NAN;
        }
        Corruption::InfValue => {
            *vals.first_mut()? = f64::INFINITY;
        }
        Corruption::ShrinkDim(level) => {
            // Shrink far enough that stored data no longer fits: dense
            // storage keeps its original width and disagrees with the shape;
            // compressed/singleton storage is cut to its largest stored
            // coordinate, putting that coordinate out of bounds.
            if level >= format.rank() {
                return None;
            }
            let mode = format.mode_of_level(level);
            let new_dim = match modes.get(level)? {
                ModeStorage::Dense { .. } => shape.get(mode)?.checked_sub(1)?,
                ModeStorage::Compressed { crd, .. } | ModeStorage::Singleton { crd } => {
                    *crd.iter().max()?
                }
            };
            shape[mode] = new_dim;
        }
        Corruption::TruncateSingletonCrd(level) => {
            let crd = singleton(&mut modes, level)?;
            crd.pop()?;
        }
        Corruption::OutOfBoundsSingletonCrd(level) => {
            if level >= format.rank() {
                return None;
            }
            let dim = *shape.get(format.mode_of_level(level))?;
            let crd = singleton(&mut modes, level)?;
            *crd.first_mut()? = dim;
        }
        Corruption::DuplicateComponent => {
            if vals.len() < 2 {
                return None;
            }
            for (l, m) in modes.iter_mut().enumerate() {
                match m {
                    ModeStorage::Compressed { crd, .. } if !format.level_unique(l) => {
                        crd[1] = crd[0];
                    }
                    ModeStorage::Singleton { crd } => {
                        crd[1] = crd[0];
                    }
                    // Dense or unique compressed levels do not store one
                    // coordinate per component; the corruption does not
                    // apply.
                    _ => return None,
                }
            }
        }
    }
    Some(Tensor::from_parts_unchecked(shape, format, modes, vals))
}

/// Every applicable `(corruption, mutated tensor)` pair for `tensor`.
///
/// Covers each corruption kind at each level it applies to. The returned
/// tensors share `tensor`'s format and are all storage-invalid — callers
/// assert that [`Tensor::validate`] rejects them and that no pipeline entry
/// point panics on them.
pub fn all_corruptions(tensor: &Tensor) -> Vec<(Corruption, Tensor)> {
    let mut kinds = vec![
        Corruption::TruncateVals,
        Corruption::NanValue,
        Corruption::InfValue,
        Corruption::DuplicateComponent,
    ];
    for level in 0..tensor.rank() {
        kinds.extend([
            Corruption::TruncatePos(level),
            Corruption::NonMonotonePos(level),
            Corruption::OverflowPos(level),
            Corruption::ShuffleCrd(level),
            Corruption::DuplicateCrd(level),
            Corruption::OutOfBoundsCrd(level),
            Corruption::ShrinkDim(level),
            Corruption::TruncateSingletonCrd(level),
            Corruption::OutOfBoundsSingletonCrd(level),
        ]);
    }
    kinds
        .into_iter()
        .filter_map(|c| apply(tensor, c).map(|t| (c, t)))
        .collect()
}

/// The `pos`/`crd` arrays of a compressed level, or `None` otherwise.
fn compressed(
    modes: &mut [ModeStorage],
    level: usize,
) -> Option<(&mut Vec<usize>, &mut Vec<usize>)> {
    match modes.get_mut(level)? {
        ModeStorage::Compressed { pos, crd } => Some((pos, crd)),
        ModeStorage::Dense { .. } | ModeStorage::Singleton { .. } => None,
    }
}

/// The `crd` array of a singleton level, or `None` otherwise.
fn singleton(modes: &mut [ModeStorage], level: usize) -> Option<&mut Vec<usize>> {
    match modes.get_mut(level)? {
        ModeStorage::Singleton { crd } => Some(crd),
        ModeStorage::Dense { .. } | ModeStorage::Compressed { .. } => None,
    }
}

/// Bounds of the first segment holding at least two coordinates.
fn multi_entry_segment(pos: &[usize]) -> Option<(usize, usize)> {
    pos.windows(2).find(|w| w[1].checked_sub(w[0]).is_some_and(|n| n >= 2)).map(|w| (w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Format;

    fn sample_csr() -> Tensor {
        Tensor::from_entries(
            vec![3, 4],
            Format::csr(),
            vec![(vec![0, 1], 1.0), (vec![0, 3], 2.0), (vec![2, 0], 3.0)],
        )
        .unwrap()
    }

    fn sample_csf() -> Tensor {
        Tensor::from_entries(
            vec![2, 3, 4],
            Format::csf3(),
            vec![(vec![0, 1, 2], 1.0), (vec![0, 1, 3], 2.0), (vec![1, 0, 0], 3.0)],
        )
        .unwrap()
    }

    fn sample_coo() -> Tensor {
        sample_csr().convert(Format::coo(2)).unwrap()
    }

    fn sample_bcsr() -> Tensor {
        Tensor::from_entries(
            vec![4, 4],
            Format::csr(),
            vec![(vec![0, 1], 1.0), (vec![2, 2], 2.0), (vec![3, 0], 3.0)],
        )
        .unwrap()
        .to_blocked(2, 2)
        .unwrap()
    }

    #[test]
    fn every_corruption_is_rejected_by_validate() {
        for t in [sample_csr(), sample_csf(), sample_coo(), sample_bcsr()] {
            assert!(t.validate().is_ok(), "sample must start valid");
            let mutants = all_corruptions(&t);
            assert!(mutants.len() >= 8, "expected broad coverage, got {}", mutants.len());
            for (c, mutant) in mutants {
                assert!(
                    mutant.validate().is_err(),
                    "corruption {c:?} slipped past validate()"
                );
            }
        }
    }

    #[test]
    fn inapplicable_corruptions_return_none() {
        let t = sample_csr();
        // Level 0 of CSR is dense: no pos/crd to corrupt there.
        assert!(apply(&t, Corruption::TruncatePos(0)).is_none());
        assert!(apply(&t, Corruption::ShuffleCrd(0)).is_none());
        // Out-of-range level.
        assert!(apply(&t, Corruption::TruncatePos(9)).is_none());
        // Singleton corruptions do not apply to CSR.
        assert!(apply(&t, Corruption::TruncateSingletonCrd(1)).is_none());
        assert!(apply(&t, Corruption::DuplicateComponent).is_none());
    }

    #[test]
    fn singleton_corruptions_apply_to_coo() {
        let t = sample_coo();
        for c in [
            Corruption::TruncateSingletonCrd(1),
            Corruption::OutOfBoundsSingletonCrd(1),
            Corruption::DuplicateComponent,
        ] {
            let mutant = apply(&t, c).expect("corruption applies to COO");
            assert!(mutant.validate().is_err(), "{c:?} slipped past validate()");
        }
    }

    #[test]
    fn block_pointer_corruptions_apply_to_bcsr() {
        let t = sample_bcsr();
        for c in [
            Corruption::TruncatePos(1),
            Corruption::NonMonotonePos(1),
            Corruption::OverflowPos(1),
        ] {
            let mutant = apply(&t, c).expect("block-pointer corruption applies to BCSR");
            assert!(mutant.validate().is_err(), "{c:?} slipped past validate()");
        }
    }

    #[test]
    fn corruption_changes_exactly_the_targeted_field() {
        let t = sample_csr();
        let mutant = apply(&t, Corruption::NanValue).unwrap();
        assert_eq!(mutant.shape(), t.shape());
        assert_eq!(mutant.pos(1).unwrap(), t.pos(1).unwrap());
        assert_eq!(mutant.crd(1).unwrap(), t.crd(1).unwrap());
        assert!(mutant.vals()[0].is_nan());
        assert_eq!(&mutant.vals()[1..], &t.vals()[1..]);
    }
}
