//! Minimal `dlopen`/`dlsym`/`dlclose` FFI.
//!
//! Raw libc bindings rather than a crate dependency, consistent with the
//! repository's vendored-shims offline policy. Only what the backend
//! needs: open a shared object eagerly (`RTLD_NOW`, so missing symbols
//! fail at load instead of at call), resolve two symbols, close on drop.

use crate::NativeError;

#[cfg(unix)]
mod imp {
    use super::NativeError;
    use std::ffi::{c_char, c_int, c_void, CString};
    use std::path::Path;

    extern "C" {
        fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        fn dlclose(handle: *mut c_void) -> c_int;
        fn dlerror() -> *mut c_char;
    }

    const RTLD_NOW: c_int = 2;

    fn last_error() -> String {
        // dlerror returns NULL when no error is pending; it is cleared by
        // the call, so read it exactly once per failure.
        unsafe {
            let msg = dlerror();
            if msg.is_null() {
                "unknown dlopen error".to_string()
            } else {
                std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
            }
        }
    }

    /// An open shared object; closed on drop.
    #[derive(Debug)]
    pub struct DynLib {
        handle: *mut c_void,
    }

    // The handle is only used to resolve symbols at load time and to
    // close the library; glibc's dlopen family is thread-safe, and the
    // resolved kernel entry is a stateless C function operating purely on
    // the per-call context it is passed.
    unsafe impl Send for DynLib {}
    unsafe impl Sync for DynLib {}

    impl DynLib {
        /// Loads a shared object with eager symbol resolution.
        pub fn open(path: &Path) -> Result<DynLib, NativeError> {
            let cpath = CString::new(path.as_os_str().as_encoded_bytes())
                .map_err(|_| NativeError::LoadFailed("NUL byte in .so path".into()))?;
            let handle = unsafe { dlopen(cpath.as_ptr(), RTLD_NOW) };
            if handle.is_null() {
                return Err(NativeError::LoadFailed(last_error()));
            }
            Ok(DynLib { handle })
        }

        /// Resolves a symbol; the caller casts to the correct fn type.
        pub fn sym(&self, name: &str) -> Result<*mut c_void, NativeError> {
            let cname = CString::new(name)
                .map_err(|_| NativeError::LoadFailed("NUL byte in symbol name".into()))?;
            let p = unsafe { dlsym(self.handle, cname.as_ptr()) };
            if p.is_null() {
                return Err(NativeError::LoadFailed(format!(
                    "symbol `{name}` not found: {}",
                    last_error()
                )));
            }
            Ok(p)
        }
    }

    impl Drop for DynLib {
        fn drop(&mut self) {
            unsafe {
                dlclose(self.handle);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::NativeError;
    use std::ffi::c_void;
    use std::path::Path;

    /// Stub: dynamic loading is not wired up on this platform, so the
    /// backend reports itself unavailable and the engine stays on the
    /// interpreter.
    #[derive(Debug)]
    pub struct DynLib {}

    impl DynLib {
        /// Always fails on non-unix platforms.
        pub fn open(_path: &Path) -> Result<DynLib, NativeError> {
            Err(NativeError::Unavailable("dlopen is unix-only".into()))
        }

        /// Unreachable: `open` never succeeds here.
        pub fn sym(&self, _name: &str) -> Result<*mut c_void, NativeError> {
            Err(NativeError::Unavailable("dlopen is unix-only".into()))
        }
    }
}

pub use imp::DynLib;

impl DynLib {
    /// Opens `path` and verifies its exported ABI version matches the
    /// host's, refusing stale cache artifacts from older builds.
    pub fn open_checked(path: &std::path::Path) -> Result<DynLib, NativeError> {
        let lib = DynLib::open(path)?;
        let sym = lib.sym(taco_llir::ABI_VERSION_SYMBOL)?;
        let version_fn: unsafe extern "C" fn() -> i32 = unsafe { std::mem::transmute(sym) };
        let got = unsafe { version_fn() };
        if got != taco_llir::ABI_VERSION {
            return Err(NativeError::LoadFailed(format!(
                "ABI version mismatch: shared object has {got}, host expects {}",
                taco_llir::ABI_VERSION
            )));
        }
        Ok(lib)
    }
}
