//! Marshalling a [`Binding`] across the `taco_ctx` table ABI.
//!
//! The host owns every buffer: the kernel reads and writes binding arrays
//! in place and obtains fresh or grown storage only through the
//! `extern "C"` callbacks below, each of which charges the same
//! [`BudgetMeter`] the interpreter uses before touching memory. Faults
//! (division by zero, bounds violations, negative lengths) are recorded
//! host-side as the interpreter's typed [`RunError`]s, so the two
//! backends are observationally identical on both success and failure.
//!
//! A run is transactional like the interpreter's: parameter validation
//! happens before any array is moved out of the binding, writable arrays
//! are snapshotted and restored on abort, and scalar outputs commit only
//! on success.

use crate::dl::DynLib;
use std::ffi::c_void;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use taco_llir::{
    elem_bytes, AbiPlan, AllocSink, ArrayTy, ArrayVal, Binding, BudgetMeter, ParamKind,
    ResourceBudget, RunError, SUPERVISION_STRIDE,
};

// Status and element-type codes; must match taco_kernel.h.
const TACO_OK: i32 = 0;
const TACO_ERR_HOST: i32 = 1;
const TACO_ERR_DIV0: i32 = 2;
const TACO_ERR_OOB: i32 = 3;
const TACO_ERR_MAP_NEG_LEN: i32 = 4;

/// Mirror of `taco_map_state` in taco_kernel.h.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct TacoMapState {
    len: i64,
    charged: i64,
    kind: i32,
    pad_: i32,
}

/// Mirror of `struct taco_ctx` in taco_kernel.h; field order is the ABI.
#[repr(C)]
struct TacoCtx {
    host: *mut c_void,
    arr: *mut *mut c_void,
    arr_size: *mut i64,
    scalars: *const i64,
    scalar_out: *mut i64,
    maps: *mut TacoMapState,
    ticks_left: i64,
    status: i32,
    pad_: i32,
    alloc: unsafe extern "C" fn(*mut TacoCtx, i64, i32, i64) -> i32,
    grow: unsafe extern "C" fn(*mut TacoCtx, i64, i64) -> i32,
    poll: unsafe extern "C" fn(*mut TacoCtx) -> i32,
    map_charge: unsafe extern "C" fn(*mut TacoCtx, i64, i64, i64) -> i32,
    fault: unsafe extern "C" fn(*mut TacoCtx, i32, i64, i64, i64),
}

type EntryFn = unsafe extern "C" fn(*mut TacoCtx, i64, i64) -> i32;

/// Supervision hooks for one native run; the all-`None` default runs
/// unsupervised. Both hooks are observed at poll boundaries, i.e. within
/// one [`SUPERVISION_STRIDE`] of loop back-edges, matching the
/// interpreter's supervision latency.
#[derive(Default, Clone, Copy)]
pub struct NativeRunOptions<'a> {
    /// Cooperative cancellation flag.
    pub cancel: Option<&'a AtomicBool>,
    /// Wall-clock deadline as (run start, allowed duration).
    pub deadline: Option<(Instant, Duration)>,
}

/// What a successful native run consumed, for engine accounting and
/// benchmark reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeReport {
    /// Loop iterations executed (back-edges), identical to the
    /// interpreter's count for the same operands.
    pub iterations: u64,
    /// Bytes of output/workspace allocation charged against the budget.
    pub allocated_bytes: u64,
    /// Largest single array allocation charged (high-water mark).
    pub peak_single_bytes: u64,
    /// Largest map-workspace footprint charged (high-water mark).
    pub peak_map_bytes: u64,
}

/// A loaded, callable native kernel: the dlopen'd shared object, its
/// resolved entry point, and the [`AbiPlan`] describing how bindings map
/// onto the context tables.
#[derive(Debug)]
pub struct NativeKernel {
    // Field order matters: `entry` points into `lib`'s mapped pages, and
    // the library must stay open for as long as the pointer can be called.
    entry: EntryFn,
    #[allow(dead_code)] // keep-alive: dropping it would unmap `entry`
    lib: DynLib,
    plan: AbiPlan,
    so_path: PathBuf,
    /// Nanoseconds the C compiler took to build the shared object; `0`
    /// when the content-addressed cache already held the artifact.
    pub compile_nanos: u64,
}

// `entry` is a pure function of the context it is passed and `DynLib` is
// Send + Sync, so a kernel can be shared across engine threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NativeKernel>();
};

impl NativeKernel {
    pub(crate) fn new(
        lib: DynLib,
        entry: *mut c_void,
        plan: AbiPlan,
        so_path: PathBuf,
        compile_nanos: u64,
    ) -> NativeKernel {
        // SAFETY: `entry` was resolved from ENTRY_SYMBOL in a shared object
        // whose exported ABI version matched ours, so it has the EntryFn
        // signature by the ABI contract.
        let entry: EntryFn = unsafe { std::mem::transmute(entry) };
        NativeKernel { entry, lib, plan, so_path, compile_nanos }
    }

    /// The kernel name from the originating [`taco_llir::Executable`].
    pub fn name(&self) -> &str {
        &self.plan.name
    }

    /// Where the shared object lives in the on-disk cache.
    pub fn so_path(&self) -> &Path {
        &self.so_path
    }

    /// Runs the kernel against `binding`, like
    /// [`Executable::run_with_budget`](taco_llir::Executable::run_with_budget)
    /// plus the supervision hooks in `opts`.
    ///
    /// # Errors
    ///
    /// The same typed [`RunError`]s the interpreter produces, with
    /// identical payloads: binding errors before anything runs, then
    /// faults, budget trips, cancellation, or deadline expiry during the
    /// run — all of which leave the binding's arrays as they were bound.
    pub fn run(
        &self,
        binding: &mut Binding,
        budget: &ResourceBudget,
        opts: NativeRunOptions<'_>,
    ) -> Result<NativeReport, RunError> {
        let plan = &self.plan;

        // Validate every parameter before moving anything, so binding
        // errors leave the binding fully intact (interpreter contract).
        let mut scalars: Vec<i64> = Vec::with_capacity(plan.scalar_params.len());
        for (name, _) in &plan.scalar_params {
            scalars
                .push(binding.scalar(name).ok_or_else(|| RunError::MissingScalar(name.clone()))?);
        }
        for a in &plan.arrays {
            if a.kind.is_none() {
                continue;
            }
            match binding.array(&a.name) {
                None => return Err(RunError::MissingArray(a.name.clone())),
                Some(v) if val_ty(v) != a.ty => {
                    return Err(RunError::WrongArrayType { name: a.name.clone(), expected: a.ty })
                }
                Some(_) => {}
            }
        }

        // Snapshot writable parameters for rollback on abort.
        let mut snapshots: Vec<Option<ArrayVal>> = plan
            .arrays
            .iter()
            .map(|a| match a.kind {
                Some(ParamKind::Output) | Some(ParamKind::InOut) => binding.array(&a.name).cloned(),
                _ => None,
            })
            .collect();

        // Move parameter arrays out of the binding into the slot table;
        // non-parameter slots (kernel locals, hidden map backing) start
        // empty and are populated through the alloc/grow callbacks.
        let arrays: Vec<ArrayVal> = plan
            .arrays
            .iter()
            .map(|a| {
                if a.kind.is_some() {
                    binding.take(&a.name).expect("validated above")
                } else {
                    empty_of(a.ty)
                }
            })
            .collect();

        let meter = BudgetMeter::new(budget, plan.arrays.len());
        let grant = meter.grant_iterations(u64::from(SUPERVISION_STRIDE));
        let mut host = Host {
            plan,
            arrays,
            meter,
            error: None,
            grant,
            cancel: opts.cancel,
            deadline: opts.deadline,
        };

        let mut ptrs: Vec<*mut c_void> = Vec::with_capacity(plan.arrays.len());
        let mut sizes: Vec<i64> = Vec::with_capacity(plan.arrays.len());
        for v in host.arrays.iter_mut() {
            let (p, n) = raw_parts(v);
            ptrs.push(p);
            sizes.push(n);
        }
        let mut scalar_out = vec![0i64; plan.scalar_outputs.len()];
        let mut maps = vec![TacoMapState::default(); plan.maps.len()];

        let mut ctx = TacoCtx {
            host: (&mut host as *mut Host<'_>).cast(),
            arr: ptrs.as_mut_ptr(),
            arr_size: sizes.as_mut_ptr(),
            scalars: scalars.as_ptr(),
            scalar_out: scalar_out.as_mut_ptr(),
            maps: maps.as_mut_ptr(),
            ticks_left: grant as i64 - 1,
            status: TACO_OK,
            pad_: 0,
            alloc: alloc_cb,
            grow: grow_cb,
            poll: poll_cb,
            map_charge: map_charge_cb,
            fault: fault_cb,
        };

        // SAFETY: the context tables point at live, correctly-typed host
        // buffers for the whole call; the entry function honours the ABI
        // (checked at load) and only touches memory through those tables
        // and the callbacks.
        let rc = unsafe { (self.entry)(&mut ctx, 0, i64::MAX) };

        // Charge the back-edges of the final, partially-used grant. The
        // residual never exceeds what the fuse has left (the grant was
        // clamped to it), so this cannot fail on a healthy run.
        if ctx.ticks_left >= 0 {
            let residual = (host.grant - 1).saturating_sub(ctx.ticks_left as u64);
            if let Err(e) = host.meter.consume_iterations(residual) {
                host.error.get_or_insert(e);
            }
        }

        let failed = rc != TACO_OK || host.error.is_some();
        let mut arrays = host.arrays;
        for (slot, a) in plan.arrays.iter().enumerate() {
            if a.kind.is_none() {
                continue;
            }
            let ran = std::mem::replace(&mut arrays[slot], empty_of(a.ty));
            let back = if failed {
                snapshots[slot].take().unwrap_or(ran)
            } else {
                ran
            };
            binding.set_array(a.name.clone(), back);
        }

        if failed {
            return Err(host.error.take().unwrap_or_else(|| match rc {
                TACO_ERR_DIV0 => RunError::DivisionByZero,
                rc => RunError::Backend(format!("native kernel exited with status {rc}")),
            }));
        }
        for (pos, (name, _)) in plan.scalar_outputs.iter().enumerate() {
            binding.set_scalar_output(name.clone(), scalar_out[pos]);
        }
        Ok(NativeReport {
            iterations: host.meter.iterations_done(),
            allocated_bytes: host.meter.total_bytes(),
            peak_single_bytes: host.meter.peak_single_bytes(),
            peak_map_bytes: host.meter.peak_map_bytes(),
        })
    }
}

/// Host-side state the callbacks operate on, reached through `ctx->host`.
struct Host<'a> {
    plan: &'a AbiPlan,
    arrays: Vec<ArrayVal>,
    meter: BudgetMeter,
    /// First error recorded; sticky, later faults are ignored.
    error: Option<RunError>,
    /// Iterations granted in the current supervision batch.
    grant: u64,
    cancel: Option<&'a AtomicBool>,
    deadline: Option<(Instant, Duration)>,
}

impl Host<'_> {
    fn record(&mut self, e: RunError) {
        self.error.get_or_insert(e);
    }
}

fn val_ty(v: &ArrayVal) -> ArrayTy {
    match v {
        ArrayVal::Int(_) => ArrayTy::Int,
        ArrayVal::F64(_) => ArrayTy::F64,
        ArrayVal::F32(_) => ArrayTy::F32,
        ArrayVal::Bool(_) => ArrayTy::Bool,
    }
}

fn empty_of(ty: ArrayTy) -> ArrayVal {
    match ty {
        ArrayTy::Int => ArrayVal::Int(Vec::new()),
        ArrayTy::F64 => ArrayVal::F64(Vec::new()),
        ArrayTy::F32 => ArrayVal::F32(Vec::new()),
        ArrayTy::Bool => ArrayVal::Bool(Vec::new()),
    }
}

fn zeroed(ty: ArrayTy, len: usize) -> ArrayVal {
    match ty {
        ArrayTy::Int => ArrayVal::Int(vec![0; len]),
        ArrayTy::F64 => ArrayVal::F64(vec![0.0; len]),
        ArrayTy::F32 => ArrayVal::F32(vec![0.0; len]),
        ArrayTy::Bool => ArrayVal::Bool(vec![false; len]),
    }
}

fn raw_parts(v: &mut ArrayVal) -> (*mut c_void, i64) {
    match v {
        ArrayVal::Int(a) => (a.as_mut_ptr().cast(), a.len() as i64),
        ArrayVal::F64(a) => (a.as_mut_ptr().cast(), a.len() as i64),
        ArrayVal::F32(a) => (a.as_mut_ptr().cast(), a.len() as i64),
        ArrayVal::Bool(a) => (a.as_mut_ptr().cast(), a.len() as i64),
    }
}

/// Zero-filled in-place growth matching the interpreter's `Realloc`.
fn resize_zero(v: &mut ArrayVal, len: usize) {
    match v {
        ArrayVal::Int(a) if len > a.len() => a.resize(len, 0),
        ArrayVal::F64(a) if len > a.len() => a.resize(len, 0.0),
        ArrayVal::F32(a) if len > a.len() => a.resize(len, 0.0),
        ArrayVal::Bool(a) if len > a.len() => a.resize(len, false),
        _ => {}
    }
}

unsafe fn host_of<'a>(ctx: *mut TacoCtx) -> &'a mut Host<'a> {
    &mut *(*ctx).host.cast::<Host<'a>>()
}

/// Records a host-side error and tells the kernel to abort.
unsafe fn fail(ctx: *mut TacoCtx, e: RunError) -> i32 {
    host_of(ctx).record(e);
    if (*ctx).status == TACO_OK {
        (*ctx).status = TACO_ERR_HOST;
    }
    0
}

unsafe fn refresh_tables(ctx: *mut TacoCtx, slot: usize) {
    let host = host_of(ctx);
    let (p, n) = raw_parts(&mut host.arrays[slot]);
    *(*ctx).arr.add(slot) = p;
    *(*ctx).arr_size.add(slot) = n;
}

/// `ctx->alloc`: fresh zeroed storage for an array slot (`Alloc`).
unsafe extern "C" fn alloc_cb(ctx: *mut TacoCtx, slot: i64, ty: i32, len: i64) -> i32 {
    let host = host_of(ctx);
    let slot = slot as usize;
    let name = &host.plan.arrays[slot].name;
    if len < 0 {
        return fail(ctx, RunError::NegativeLength { name: name.clone(), len });
    }
    let ty = match ty {
        0 => ArrayTy::Int,
        1 => ArrayTy::F64,
        2 => ArrayTy::F32,
        _ => ArrayTy::Bool,
    };
    if !host.plan.arrays[slot].map_backing {
        let name = name.clone();
        if let Err(e) = host.meter.charge_array_bytes(&name, len as u64 * elem_bytes(ty)) {
            return fail(ctx, e);
        }
    }
    host.arrays[slot] = zeroed(ty, len as usize);
    refresh_tables(ctx, slot);
    1
}

/// `ctx->grow`: zero-filled growth of an array slot (`Realloc` and the
/// physical backing of map workspaces). Shrinking is a no-op, and map
/// backing charges nothing here — its budget model is `map_charge`.
unsafe extern "C" fn grow_cb(ctx: *mut TacoCtx, slot: i64, len: i64) -> i32 {
    let host = host_of(ctx);
    let slot = slot as usize;
    let name = host.plan.arrays[slot].name.clone();
    if len < 0 {
        return fail(ctx, RunError::NegativeLength { name, len });
    }
    let len = len as usize;
    let old = host.arrays[slot].len();
    if len <= old {
        return 1;
    }
    if !host.plan.arrays[slot].map_backing {
        let ty = val_ty(&host.arrays[slot]);
        if let Err(e) = host.meter.charge_array_bytes(&name, (len - old) as u64 * elem_bytes(ty)) {
            return fail(ctx, e);
        }
        if let Err(e) = host.meter.charge_realloc_doubling(slot, &name) {
            return fail(ctx, e);
        }
    }
    resize_zero(&mut host.arrays[slot], len);
    refresh_tables(ctx, slot);
    1
}

/// `ctx->poll`: the batched supervision check. Charges the grant that
/// just elapsed against the iteration fuse (tripping on exactly the same
/// iteration count as the interpreter's one-at-a-time accounting), then
/// observes cancellation and the deadline, then issues the next grant.
unsafe extern "C" fn poll_cb(ctx: *mut TacoCtx) -> i32 {
    let host = host_of(ctx);
    if let Err(e) = host.meter.consume_iterations(host.grant) {
        host.record(e);
        return 1;
    }
    if let Some(flag) = host.cancel {
        if flag.load(Ordering::Relaxed) {
            host.record(RunError::Cancelled);
            return 1;
        }
    }
    if let Some((start, limit)) = host.deadline {
        let elapsed = start.elapsed();
        if elapsed >= limit {
            host.record(RunError::DeadlineExceeded {
                deadline_ms: limit.as_millis() as u64,
                elapsed_ms: elapsed.as_millis() as u64,
            });
            return 1;
        }
    }
    host.grant = host.meter.grant_iterations(u64::from(SUPERVISION_STRIDE));
    (*ctx).ticks_left = host.grant as i64 - 1;
    0
}

/// `ctx->map_charge`: budget accounting for map-workspace capacity.
unsafe extern "C" fn map_charge_cb(
    ctx: *mut TacoCtx,
    map_slot: i64,
    footprint: i64,
    delta: i64,
) -> i32 {
    let host = host_of(ctx);
    let name = host.plan.maps[map_slot as usize].name.clone();
    match host.meter.charge_map_bytes(&name, footprint as u64, delta as u64) {
        Ok(()) => 1,
        Err(e) => fail(ctx, e),
    }
}

/// `ctx->fault`: a typed kernel-side fault (the kernel aborts right
/// after). Payloads match the interpreter's errors field-for-field.
unsafe extern "C" fn fault_cb(ctx: *mut TacoCtx, code: i32, slot: i64, a: i64, b: i64) {
    let host = host_of(ctx);
    let e = match code {
        TACO_ERR_DIV0 => RunError::DivisionByZero,
        TACO_ERR_OOB => RunError::OutOfBounds {
            name: host.plan.arrays[slot as usize].name.clone(),
            idx: a,
            len: b as usize,
        },
        TACO_ERR_MAP_NEG_LEN => RunError::NegativeLength {
            name: host.plan.maps[slot as usize].name.clone(),
            len: a,
        },
        other => RunError::Backend(format!("unknown native fault code {other}")),
    };
    host.record(e);
    if (*ctx).status == TACO_OK {
        (*ctx).status = code;
    }
}
