//! Native execution backend: compile-and-dlopen for emitted C kernels.
//!
//! The LLIR interpreter is the portable reference executor; this crate is
//! the machine-speed alternative. Given a compiled kernel's [`Executable`],
//! the pipeline is:
//!
//! 1. [`taco_llir::emit_native`] renders a self-contained C translation
//!    unit against the `taco_ctx` table ABI of `taco_kernel.h`, plus an
//!    [`AbiPlan`](taco_llir::AbiPlan) describing how bindings map onto the
//!    context tables.
//! 2. [`NativeCompiler`] invokes the system C compiler (`$CC`, falling
//!    back to `cc`) to build a shared object in a content-addressed
//!    on-disk cache keyed by kernel fingerprint + source hash + ABI
//!    version. Identical kernels across processes share one artifact.
//! 3. The shared object is loaded with raw `dlopen`/`dlsym`/`dlclose`
//!    FFI (no crate dependencies) and its exported `taco_abi_version()`
//!    is checked against the host's [`taco_llir::ABI_VERSION`].
//! 4. [`NativeKernel::run`] marshals a [`Binding`] into the context
//!    tables (zero-copy: the kernel works directly on the binding's
//!    buffers) and calls the fixed `taco_kernel_entry` symbol.
//!
//! # Supervision and budgets
//!
//! All memory is host-owned. The kernel allocates and grows arrays only
//! through `extern "C"` callbacks, which charge the same
//! [`BudgetMeter`](taco_llir::BudgetMeter) the interpreter uses — budget
//! aborts are byte-identical between backends. The loop-iteration fuse is
//! charged in supervision-stride batches through the poll callback, which
//! also observes the cancel flag and wall-clock deadline, so a native run
//! aborts on exactly the same iteration count as an interpreted one and
//! honours cancellation within one stride.
//!
//! # Failure is degradation, not error
//!
//! Every way this backend can fail to produce a runnable kernel — no C
//! compiler, probe failure, unsupported construct, compile or load error —
//! is an [`NativeError`] the engine converts into a typed fallback to the
//! interpreter, never a user-visible error.

#![warn(missing_docs)]
#![cfg_attr(not(unix), allow(dead_code))]

mod cc;
mod dl;
mod run;

pub use cc::{cache_dir, NativeCompiler};
pub use run::{NativeKernel, NativeReport, NativeRunOptions};

/// Why a native kernel could not be produced or loaded. All variants are
/// recoverable: the engine degrades to the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeError {
    /// No working C compiler (probe failed, `$CC` missing, or a platform
    /// without `dlopen`).
    Unavailable(String),
    /// The kernel uses a construct with no native equivalent.
    Unsupported(String),
    /// The C compiler rejected the emitted translation unit.
    CompileFailed(String),
    /// The shared object could not be loaded or has a stale ABI.
    LoadFailed(String),
}

impl std::fmt::Display for NativeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeError::Unavailable(why) => write!(f, "native backend unavailable: {why}"),
            NativeError::Unsupported(what) => write!(f, "kernel not natively executable: {what}"),
            NativeError::CompileFailed(why) => write!(f, "native compilation failed: {why}"),
            NativeError::LoadFailed(why) => write!(f, "shared object load failed: {why}"),
        }
    }
}

impl std::error::Error for NativeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    use taco_llir::{
        emit_native, ArrayTy, BudgetResource, Binding, Executable, Expr, Kernel, Param,
        ResourceBudget, RunError, Stmt, WorkspaceKind,
    };

    fn compiler() -> Option<NativeCompiler> {
        match NativeCompiler::from_env() {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("SKIPPED: {e}; native tests not run");
                None
            }
        }
    }

    fn build(kernel: &Kernel) -> Option<(NativeKernel, Executable)> {
        let cc = compiler()?;
        let exe = Executable::compile(kernel).unwrap();
        let src = emit_native(&exe).unwrap();
        let native = cc.compile(&src, 0xfee1_dead).expect("kernel compiles");
        Some((native, exe))
    }

    fn scale_kernel() -> Kernel {
        Kernel::new("scale")
            .scalar_param("n")
            .array_param(Param::input("x", ArrayTy::F64))
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![Stmt::for_(
                "i",
                Expr::int(0),
                Expr::var("n"),
                vec![Stmt::store(
                    "out",
                    Expr::var("i"),
                    Expr::float(2.0) * Expr::load("x", Expr::var("i")),
                )],
            )])
    }

    #[test]
    fn native_matches_interpreter_on_scale() {
        let Some((native, exe)) = build(&scale_kernel()) else { return };
        let mut nb = Binding::new();
        nb.set_scalar("n", 4);
        nb.set_f64("x", vec![1.0, 2.5, -3.0, 0.5]);
        nb.set_f64("out", vec![0.0; 4]);
        let mut ib = Binding::new();
        ib.set_scalar("n", 4);
        ib.set_f64("x", vec![1.0, 2.5, -3.0, 0.5]);
        ib.set_f64("out", vec![0.0; 4]);

        let report = native
            .run(&mut nb, &ResourceBudget::unlimited(), NativeRunOptions::default())
            .expect("native run");
        exe.run(&mut ib).expect("interp run");
        assert_eq!(nb.f64_array("out").unwrap(), ib.f64_array("out").unwrap());
        assert_eq!(report.iterations, 4);
    }

    #[test]
    fn iteration_fuse_aborts_identically() {
        let Some((native, exe)) = build(&scale_kernel()) else { return };
        let budget = ResourceBudget::unlimited().with_max_loop_iterations(3);
        let mut nb = Binding::new();
        nb.set_scalar("n", 100);
        nb.set_f64("x", vec![1.0; 100]);
        nb.set_f64("out", vec![0.0; 100]);
        let mut ib = Binding::new();
        ib.set_scalar("n", 100);
        ib.set_f64("x", vec![1.0; 100]);
        ib.set_f64("out", vec![0.0; 100]);

        let ne = native.run(&mut nb, &budget, NativeRunOptions::default()).unwrap_err();
        let ie = exe.run_with_budget(&mut ib, &budget).unwrap_err();
        assert_eq!(ne, ie, "budget abort payloads must be byte-identical");
        match ne {
            RunError::BudgetExceeded { resource, limit, requested, .. } => {
                assert_eq!(resource, BudgetResource::LoopIterations);
                assert_eq!((limit, requested), (3, 4));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn writable_arrays_roll_back_on_abort() {
        let Some((native, _)) = build(&scale_kernel()) else { return };
        let budget = ResourceBudget::unlimited().with_max_loop_iterations(2);
        let mut nb = Binding::new();
        nb.set_scalar("n", 10);
        nb.set_f64("x", vec![1.0; 10]);
        nb.set_f64("out", vec![9.0; 10]);
        native.run(&mut nb, &budget, NativeRunOptions::default()).unwrap_err();
        assert_eq!(
            nb.f64_array("out").unwrap(),
            &[9.0; 10],
            "aborted native run must leave outputs untouched"
        );
    }

    #[test]
    fn cancellation_observed_within_a_stride() {
        let Some((native, _)) = build(&scale_kernel()) else { return };
        let cancel = AtomicBool::new(true);
        let mut nb = Binding::new();
        nb.set_scalar("n", 1_000_000);
        nb.set_f64("x", vec![0.0; 1_000_000]);
        nb.set_f64("out", vec![0.0; 1_000_000]);
        let err = native
            .run(
                &mut nb,
                &ResourceBudget::unlimited(),
                NativeRunOptions { cancel: Some(&cancel), ..Default::default() },
            )
            .unwrap_err();
        assert_eq!(err, RunError::Cancelled);
        assert!(cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn expired_deadline_aborts() {
        let Some((native, _)) = build(&scale_kernel()) else { return };
        let mut nb = Binding::new();
        nb.set_scalar("n", 1_000_000);
        nb.set_f64("x", vec![0.0; 1_000_000]);
        nb.set_f64("out", vec![0.0; 1_000_000]);
        let start = Instant::now() - Duration::from_millis(50);
        let err = native
            .run(
                &mut nb,
                &ResourceBudget::unlimited(),
                NativeRunOptions {
                    deadline: Some((start, Duration::from_millis(1))),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, RunError::DeadlineExceeded { .. }), "{err:?}");
    }

    #[test]
    fn map_workspace_matches_interpreter() {
        // Scatter with duplicate keys, drain sorted into the output —
        // exercises map init/scatter/drain and the hidden backing slots.
        let kernel = Kernel::new("ws")
            .scalar_param("n")
            .array_param(Param::input("keys", ArrayTy::Int))
            .array_param(Param::input("vals", ArrayTy::F64))
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::MapInit {
                    map: "w".into(),
                    kind: WorkspaceKind::Hash,
                    capacity: Expr::int(2),
                },
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::MapScatter {
                        map: "w".into(),
                        key: Expr::load("keys", Expr::var("i")),
                        val: Expr::load("vals", Expr::var("i")),
                        add: true,
                    }],
                ),
                Stmt::MapDrainSorted {
                    map: "w".into(),
                    key: "k".into(),
                    val: "v".into(),
                    body: vec![Stmt::store_add("out", Expr::var("k"), Expr::var("v"))],
                },
            ]);
        let Some((native, exe)) = build(&kernel) else { return };
        let keys = vec![7i64, 3, 7, 0, 3, 7];
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut nb = Binding::new();
        nb.set_scalar("n", 6);
        nb.set_int("keys", keys.clone());
        nb.set_f64("vals", vals.clone());
        nb.set_f64("out", vec![0.0; 8]);
        let mut ib = Binding::new();
        ib.set_scalar("n", 6);
        ib.set_int("keys", keys);
        ib.set_f64("vals", vals);
        ib.set_f64("out", vec![0.0; 8]);
        native
            .run(&mut nb, &ResourceBudget::unlimited(), NativeRunOptions::default())
            .expect("native");
        exe.run(&mut ib).expect("interp");
        assert_eq!(nb.f64_array("out").unwrap(), ib.f64_array("out").unwrap());
    }

    #[test]
    fn division_by_zero_is_a_typed_fault() {
        let kernel = Kernel::new("div")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::Int))
            .body(vec![Stmt::store(
                "out",
                Expr::int(0),
                Expr::int(1) / Expr::var("n"),
            )]);
        let Some((native, exe)) = build(&kernel) else { return };
        let mut nb = Binding::new();
        nb.set_scalar("n", 0);
        nb.set_int("out", vec![0]);
        let mut ib = Binding::new();
        ib.set_scalar("n", 0);
        ib.set_int("out", vec![0]);
        let ne = native
            .run(&mut nb, &ResourceBudget::unlimited(), NativeRunOptions::default())
            .unwrap_err();
        let ie = exe.run(&mut ib).unwrap_err();
        assert_eq!(ne, ie);
        assert_eq!(ne, RunError::DivisionByZero);
    }

    #[test]
    fn out_of_bounds_store_is_a_typed_fault_not_memory_corruption() {
        let kernel = Kernel::new("oob")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![Stmt::store("out", Expr::var("n"), Expr::float(1.0))]);
        let Some((native, exe)) = build(&kernel) else { return };
        let mut nb = Binding::new();
        nb.set_scalar("n", 99);
        nb.set_f64("out", vec![0.0; 4]);
        let mut ib = Binding::new();
        ib.set_scalar("n", 99);
        ib.set_f64("out", vec![0.0; 4]);
        let ne = native
            .run(&mut nb, &ResourceBudget::unlimited(), NativeRunOptions::default())
            .unwrap_err();
        let ie = exe.run(&mut ib).unwrap_err();
        assert_eq!(ne, ie);
    }

    #[test]
    fn scalar_outputs_commit_only_on_success() {
        let kernel = Kernel::new("count")
            .scalar_param("n")
            .array_param(Param::input("x", ArrayTy::F64))
            .scalar_output("nnz")
            .body(vec![
                Stmt::DeclInt("nnz".into(), Expr::int(0)),
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::if_(
                        Expr::load("x", Expr::var("i")).ne(Expr::float(0.0)),
                        vec![Stmt::incr("nnz")],
                    )],
                ),
            ]);
        let Some((native, exe)) = build(&kernel) else { return };
        let mut nb = Binding::new();
        nb.set_scalar("n", 5);
        nb.set_f64("x", vec![1.0, 0.0, 2.0, 0.0, 3.0]);
        let mut ib = Binding::new();
        ib.set_scalar("n", 5);
        ib.set_f64("x", vec![1.0, 0.0, 2.0, 0.0, 3.0]);
        native
            .run(&mut nb, &ResourceBudget::unlimited(), NativeRunOptions::default())
            .expect("native");
        exe.run(&mut ib).expect("interp");
        assert_eq!(nb.scalar_output("nnz"), Some(3));
        assert_eq!(nb.scalar_output("nnz"), ib.scalar_output("nnz"));
    }

    #[test]
    fn allocation_budget_aborts_identically() {
        let kernel = Kernel::new("alloc")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::Alloc { arr: "w".into(), ty: ArrayTy::F64, len: Expr::var("n") },
                Stmt::store("out", Expr::int(0), Expr::load("w", Expr::int(0))),
            ]);
        let Some((native, exe)) = build(&kernel) else { return };
        let budget = ResourceBudget::unlimited().with_max_workspace_bytes(64);
        let mk = || {
            let mut b = Binding::new();
            b.set_scalar("n", 100);
            b.set_f64("out", vec![0.0]);
            b
        };
        let mut nb = mk();
        let mut ib = mk();
        let ne = native.run(&mut nb, &budget, NativeRunOptions::default()).unwrap_err();
        let ie = exe.run_with_budget(&mut ib, &budget).unwrap_err();
        assert_eq!(ne, ie, "AllocSink must make backends agree on budget aborts");
    }

    #[test]
    fn missing_compiler_is_unavailable() {
        let err = NativeCompiler::with_cc("/nonexistent/definitely-not-a-compiler")
            .expect_err("bogus compiler must not probe successfully");
        assert!(matches!(err, NativeError::Unavailable(_)), "{err:?}");
    }

    #[test]
    fn compile_cache_hits_on_second_build() {
        let Some(cc) = compiler() else { return };
        let exe = Executable::compile(&scale_kernel()).unwrap();
        let src = emit_native(&exe).unwrap();
        let fp = 0xabcd_0001u64;
        // The cache is content-addressed and shared across processes, so a
        // previous test run may have left the artifact behind; evict it so
        // the first build below is a genuine compile.
        if let Ok(entries) = std::fs::read_dir(cache_dir()) {
            let prefix = format!("k{fp:016x}");
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&prefix) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let first = cc.compile(&src, fp).expect("first build");
        let second = cc.compile(&src, fp).expect("cache hit");
        assert!(first.compile_nanos > 0);
        assert_eq!(second.compile_nanos, 0, "cache hit must skip the compiler");
    }
}
