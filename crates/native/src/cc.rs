//! System C compiler driver and content-addressed shared-object cache.
//!
//! The compiler is probed once at construction by building a trivial
//! shared object; a probe failure (including `CC=/nonexistent`) makes the
//! whole backend [`NativeError::Unavailable`] so the engine degrades to
//! the interpreter without ever invoking a broken toolchain per kernel.
//!
//! Artifacts are cached on disk keyed by kernel fingerprint, an FNV hash
//! of the full translation unit, and the ABI version — any change to the
//! kernel, the emitter, or the ABI produces a different file name, so
//! stale objects are never picked up. Writes are atomic (temp file +
//! rename) so concurrent processes race benignly.

use crate::dl::DynLib;
use crate::run::NativeKernel;
use crate::NativeError;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;
use taco_llir::{NativeSource, ABI_VERSION, ENTRY_SYMBOL};

/// The on-disk cache directory: `$TACO_NATIVE_CACHE` when set, otherwise
/// a versioned directory under the system temp dir.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os("TACO_NATIVE_CACHE") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir().join(format!("taco-native-cache-abi{ABI_VERSION}")),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A probed, ready-to-use C compiler plus the flag set it accepted.
#[derive(Debug, Clone)]
pub struct NativeCompiler {
    cc: String,
    flags: Vec<String>,
    cache: PathBuf,
}

impl NativeCompiler {
    /// Probes `$CC` (falling back to `cc`) by compiling a trivial shared
    /// object, and `-fopenmp` separately (kept only if supported).
    ///
    /// # Errors
    ///
    /// [`NativeError::Unavailable`] when no working compiler is found.
    pub fn from_env() -> Result<NativeCompiler, NativeError> {
        let cc = match std::env::var("CC") {
            Ok(v) if !v.is_empty() => v,
            _ => "cc".to_string(),
        };
        NativeCompiler::with_cc(&cc)
    }

    /// Probes a specific compiler binary. See [`NativeCompiler::from_env`].
    pub fn with_cc(cc: &str) -> Result<NativeCompiler, NativeError> {
        if !cfg!(unix) {
            return Err(NativeError::Unavailable("dlopen is unix-only".into()));
        }
        let cache = cache_dir();
        std::fs::create_dir_all(&cache).map_err(|e| {
            NativeError::Unavailable(format!("cannot create cache dir {}: {e}", cache.display()))
        })?;

        // -fwrapv / -fno-strict-aliasing pin down the C semantics the
        // emitter assumes (wrapping i64, type-punned host buffers); -lm
        // gives the .so its own libm dependency for fmod/fmin.
        let base: Vec<String> = ["-std=c11", "-O2", "-fPIC", "-shared", "-fwrapv",
            "-fno-strict-aliasing"]
        .iter()
        .map(|s| s.to_string())
        .collect();

        let probe_src = "int taco_probe(void) { return 42; }\n";
        if !try_compile(cc, &base, probe_src, &cache) {
            return Err(NativeError::Unavailable(format!(
                "C compiler `{cc}` failed to build a probe shared object"
            )));
        }
        let mut flags = base.clone();
        let mut with_omp = base;
        with_omp.push("-fopenmp".to_string());
        if try_compile(cc, &with_omp, probe_src, &cache) {
            flags.push("-fopenmp".to_string());
        }
        Ok(NativeCompiler { cc: cc.to_string(), flags, cache })
    }

    /// The probed compiler binary.
    pub fn cc(&self) -> &str {
        &self.cc
    }

    /// Compiles (or fetches from cache) the shared object for an emitted
    /// kernel and loads it. `fingerprint` is the kernel's cache identity
    /// from the engine; combined with the source hash it content-addresses
    /// the artifact.
    ///
    /// # Errors
    ///
    /// [`NativeError::CompileFailed`] when the compiler rejects the TU,
    /// [`NativeError::LoadFailed`] when the artifact cannot be dlopen'd
    /// or has a mismatched ABI version.
    pub fn compile(
        &self,
        source: &NativeSource,
        fingerprint: u64,
    ) -> Result<NativeKernel, NativeError> {
        let src_hash = fnv1a(source.c_source.as_bytes());
        let so_path = self
            .cache
            .join(format!("k{fingerprint:016x}-s{src_hash:016x}-abi{ABI_VERSION}.so"));

        let mut compile_nanos = 0u64;
        if !so_path.exists() {
            let started = Instant::now();
            self.build(&source.c_source, &so_path)?;
            compile_nanos = started.elapsed().as_nanos() as u64;
        }

        let lib = DynLib::open_checked(&so_path)?;
        let entry = lib.sym(ENTRY_SYMBOL)?;
        Ok(NativeKernel::new(lib, entry, source.plan.clone(), so_path, compile_nanos))
    }

    /// Runs the compiler on `c_source`, atomically installing the result
    /// at `so_path`.
    fn build(&self, c_source: &str, so_path: &Path) -> Result<(), NativeError> {
        let unique = format!(
            "{}-{:x}",
            std::process::id(),
            fnv1a(so_path.as_os_str().as_encoded_bytes())
        );
        let c_path = self.cache.join(format!("build-{unique}.c"));
        let tmp_so = self.cache.join(format!("build-{unique}.so.tmp"));
        std::fs::write(&c_path, c_source)
            .map_err(|e| NativeError::CompileFailed(format!("writing TU: {e}")))?;

        let out = Command::new(&self.cc)
            .args(&self.flags)
            .arg("-o")
            .arg(&tmp_so)
            .arg(&c_path)
            .arg("-lm")
            .output();
        let _ = std::fs::remove_file(&c_path);
        let out = match out {
            Ok(o) => o,
            Err(e) => {
                return Err(NativeError::CompileFailed(format!(
                    "spawning `{}`: {e}",
                    self.cc
                )))
            }
        };
        if !out.status.success() {
            let _ = std::fs::remove_file(&tmp_so);
            return Err(NativeError::CompileFailed(format!(
                "`{}` exited with {}: {}",
                self.cc,
                out.status,
                String::from_utf8_lossy(&out.stderr)
            )));
        }
        std::fs::rename(&tmp_so, so_path)
            .map_err(|e| NativeError::CompileFailed(format!("installing artifact: {e}")))?;
        Ok(())
    }
}

/// Compiles a throwaway TU to a throwaway .so; true on success.
fn try_compile(cc: &str, flags: &[String], src: &str, cache: &Path) -> bool {
    let unique = format!("probe-{}-{:x}", std::process::id(), fnv1a(flags.join(" ").as_bytes()));
    let c_path = cache.join(format!("{unique}.c"));
    let so_path = cache.join(format!("{unique}.so"));
    if std::fs::write(&c_path, src).is_err() {
        return false;
    }
    let ok = Command::new(cc)
        .args(flags)
        .arg("-o")
        .arg(&so_path)
        .arg(&c_path)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    let _ = std::fs::remove_file(&c_path);
    let _ = std::fs::remove_file(&so_path);
    ok
}
