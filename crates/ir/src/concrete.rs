//! Concrete index notation: the IR of Section IV of the paper.

use crate::expr::{Access, IndexExpr, IndexVar};
use std::fmt;

/// Assignment operator of a concrete assignment statement.
///
/// The paper allows any incrementing operator whose operation is associative
/// and distributes over multiplication; summation (`+=`) is the one required
/// by the paper's kernels and the one implemented here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// Plain assignment `=`.
    Assign,
    /// Incrementing assignment `+=`.
    Accum,
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignOp::Assign => write!(f, "="),
            AssignOp::Accum => write!(f, "+="),
        }
    }
}

/// A statement of concrete index notation (paper Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum ConcreteStmt {
    /// `lhs op rhs` — assigns or accumulates a scalar expression into one
    /// tensor component. The rhs contains no `Sum` nodes, and the lhs tensor
    /// may not appear in the rhs.
    Assign {
        /// Component being written.
        lhs: Access,
        /// `=` or `+=`.
        op: AssignOp,
        /// Scalar expression over accesses in scope.
        rhs: IndexExpr,
    },
    /// `∀ var body` — iterates `var` over a range inferred from the tensor
    /// dimensions it indexes.
    Forall {
        /// Bound index variable.
        var: IndexVar,
        /// Statement executed per iteration.
        body: Box<ConcreteStmt>,
        /// True if the schedule has marked this loop for parallel execution
        /// (see [`crate::transform::parallelize`]). Iterations must then be
        /// independent: any reduction not indexed by `var` has to be
        /// privatized by a `where` nested inside the body.
        parallel: bool,
    },
    /// `consumer where producer` — executes the producer first, storing
    /// sub-results in temporaries (workspaces) read by the consumer.
    Where {
        /// Statement that reads the temporary.
        consumer: Box<ConcreteStmt>,
        /// Statement that computes the temporary.
        producer: Box<ConcreteStmt>,
    },
    /// `first ; second` — statement sequencing with tensor updates allowed:
    /// tensors assigned in `first` may be updated by `second`.
    Sequence {
        /// First statement.
        first: Box<ConcreteStmt>,
        /// Second statement.
        second: Box<ConcreteStmt>,
    },
}

impl ConcreteStmt {
    /// Builds `∀ var body` (serial; see [`ConcreteStmt::forall_parallel`]).
    pub fn forall(var: impl Into<IndexVar>, body: ConcreteStmt) -> ConcreteStmt {
        ConcreteStmt::Forall { var: var.into(), body: Box::new(body), parallel: false }
    }

    /// Builds `∀∥ var body` — a forall annotated for parallel execution.
    ///
    /// Prefer [`crate::transform::parallelize`], which checks legality;
    /// this constructor is for code that has already established it.
    pub fn forall_parallel(var: impl Into<IndexVar>, body: ConcreteStmt) -> ConcreteStmt {
        ConcreteStmt::Forall { var: var.into(), body: Box::new(body), parallel: true }
    }

    /// Builds nested foralls `∀ v1 ∀ v2 ... body`.
    pub fn forall_chain<I>(vars: I, body: ConcreteStmt) -> ConcreteStmt
    where
        I: IntoIterator,
        I::Item: Into<IndexVar>,
        I::IntoIter: DoubleEndedIterator,
    {
        vars.into_iter().rev().fold(body, |b, v| ConcreteStmt::forall(v, b))
    }

    /// Builds `consumer where producer`.
    pub fn where_(consumer: ConcreteStmt, producer: ConcreteStmt) -> ConcreteStmt {
        ConcreteStmt::Where { consumer: Box::new(consumer), producer: Box::new(producer) }
    }

    /// Builds `first ; second`.
    pub fn sequence(first: ConcreteStmt, second: ConcreteStmt) -> ConcreteStmt {
        ConcreteStmt::Sequence { first: Box::new(first), second: Box::new(second) }
    }

    /// Builds an assignment statement.
    pub fn assign(lhs: Access, op: AssignOp, rhs: impl Into<IndexExpr>) -> ConcreteStmt {
        ConcreteStmt::Assign { lhs, op, rhs: rhs.into() }
    }

    /// True if the statement (transitively) contains a sequence statement.
    pub fn contains_sequence(&self) -> bool {
        match self {
            ConcreteStmt::Assign { .. } => false,
            ConcreteStmt::Forall { body, .. } => body.contains_sequence(),
            ConcreteStmt::Where { consumer, producer } => {
                consumer.contains_sequence() || producer.contains_sequence()
            }
            ConcreteStmt::Sequence { .. } => true,
        }
    }

    /// True if `var` indexes any tensor access in the statement.
    pub fn uses_var(&self, var: &IndexVar) -> bool {
        match self {
            ConcreteStmt::Assign { lhs, rhs, .. } => lhs.uses_var(var) || rhs.uses_var(var),
            ConcreteStmt::Forall { body, .. } => body.uses_var(var),
            ConcreteStmt::Where { consumer, producer } => {
                consumer.uses_var(var) || producer.uses_var(var)
            }
            ConcreteStmt::Sequence { first, second } => {
                first.uses_var(var) || second.uses_var(var)
            }
        }
    }

    /// True if tensor `name` is read or written anywhere in the statement.
    pub fn uses_tensor(&self, name: &str) -> bool {
        match self {
            ConcreteStmt::Assign { lhs, rhs, .. } => {
                lhs.tensor().name() == name || rhs.uses_tensor(name)
            }
            ConcreteStmt::Forall { body, .. } => body.uses_tensor(name),
            ConcreteStmt::Where { consumer, producer } => {
                consumer.uses_tensor(name) || producer.uses_tensor(name)
            }
            ConcreteStmt::Sequence { first, second } => {
                first.uses_tensor(name) || second.uses_tensor(name)
            }
        }
    }

    /// True if tensor `name` is read (appears in an rhs) in the statement.
    pub fn reads_tensor(&self, name: &str) -> bool {
        match self {
            ConcreteStmt::Assign { rhs, .. } => rhs.uses_tensor(name),
            ConcreteStmt::Forall { body, .. } => body.reads_tensor(name),
            ConcreteStmt::Where { consumer, producer } => {
                consumer.reads_tensor(name) || producer.reads_tensor(name)
            }
            ConcreteStmt::Sequence { first, second } => {
                first.reads_tensor(name) || second.reads_tensor(name)
            }
        }
    }

    /// Names of tensors written (assigned) by this statement.
    pub fn written_tensors(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let ConcreteStmt::Assign { lhs, .. } = s {
                let name = lhs.tensor().name().to_string();
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        });
        out
    }

    /// All assignment statements, in execution order.
    pub fn assignments(&self) -> Vec<&ConcreteStmt> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if matches!(s, ConcreteStmt::Assign { .. }) {
                out.push(s);
            }
        });
        out
    }

    /// Visits every statement node. Producers are visited before consumers
    /// (execution order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a ConcreteStmt)) {
        f(self);
        match self {
            ConcreteStmt::Assign { .. } => {}
            ConcreteStmt::Forall { body, .. } => body.visit(f),
            ConcreteStmt::Where { consumer, producer } => {
                producer.visit(f);
                consumer.visit(f);
            }
            ConcreteStmt::Sequence { first, second } => {
                first.visit(f);
                second.visit(f);
            }
        }
    }

    /// Returns a copy with index variable `from` renamed to `to` everywhere
    /// (forall binders and accesses).
    pub fn rename(&self, from: &IndexVar, to: &IndexVar) -> ConcreteStmt {
        match self {
            ConcreteStmt::Assign { lhs, op, rhs } => ConcreteStmt::Assign {
                lhs: lhs.rename(from, to),
                op: *op,
                rhs: rhs.rename(from, to),
            },
            ConcreteStmt::Forall { var, body, parallel } => ConcreteStmt::Forall {
                var: if var == from { to.clone() } else { var.clone() },
                body: Box::new(body.rename(from, to)),
                parallel: *parallel,
            },
            ConcreteStmt::Where { consumer, producer } => ConcreteStmt::Where {
                consumer: Box::new(consumer.rename(from, to)),
                producer: Box::new(producer.rename(from, to)),
            },
            ConcreteStmt::Sequence { first, second } => ConcreteStmt::Sequence {
                first: Box::new(first.rename(from, to)),
                second: Box::new(second.rename(from, to)),
            },
        }
    }

    /// The dimension (range) of `var`, inferred from the first access that
    /// uses it, as the paper infers forall ranges from tensor dimensions.
    pub fn var_dimension(&self, var: &IndexVar) -> Option<usize> {
        let mut dim = None;
        self.visit(&mut |s| {
            if dim.is_some() {
                return;
            }
            if let ConcreteStmt::Assign { lhs, rhs, .. } = s {
                for a in std::iter::once(lhs).chain(rhs.accesses()) {
                    if let Some(m) = a.mode_of(var) {
                        dim = Some(a.tensor().shape()[m]);
                        return;
                    }
                }
            }
        });
        dim
    }
}

impl fmt::Display for ConcreteStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteStmt::Assign { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            ConcreteStmt::Forall { var, body, parallel } => {
                // Collapse ∀i ∀j ... into ∀i ∀j prefix form; parallel
                // foralls render as ∀∥i.
                if *parallel {
                    write!(f, "∀∥{var} ")?;
                } else {
                    write!(f, "∀{var} ")?;
                }
                match body.as_ref() {
                    b @ ConcreteStmt::Forall { .. } => write!(f, "{b}"),
                    b @ ConcreteStmt::Assign { .. } => write!(f, "{b}"),
                    b => write!(f, "({b})"),
                }
            }
            ConcreteStmt::Where { consumer, producer } => {
                write!(f, "({consumer}) where ({producer})")
            }
            ConcreteStmt::Sequence { first, second } => write!(f, "{first} ; {second}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TensorVar;
    use taco_tensor::Format;

    fn matmul_stmt() -> ConcreteStmt {
        let a = TensorVar::new("A", vec![4, 4], Format::csr());
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
        ConcreteStmt::forall_chain(
            [i.clone(), k.clone(), j.clone()],
            ConcreteStmt::assign(
                a.access([i.clone(), j.clone()]),
                AssignOp::Accum,
                b.access([i, k.clone()]) * c.access([k, j]),
            ),
        )
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(matmul_stmt().to_string(), "∀i ∀k ∀j A(i,j) += B(i,k) * C(k,j)");
    }

    #[test]
    fn display_where() {
        let w = TensorVar::new("w", vec![4], Format::dvec());
        let a = TensorVar::new("A", vec![4, 4], Format::csr());
        let j = IndexVar::new("j");
        let s = ConcreteStmt::forall(
            "i",
            ConcreteStmt::where_(
                ConcreteStmt::forall(
                    "j",
                    ConcreteStmt::assign(
                        a.access(["i", "j"]),
                        AssignOp::Assign,
                        w.access([j.clone()]),
                    ),
                ),
                ConcreteStmt::forall(
                    "j",
                    ConcreteStmt::assign(w.access([j]), AssignOp::Accum, IndexExpr::Literal(1.0)),
                ),
            ),
        );
        assert_eq!(s.to_string(), "∀i ((∀j A(i,j) = w(j)) where (∀j w(j) += 1))");
    }

    #[test]
    fn uses_and_written() {
        let s = matmul_stmt();
        assert!(s.uses_var(&IndexVar::new("k")));
        assert!(!s.uses_var(&IndexVar::new("z")));
        assert!(s.uses_tensor("A"));
        assert!(s.reads_tensor("B"));
        assert!(!s.reads_tensor("A"));
        assert_eq!(s.written_tensors(), vec!["A".to_string()]);
    }

    #[test]
    fn contains_sequence_detection() {
        let s = matmul_stmt();
        assert!(!s.contains_sequence());
        let seq = ConcreteStmt::sequence(s.clone(), s);
        assert!(seq.contains_sequence());
    }

    #[test]
    fn var_dimension_inferred_from_access() {
        let s = matmul_stmt();
        assert_eq!(s.var_dimension(&IndexVar::new("i")), Some(4));
        assert_eq!(s.var_dimension(&IndexVar::new("z")), None);
    }

    #[test]
    fn rename_renames_binders_and_accesses() {
        let s = matmul_stmt();
        let r = s.rename(&IndexVar::new("j"), &IndexVar::new("jp"));
        assert_eq!(r.to_string(), "∀i ∀k ∀jp A(i,jp) += B(i,k) * C(k,jp)");
    }

    #[test]
    fn parallel_forall_displays_and_survives_rename() {
        let ConcreteStmt::Forall { var, body, .. } = matmul_stmt() else { unreachable!() };
        let s = ConcreteStmt::forall_parallel(var, *body);
        assert_eq!(s.to_string(), "∀∥i ∀k ∀j A(i,j) += B(i,k) * C(k,j)");
        let r = s.rename(&IndexVar::new("i"), &IndexVar::new("io"));
        assert_eq!(r.to_string(), "∀∥io ∀k ∀j A(io,j) += B(io,k) * C(k,j)");
    }
}
