//! Concretization: index notation → concrete index notation (Section VI).
//!
//! The paper's algorithm:
//!
//! 1. *Insert forall statements* for the index variables, free variables
//!    outside reduction variables.
//! 2. *Replace reduce expressions with where statements* whose producer
//!    reduces into a scalar variable.
//!
//! When the entire right-hand side is one (possibly nested) summation, the
//! scalar temporary is unnecessary — the reduction can accumulate directly
//! into the result with `+=`, which is the form every statement in the paper
//! takes (e.g. `∀ijk A(i,j) += B(i,k) * C(k,j)`). We apply that
//! simplification; summations nested *inside* additions or multiplications
//! get the scalar-temporary where statement.

use crate::concrete::{AssignOp, ConcreteStmt};
use crate::expr::{IndexExpr, IndexVar, TensorVar};
use crate::notation::IndexAssignment;
use crate::{IrError, Result};

/// Converts an index notation assignment to concrete index notation.
///
/// # Errors
///
/// Returns an error if the result tensor also appears on the right-hand
/// side, or a summation binds a variable that indexes the result.
///
/// # Example
///
/// ```
/// use taco_ir::concretize::concretize;
/// use taco_ir::expr::{sum, IndexVar, TensorVar};
/// use taco_ir::notation::IndexAssignment;
/// use taco_tensor::Format;
///
/// let (i, j) = (IndexVar::new("i"), IndexVar::new("j"));
/// let a = TensorVar::new("a", vec![4], Format::dvec());
/// let b = TensorVar::new("B", vec![4, 4], Format::csr());
/// let s = IndexAssignment::assign(
///     a.access([i.clone()]),
///     sum(j.clone(), b.access([i, j])),
/// );
/// assert_eq!(concretize(&s)?.to_string(), "∀i ∀j a(i) += B(i,j)");
/// # Ok::<(), taco_ir::IrError>(())
/// ```
pub fn concretize(stmt: &IndexAssignment) -> Result<ConcreteStmt> {
    let result_name = stmt.lhs().tensor().name();
    if stmt.rhs().uses_tensor(result_name) {
        return Err(IrError::InvalidIndexNotation(format!(
            "result tensor `{result_name}` may not appear on the right-hand side"
        )));
    }
    for v in stmt.free_vars() {
        let mut bound_by_sum = false;
        stmt.rhs().visit(&mut |e| {
            if let IndexExpr::Sum(sv, _) = e {
                if *sv == v {
                    bound_by_sum = true;
                }
            }
        });
        if bound_by_sum {
            return Err(IrError::InvalidIndexNotation(format!(
                "summation variable `{v}` also indexes the result"
            )));
        }
    }

    // Strip top-level summations: A = sum(k, sum(l, e)) becomes the
    // accumulating assignment ∀kl A += e.
    let mut rhs = stmt.rhs().clone();
    let mut top_reductions: Vec<IndexVar> = Vec::new();
    while let IndexExpr::Sum(v, inner) = rhs {
        top_reductions.push(v);
        rhs = *inner;
    }

    // Replace any remaining (inner) summations with scalar temporaries.
    let mut temp_count = 0usize;
    let (rhs, inner_wheres) = extract_inner_sums(&rhs, &mut temp_count);

    let op = if top_reductions.is_empty() { AssignOp::Assign } else { AssignOp::Accum };
    let mut body = ConcreteStmt::assign(stmt.lhs().clone(), op, rhs);

    // Inner reductions become `assign where (∀v t += e)` around the
    // assignment, innermost first.
    for (temp, vars, expr) in inner_wheres {
        let producer = ConcreteStmt::forall_chain(
            vars,
            ConcreteStmt::assign(temp.access(Vec::<IndexVar>::new()), AssignOp::Accum, expr),
        );
        body = ConcreteStmt::where_(body, producer);
    }

    // Forall nest: free variables (result mode order) outside reduction
    // variables (summation order).
    let mut order = stmt.free_vars();
    order.extend(top_reductions);
    Ok(ConcreteStmt::forall_chain(order, body))
}

/// Rewrites inner `Sum` nodes into scalar-temporary accesses, returning the
/// rewritten expression and, for each temporary, its reduction variables and
/// producer expression.
#[allow(clippy::type_complexity)]
fn extract_inner_sums(
    e: &IndexExpr,
    count: &mut usize,
) -> (IndexExpr, Vec<(TensorVar, Vec<IndexVar>, IndexExpr)>) {
    match e {
        IndexExpr::Sum(..) => {
            // Collapse consecutive nested sums into one temporary.
            let mut vars = Vec::new();
            let mut inner = e;
            while let IndexExpr::Sum(v, body) = inner {
                vars.push(v.clone());
                inner = body;
            }
            let (inner_rewritten, mut nested) = extract_inner_sums(inner, count);
            *count += 1;
            let temp = TensorVar::scalar(format!("t{count}"));
            nested.push((temp.clone(), vars, inner_rewritten));
            (IndexExpr::Access(temp.access(Vec::<IndexVar>::new())), nested)
        }
        IndexExpr::Access(_) | IndexExpr::Literal(_) => (e.clone(), Vec::new()),
        IndexExpr::Neg(a) => {
            let (ra, ws) = extract_inner_sums(a, count);
            (IndexExpr::Neg(Box::new(ra)), ws)
        }
        IndexExpr::Add(a, b) | IndexExpr::Sub(a, b) | IndexExpr::Mul(a, b) => {
            let (ra, mut wa) = extract_inner_sums(a, count);
            let (rb, wb) = extract_inner_sums(b, count);
            wa.extend(wb);
            let node = match e {
                IndexExpr::Add(..) => IndexExpr::Add(Box::new(ra), Box::new(rb)),
                IndexExpr::Sub(..) => IndexExpr::Sub(Box::new(ra), Box::new(rb)),
                _ => IndexExpr::Mul(Box::new(ra), Box::new(rb)),
            };
            (node, wa)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::sum;
    use taco_tensor::Format;

    fn vars3() -> (IndexVar, IndexVar, IndexVar) {
        (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"))
    }

    #[test]
    fn matmul_concretizes_to_ijk() {
        let (i, j, k) = vars3();
        let a = TensorVar::new("A", vec![4, 4], Format::csr());
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(k.clone(), b.access([i, k.clone()]) * c.access([k, j])),
        );
        // "The initial order of the loops is ijk (free index variables
        // first)" — Section III.
        assert_eq!(concretize(&s).unwrap().to_string(), "∀i ∀j ∀k A(i,j) += B(i,k) * C(k,j)");
    }

    #[test]
    fn pointwise_add_stays_assignment() {
        let (i, j, _) = vars3();
        let a = TensorVar::new("A", vec![4, 4], Format::csr());
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            b.access([i.clone(), j.clone()]) + c.access([i, j]),
        );
        assert_eq!(concretize(&s).unwrap().to_string(), "∀i ∀j A(i,j) = B(i,j) + C(i,j)");
    }

    #[test]
    fn mttkrp_nested_sums_flatten() {
        let (i, j, k) = vars3();
        let l = IndexVar::new("l");
        let a = TensorVar::new("A", vec![4, 4], Format::dense(2));
        let b = TensorVar::new("B", vec![4, 4, 4], Format::csf3());
        let c = TensorVar::new("C", vec![4, 4], Format::dense(2));
        let d = TensorVar::new("D", vec![4, 4], Format::dense(2));
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(
                k.clone(),
                sum(
                    l.clone(),
                    b.access([i, k.clone(), l.clone()]) * c.access([l, j.clone()]) * d.access([k, j]),
                ),
            ),
        );
        assert_eq!(
            concretize(&s).unwrap().to_string(),
            "∀i ∀j ∀k ∀l A(i,j) += B(i,k,l) * C(l,j) * D(k,j)"
        );
    }

    #[test]
    fn inner_sum_becomes_scalar_where() {
        // a(i) = B(i,j)-free expression with an embedded sum:
        // a(i) = d(i) + sum(j, B(i,j))
        let (i, j, _) = vars3();
        let a = TensorVar::new("a", vec![4], Format::dvec());
        let d = TensorVar::new("d", vec![4], Format::dvec());
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let s = IndexAssignment::assign(
            a.access([i.clone()]),
            IndexExpr::from(d.access([i.clone()])) + sum(j.clone(), b.access([i, j])),
        );
        let c = concretize(&s).unwrap();
        assert_eq!(c.to_string(), "∀i ((a(i) = d(i) + t1()) where (∀j t1() += B(i,j)))");
    }

    #[test]
    fn rejects_result_on_rhs() {
        let (i, _, _) = vars3();
        let a = TensorVar::new("a", vec![4], Format::dvec());
        let s = IndexAssignment::assign(
            a.access([i.clone()]),
            IndexExpr::from(a.access([i])) + IndexExpr::Literal(1.0),
        );
        assert!(matches!(concretize(&s), Err(IrError::InvalidIndexNotation(_))));
    }

    #[test]
    fn rejects_sum_over_free_var() {
        let (i, _, _) = vars3();
        let a = TensorVar::new("a", vec![4], Format::dvec());
        let b = TensorVar::new("b", vec![4], Format::dvec());
        let s = IndexAssignment::assign(a.access([i.clone()]), sum(i.clone(), b.access([i])));
        assert!(matches!(concretize(&s), Err(IrError::InvalidIndexNotation(_))));
    }
}
