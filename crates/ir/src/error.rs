use std::error::Error;
use std::fmt;

/// Errors produced by IR construction and transformation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrError {
    /// An access used the wrong number of index variables for its tensor.
    AccessRankMismatch {
        /// Tensor name.
        tensor: String,
        /// Rank of the tensor.
        rank: usize,
        /// Number of index variables supplied.
        vars: usize,
    },
    /// `reorder` was asked to exchange variables that are not in the same
    /// forall chain.
    NotInSameForallChain {
        /// First variable.
        a: String,
        /// Second variable.
        b: String,
    },
    /// A transformation is not defined on statements containing sequences
    /// (Section IV-B: "we require that all the statements being reordered do
    /// not contain sequence statements").
    ContainsSequence,
    /// The expression given to `precompute` was not found in the statement.
    ExpressionNotFound(String),
    /// The workspace transformation preconditions failed (Section V-A error
    /// case: an enclosing index variable is used on both sides but is not a
    /// workspace index variable, and distribution cannot stop there).
    CannotDistribute {
        /// The offending index variable.
        var: String,
    },
    /// Workspace tensor rank/dimensions do not match the precompute vars.
    WorkspaceShapeMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// The index variable is not used anywhere in the target statement.
    UnknownIndexVar(String),
    /// Result reuse requested (workspace == result tensor) but the rhs is not
    /// an addition the result can be accumulated through.
    ResultReuseNotApplicable,
    /// Concretization failed (e.g. a reduction variable also indexes the
    /// result).
    InvalidIndexNotation(String),
    /// `parallelize` was asked to parallelize a forall whose iterations
    /// carry a cross-iteration reduction into `tensor` that the workspace
    /// transformation has not privatized (no `where` inside the loop body
    /// produces it). Apply `precompute` first (Section V).
    ReductionNotPrivatized {
        /// The forall variable that cannot be parallelized.
        var: String,
        /// The tensor reduced into across iterations.
        tensor: String,
    },
    /// `with_format` named a tensor the statement never accesses.
    UnknownTensor(String),
    /// `with_format` supplied a format whose rank differs from the tensor's.
    FormatRankMismatch {
        /// Tensor name.
        tensor: String,
        /// Rank of the tensor.
        rank: usize,
        /// Rank of the requested format.
        format_rank: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::AccessRankMismatch { tensor, rank, vars } => {
                write!(f, "tensor `{tensor}` of rank {rank} accessed with {vars} index variables")
            }
            IrError::NotInSameForallChain { a, b } => {
                write!(f, "index variables `{a}` and `{b}` are not in the same forall chain")
            }
            IrError::ContainsSequence => {
                write!(f, "transformation is not defined on statements containing sequences")
            }
            IrError::ExpressionNotFound(e) => {
                write!(f, "expression `{e}` not found in the statement")
            }
            IrError::CannotDistribute { var } => write!(
                f,
                "cannot distribute forall over `{var}`: used on both sides of the where but not \
                 a workspace index variable"
            ),
            IrError::WorkspaceShapeMismatch { detail } => {
                write!(f, "workspace shape mismatch: {detail}")
            }
            IrError::UnknownIndexVar(v) => write!(f, "index variable `{v}` is not used in the statement"),
            IrError::ResultReuseNotApplicable => write!(
                f,
                "result reuse requires an addition whose partial results can be accumulated \
                 into the result"
            ),
            IrError::InvalidIndexNotation(d) => write!(f, "invalid index notation: {d}"),
            IrError::ReductionNotPrivatized { var, tensor } => write!(
                f,
                "cannot parallelize `{var}`: iterations reduce into `{tensor}`, which no \
                 workspace inside the loop privatizes — precompute it into a workspace first \
                 (Section V of the paper)"
            ),
            IrError::UnknownTensor(t) => {
                write!(f, "tensor `{t}` is not accessed in the statement")
            }
            IrError::FormatRankMismatch { tensor, rank, format_rank } => write!(
                f,
                "tensor `{tensor}` of rank {rank} cannot take a rank-{format_rank} format"
            ),
        }
    }
}

impl Error for IrError {}
