//! Index notation and *concrete index notation* — the tensor-algebra IRs of
//! *Tensor Algebra Compilation with Workspaces* (CGO 2019).
//!
//! The crate provides the two top layers of the paper's compiler stack
//! (Figure 6):
//!
//! * **Index notation** ([`expr::IndexExpr`], [`notation::IndexAssignment`]) —
//!   what to compute: `A(i,j) = sum(k, B(i,k) * C(k,j))`.
//! * **Concrete index notation** ([`concrete::ConcreteStmt`]) — how to compute
//!   it: loop order (*forall*), temporaries (*where*), staged updates
//!   (*sequence*), per the grammar in Figure 3 of the paper.
//!
//! and the transformations between and within them:
//!
//! * [`concretize`](concretize::concretize) — index notation → concrete index
//!   notation (Section VI),
//! * [`reorder`](transform::reorder) — exchanges foralls (Section IV-B),
//! * [`precompute`](transform::precompute) — the **workspace transformation**
//!   (Section V), including the result-reuse optimization (Section V-B),
//! * [`suggest`](heuristics::suggest) — the policy heuristics of Section V-C.
//!
//! # Example
//!
//! ```
//! use taco_ir::expr::{sum, IndexVar, TensorVar};
//! use taco_ir::notation::IndexAssignment;
//! use taco_ir::concretize::concretize;
//! use taco_tensor::Format;
//!
//! let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
//! let a = TensorVar::new("A", vec![4, 4], Format::csr());
//! let b = TensorVar::new("B", vec![4, 4], Format::csr());
//! let c = TensorVar::new("C", vec![4, 4], Format::csr());
//!
//! let matmul = IndexAssignment::assign(
//!     a.access([i.clone(), j.clone()]),
//!     sum(k.clone(), b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()])),
//! );
//! let concrete = concretize(&matmul)?;
//! assert_eq!(concrete.to_string(), "∀i ∀j ∀k A(i,j) += B(i,k) * C(k,j)");
//! # Ok::<(), taco_ir::IrError>(())
//! ```

#![warn(missing_docs)]

pub mod concrete;
pub mod concretize;
mod error;
pub mod expr;
pub mod heuristics;
pub mod notation;
pub mod transform;

pub use error::IrError;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, IrError>;
