//! Index variables, tensor variables, accesses and index expressions.

use crate::{IrError, Result};
use std::fmt;
use std::ops;
use std::sync::Arc;
use taco_tensor::Format;

/// An index variable such as `i`, `j`, `k` (paper Section III).
///
/// Index variables are interned by name: two `IndexVar`s with the same name
/// are the same variable. The name is reference-counted with `Arc` so that
/// statements, lowered kernels and compiled kernels built from them are
/// `Send + Sync` and can be shared across engine threads.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexVar(Arc<str>);

impl IndexVar {
    /// Creates (or references) the index variable with the given name.
    pub fn new(name: impl AsRef<str>) -> IndexVar {
        IndexVar(Arc::from(name.as_ref()))
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for IndexVar {
    fn from(s: &str) -> IndexVar {
        IndexVar::new(s)
    }
}

#[derive(Debug, PartialEq, Eq)]
struct TensorVarInner {
    name: String,
    shape: Vec<usize>,
    format: Format,
}

/// A tensor variable: a name, shape and storage format (paper Figure 2,
/// `TensorVar`).
///
/// Cloning is cheap (reference-counted with `Arc`, so `Send + Sync`).
/// Equality is structural over name, shape and format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorVar(Arc<TensorVarInner>);

impl TensorVar {
    /// Creates a tensor variable.
    pub fn new(name: impl Into<String>, shape: Vec<usize>, format: Format) -> TensorVar {
        let name = name.into();
        assert_eq!(shape.len(), format.rank(), "tensor `{name}`: shape/format rank mismatch");
        TensorVar(Arc::new(TensorVarInner { name, shape, format }))
    }

    /// Creates a rank-0 (scalar) tensor variable, used for reduction
    /// temporaries.
    pub fn scalar(name: impl Into<String>) -> TensorVar {
        TensorVar(Arc::new(TensorVarInner {
            name: name.into(),
            shape: Vec::new(),
            format: Format::new(Vec::new()),
        }))
    }

    /// The tensor name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.0.shape
    }

    /// Number of modes.
    pub fn rank(&self) -> usize {
        self.0.shape.len()
    }

    /// The storage format.
    pub fn format(&self) -> &Format {
        &self.0.format
    }

    /// Builds an access `T(vars...)` to this tensor.
    ///
    /// # Panics
    ///
    /// Panics if the number of variables does not match the tensor rank; use
    /// [`TensorVar::try_access`] for a fallible version.
    pub fn access<I>(&self, vars: I) -> Access
    where
        I: IntoIterator,
        I::Item: Into<IndexVar>,
    {
        self.try_access(vars).expect("access rank matches tensor rank")
    }

    /// Builds an access `T(vars...)`, checking the rank.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::AccessRankMismatch`] if the number of variables
    /// does not match the tensor rank.
    pub fn try_access<I>(&self, vars: I) -> Result<Access>
    where
        I: IntoIterator,
        I::Item: Into<IndexVar>,
    {
        let vars: Vec<IndexVar> = vars.into_iter().map(Into::into).collect();
        if vars.len() != self.rank() {
            return Err(IrError::AccessRankMismatch {
                tensor: self.name().to_string(),
                rank: self.rank(),
                vars: vars.len(),
            });
        }
        Ok(Access { tensor: self.clone(), vars })
    }
}

impl fmt::Display for TensorVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A tensor access `T(i, j, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    tensor: TensorVar,
    vars: Vec<IndexVar>,
}

impl Access {
    /// The accessed tensor.
    pub fn tensor(&self) -> &TensorVar {
        &self.tensor
    }

    /// The index variables, outermost mode first.
    pub fn vars(&self) -> &[IndexVar] {
        &self.vars
    }

    /// True if the access is indexed by `var`.
    pub fn uses_var(&self, var: &IndexVar) -> bool {
        self.vars.contains(var)
    }

    /// The mode (level) at which `var` indexes this tensor, if any.
    pub fn mode_of(&self, var: &IndexVar) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Returns a copy with every occurrence of `from` replaced by `to`.
    pub fn rename(&self, from: &IndexVar, to: &IndexVar) -> Access {
        Access {
            tensor: self.tensor.clone(),
            vars: self
                .vars
                .iter()
                .map(|v| if v == from { to.clone() } else { v.clone() })
                .collect(),
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.tensor.name())?;
        for (n, v) in self.vars.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A tensor index expression (paper Figure 3, `expr`).
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// A tensor access.
    Access(Access),
    /// A floating-point literal.
    Literal(f64),
    /// Negation.
    Neg(Box<IndexExpr>),
    /// Addition.
    Add(Box<IndexExpr>, Box<IndexExpr>),
    /// Subtraction.
    Sub(Box<IndexExpr>, Box<IndexExpr>),
    /// Multiplication.
    Mul(Box<IndexExpr>, Box<IndexExpr>),
    /// Reduction (summation) over an index variable. Only valid in index
    /// notation; concretization removes all `Sum` nodes.
    Sum(IndexVar, Box<IndexExpr>),
}

/// Builds a summation `sum(var, expr)` (paper Figure 2, `sum(k, mul)`).
pub fn sum(var: impl Into<IndexVar>, expr: impl Into<IndexExpr>) -> IndexExpr {
    IndexExpr::Sum(var.into(), Box::new(expr.into()))
}

impl IndexExpr {
    /// All accesses in the expression, left to right.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let IndexExpr::Access(a) = e {
                out.push(a);
            }
        });
        out
    }

    /// Visits every node of the expression tree, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a IndexExpr)) {
        f(self);
        match self {
            IndexExpr::Access(_) | IndexExpr::Literal(_) => {}
            IndexExpr::Neg(a) | IndexExpr::Sum(_, a) => a.visit(f),
            IndexExpr::Add(a, b) | IndexExpr::Sub(a, b) | IndexExpr::Mul(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// True if any access in the expression is indexed by `var`, or `var` is
    /// bound by a contained summation.
    pub fn uses_var(&self, var: &IndexVar) -> bool {
        let mut used = false;
        self.visit(&mut |e| match e {
            IndexExpr::Access(a) if a.uses_var(var) => used = true,
            IndexExpr::Sum(v, _) if v == var => used = true,
            _ => {}
        });
        used
    }

    /// True if the expression reads tensor `name`.
    pub fn uses_tensor(&self, name: &str) -> bool {
        self.accesses().iter().any(|a| a.tensor().name() == name)
    }

    /// Returns a copy with every occurrence of index variable `from`
    /// renamed to `to` (including summation binders).
    pub fn rename(&self, from: &IndexVar, to: &IndexVar) -> IndexExpr {
        match self {
            IndexExpr::Access(a) => IndexExpr::Access(a.rename(from, to)),
            IndexExpr::Literal(v) => IndexExpr::Literal(*v),
            IndexExpr::Neg(a) => IndexExpr::Neg(Box::new(a.rename(from, to))),
            IndexExpr::Add(a, b) => {
                IndexExpr::Add(Box::new(a.rename(from, to)), Box::new(b.rename(from, to)))
            }
            IndexExpr::Sub(a, b) => {
                IndexExpr::Sub(Box::new(a.rename(from, to)), Box::new(b.rename(from, to)))
            }
            IndexExpr::Mul(a, b) => {
                IndexExpr::Mul(Box::new(a.rename(from, to)), Box::new(b.rename(from, to)))
            }
            IndexExpr::Sum(v, a) => IndexExpr::Sum(
                if v == from { to.clone() } else { v.clone() },
                Box::new(a.rename(from, to)),
            ),
        }
    }

    /// Flattens a top-level multiplication chain into its factors.
    pub fn factors(&self) -> Vec<&IndexExpr> {
        match self {
            IndexExpr::Mul(a, b) => {
                let mut out = a.factors();
                out.extend(b.factors());
                out
            }
            other => vec![other],
        }
    }

    /// Flattens a top-level addition chain into its addends. `Sub` is not
    /// flattened.
    pub fn addends(&self) -> Vec<&IndexExpr> {
        match self {
            IndexExpr::Add(a, b) => {
                let mut out = a.addends();
                out.extend(b.addends());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuilds a multiplication chain from factors.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty.
    pub fn product_of(factors: Vec<IndexExpr>) -> IndexExpr {
        factors
            .into_iter()
            .reduce(|a, b| IndexExpr::Mul(Box::new(a), Box::new(b)))
            .expect("product of at least one factor")
    }

    /// Rebuilds an addition chain from addends.
    ///
    /// # Panics
    ///
    /// Panics if `addends` is empty.
    pub fn sum_of(addends: Vec<IndexExpr>) -> IndexExpr {
        addends
            .into_iter()
            .reduce(|a, b| IndexExpr::Add(Box::new(a), Box::new(b)))
            .expect("sum of at least one addend")
    }
}

impl From<Access> for IndexExpr {
    fn from(a: Access) -> IndexExpr {
        IndexExpr::Access(a)
    }
}

impl From<f64> for IndexExpr {
    fn from(v: f64) -> IndexExpr {
        IndexExpr::Literal(v)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl ops::$trait for IndexExpr {
            type Output = IndexExpr;
            fn $method(self, rhs: IndexExpr) -> IndexExpr {
                IndexExpr::$variant(Box::new(self), Box::new(rhs))
            }
        }
        impl ops::$trait<Access> for IndexExpr {
            type Output = IndexExpr;
            fn $method(self, rhs: Access) -> IndexExpr {
                IndexExpr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
        impl ops::$trait<IndexExpr> for Access {
            type Output = IndexExpr;
            fn $method(self, rhs: IndexExpr) -> IndexExpr {
                IndexExpr::$variant(Box::new(self.into()), Box::new(rhs))
            }
        }
        impl ops::$trait for Access {
            type Output = IndexExpr;
            fn $method(self, rhs: Access) -> IndexExpr {
                IndexExpr::$variant(Box::new(self.into()), Box::new(rhs.into()))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);

impl ops::Neg for IndexExpr {
    type Output = IndexExpr;
    fn neg(self) -> IndexExpr {
        IndexExpr::Neg(Box::new(self))
    }
}

fn prec(e: &IndexExpr) -> u8 {
    match e {
        IndexExpr::Add(..) | IndexExpr::Sub(..) => 1,
        IndexExpr::Mul(..) => 2,
        _ => 3,
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &IndexExpr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let p = prec(e);
            let parens = p < parent;
            if parens {
                write!(f, "(")?;
            }
            match e {
                IndexExpr::Access(a) => write!(f, "{a}")?,
                IndexExpr::Literal(v) => write!(f, "{v}")?,
                IndexExpr::Neg(a) => {
                    write!(f, "-")?;
                    go(a, 3, f)?;
                }
                IndexExpr::Add(a, b) => {
                    go(a, 1, f)?;
                    write!(f, " + ")?;
                    go(b, 2, f)?;
                }
                IndexExpr::Sub(a, b) => {
                    go(a, 1, f)?;
                    write!(f, " - ")?;
                    go(b, 2, f)?;
                }
                IndexExpr::Mul(a, b) => {
                    go(a, 2, f)?;
                    write!(f, " * ")?;
                    go(b, 3, f)?;
                }
                IndexExpr::Sum(v, a) => {
                    write!(f, "sum({v}, ")?;
                    go(a, 0, f)?;
                    write!(f, ")")?;
                }
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_tensor::Format;

    fn setup() -> (TensorVar, TensorVar, IndexVar, IndexVar, IndexVar) {
        let b = TensorVar::new("B", vec![4, 4], Format::csr());
        let c = TensorVar::new("C", vec![4, 4], Format::csr());
        (b, c, IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"))
    }

    #[test]
    fn display_matmul() {
        let (b, c, i, j, k) = setup();
        let e = b.access([i, k.clone()]) * c.access([k.clone(), j]);
        assert_eq!(e.to_string(), "B(i,k) * C(k,j)");
        let s = sum(k, e);
        assert_eq!(s.to_string(), "sum(k, B(i,k) * C(k,j))");
    }

    #[test]
    fn display_precedence() {
        let (b, c, i, j, _) = setup();
        let bij = b.access([i.clone(), j.clone()]);
        let cij = c.access([i, j]);
        let e = (IndexExpr::from(bij.clone()) + cij.clone()) * bij.clone();
        assert_eq!(e.to_string(), "(B(i,j) + C(i,j)) * B(i,j)");
        let e2 = IndexExpr::from(bij.clone()) + cij * bij;
        assert_eq!(e2.to_string(), "B(i,j) + C(i,j) * B(i,j)");
    }

    #[test]
    fn access_rank_checked() {
        let (b, _, i, _, _) = setup();
        assert!(b.try_access([i]).is_err());
    }

    #[test]
    fn uses_var_and_tensor() {
        let (b, c, i, j, k) = setup();
        let e = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
        assert!(e.uses_var(&i));
        assert!(e.uses_var(&k));
        assert!(e.uses_var(&j));
        assert!(!e.uses_var(&IndexVar::new("z")));
        assert!(e.uses_tensor("B"));
        assert!(!e.uses_tensor("A"));
    }

    #[test]
    fn rename_covers_sum_binders() {
        let (b, _, i, j, k) = setup();
        let e = sum(k.clone(), b.access([i, k.clone()]));
        let r = e.rename(&k, &j);
        assert_eq!(r.to_string(), "sum(j, B(i,j))");
    }

    #[test]
    fn factors_and_addends_flatten() {
        let (b, c, i, j, _) = setup();
        let bij: IndexExpr = b.access([i.clone(), j.clone()]).into();
        let cij: IndexExpr = c.access([i, j]).into();
        let prod = bij.clone() * cij.clone() * bij.clone();
        assert_eq!(prod.factors().len(), 3);
        let sum3 = bij.clone() + cij + bij;
        assert_eq!(sum3.addends().len(), 3);
        // Round trip
        let rebuilt = IndexExpr::product_of(prod.factors().into_iter().cloned().collect());
        assert_eq!(rebuilt, prod);
    }

    #[test]
    fn mode_of_reports_level() {
        let (b, _, i, _, k) = setup();
        let a = b.access([i.clone(), k.clone()]);
        assert_eq!(a.mode_of(&i), Some(0));
        assert_eq!(a.mode_of(&k), Some(1));
        assert_eq!(a.mode_of(&IndexVar::new("z")), None);
    }

    #[test]
    fn scalar_tensor_var() {
        let t = TensorVar::scalar("t");
        assert_eq!(t.rank(), 0);
        let acc = t.access(Vec::<IndexVar>::new());
        assert_eq!(acc.to_string(), "t()");
    }
}
