//! The reorder and workspace (precompute) transformations of Sections IV-B
//! and V of the paper.

use crate::concrete::{AssignOp, ConcreteStmt};
use crate::expr::{IndexExpr, IndexVar, TensorVar};
use crate::{IrError, Result};

// ---------------------------------------------------------------------------
// Reorder (Section IV-B)
// ---------------------------------------------------------------------------

/// Exchanges the positions of index variables `a` and `b` in the forall
/// chain that binds them (paper Section IV-B; scheduling method `reorder`
/// of Section III).
///
/// Exchanging foralls is semantically valid when the statement below
/// modifies its tensor with an assignment or an associative incrementing
/// assignment — true for every [`AssignOp`] — and the statement contains no
/// sequences.
///
/// # Errors
///
/// Returns an error if the two variables are not bound in the same forall
/// chain, or the chain's body contains a sequence statement.
pub fn reorder(stmt: &ConcreteStmt, a: &IndexVar, b: &IndexVar) -> Result<ConcreteStmt> {
    fn go(stmt: &ConcreteStmt, a: &IndexVar, b: &IndexVar) -> Result<Option<ConcreteStmt>> {
        match stmt {
            ConcreteStmt::Forall { .. } => {
                // Gather the maximal forall chain starting here.
                let mut vars = Vec::new();
                let mut cur = stmt;
                while let ConcreteStmt::Forall { var, body, .. } = cur {
                    vars.push(var.clone());
                    cur = body;
                }
                let pa = vars.iter().position(|v| v == a);
                let pb = vars.iter().position(|v| v == b);
                match (pa, pb) {
                    (Some(pa), Some(pb)) => {
                        if cur.contains_sequence() {
                            return Err(IrError::ContainsSequence);
                        }
                        vars.swap(pa, pb);
                        Ok(Some(ConcreteStmt::forall_chain(vars, cur.clone())))
                    }
                    (None, None) => match go(cur, a, b)? {
                        Some(body) => Ok(Some(ConcreteStmt::forall_chain(vars, body))),
                        None => Ok(None),
                    },
                    _ => Err(IrError::NotInSameForallChain {
                        a: a.name().to_string(),
                        b: b.name().to_string(),
                    }),
                }
            }
            ConcreteStmt::Where { consumer, producer } => {
                if let Some(c) = go(consumer, a, b)? {
                    return Ok(Some(ConcreteStmt::where_(c, (**producer).clone())));
                }
                if let Some(p) = go(producer, a, b)? {
                    return Ok(Some(ConcreteStmt::where_((**consumer).clone(), p)));
                }
                Ok(None)
            }
            ConcreteStmt::Sequence { first, second } => {
                if let Some(f) = go(first, a, b)? {
                    return Ok(Some(ConcreteStmt::sequence(f, (**second).clone())));
                }
                if let Some(s) = go(second, a, b)? {
                    return Ok(Some(ConcreteStmt::sequence((**first).clone(), s)));
                }
                Ok(None)
            }
            ConcreteStmt::Assign { .. } => Ok(None),
        }
    }
    go(stmt, a, b)?.ok_or_else(|| IrError::NotInSameForallChain {
        a: a.name().to_string(),
        b: b.name().to_string(),
    })
}

// ---------------------------------------------------------------------------
// Workspace transformation (Section V)
// ---------------------------------------------------------------------------

/// The workspace transformation (paper Section V-A), invoked through the
/// `precompute` scheduling method (Section III).
///
/// Rewrites the statement `∀_J A_K ⊕= E ⊗ F` that contains `target` (as the
/// whole right-hand side or a subset of its top-level factors) into
///
/// ```text
/// (∀ A_K ⊕= w_I ⊗ F) where (∀ w_I ⊕= E)
/// ```
///
/// pushing each surrounding forall into the consumer side, the producer
/// side, or both, from innermost to outermost. Distribution stops at the
/// first variable used on both sides that is not a workspace index variable;
/// the remaining foralls stay wrapped around the where statement.
///
/// Each `splits` triple `(old, consumer, producer)` names the variable being
/// precomputed over and the variables that replace it on the consumer and
/// producer sides (paper Section III). The set of `old` variables is the
/// workspace index set *I*; the workspace must have one mode per split with
/// dimensions matching the variable ranges.
///
/// If `workspace` names the *result* tensor of the assignment, the
/// result-reuse optimization (Section V-B) applies instead and the statement
/// becomes a sequence that accumulates into the result.
///
/// # Errors
///
/// Returns an error if the statement contains sequences, the target
/// expression is not found, the workspace shape does not match, or the
/// foralls cannot be distributed.
pub fn precompute(
    stmt: &ConcreteStmt,
    target: &IndexExpr,
    splits: &[(IndexVar, IndexVar, IndexVar)],
    workspace: &TensorVar,
) -> Result<ConcreteStmt> {
    if stmt.contains_sequence() {
        return Err(IrError::ContainsSequence);
    }

    // Result reuse: the workspace *is* the result (Section V-B).
    if written_by_match(stmt, workspace) {
        return result_reuse(stmt, target, workspace);
    }

    validate_workspace_shape(stmt, splits, workspace)?;

    let old_vars: Vec<IndexVar> = splits.iter().map(|s| s.0.clone()).collect();
    match walk(stmt, target, &old_vars, workspace)? {
        Walk::NotFound(_) => Err(IrError::ExpressionNotFound(target.to_string())),
        Walk::Pending { consumer, producer } => {
            finish(ConcreteStmt::where_(consumer, producer), splits, workspace)
        }
        Walk::Done(s) => finish(s, splits, workspace),
    }
}

/// True if the workspace tensor is the tensor written by the target
/// assignment (result reuse).
fn written_by_match(stmt: &ConcreteStmt, workspace: &TensorVar) -> bool {
    stmt.written_tensors().iter().any(|t| t == workspace.name())
}

fn validate_workspace_shape(
    stmt: &ConcreteStmt,
    splits: &[(IndexVar, IndexVar, IndexVar)],
    workspace: &TensorVar,
) -> Result<()> {
    if workspace.rank() != splits.len() {
        return Err(IrError::WorkspaceShapeMismatch {
            detail: format!(
                "workspace `{}` has rank {} but {} index variables were given",
                workspace.name(),
                workspace.rank(),
                splits.len()
            ),
        });
    }
    for (n, (old, _, _)) in splits.iter().enumerate() {
        let dim = stmt
            .var_dimension(old)
            .ok_or_else(|| IrError::UnknownIndexVar(old.name().to_string()))?;
        if workspace.shape()[n] < dim {
            return Err(IrError::WorkspaceShapeMismatch {
                detail: format!(
                    "workspace mode {n} has dimension {} but `{old}` ranges over {dim}",
                    workspace.shape()[n]
                ),
            });
        }
    }
    Ok(())
}

enum Walk {
    /// Subtree does not contain the target; unchanged copy.
    NotFound(ConcreteStmt),
    /// The where statement is being assembled; foralls still distribute.
    Pending { consumer: ConcreteStmt, producer: ConcreteStmt },
    /// The where statement is complete (distribution stopped).
    Done(ConcreteStmt),
}

fn walk(
    stmt: &ConcreteStmt,
    target: &IndexExpr,
    old_vars: &[IndexVar],
    workspace: &TensorVar,
) -> Result<Walk> {
    match stmt {
        ConcreteStmt::Assign { lhs, op, rhs } => {
            match split_rhs(rhs, target) {
                None => Ok(Walk::NotFound(stmt.clone())),
                Some(remainder) => {
                    // Consumer: A_K ⊕= w_I ⊗ F
                    let ws_access = workspace.try_access(old_vars.to_vec())?;
                    let consumer_rhs = match remainder {
                        Some(f) => IndexExpr::Access(ws_access) * f,
                        None => IndexExpr::Access(ws_access),
                    };
                    let consumer = ConcreteStmt::assign(lhs.clone(), *op, consumer_rhs);
                    // Producer: w_I ⊕= E
                    let producer = ConcreteStmt::assign(
                        workspace.try_access(old_vars.to_vec())?,
                        *op,
                        target.clone(),
                    );
                    Ok(Walk::Pending { consumer, producer })
                }
            }
        }
        ConcreteStmt::Forall { var, body, .. } => match walk(body, target, old_vars, workspace)? {
            Walk::NotFound(b) => Ok(Walk::NotFound(ConcreteStmt::forall(var.clone(), b))),
            Walk::Done(b) => Ok(Walk::Done(ConcreteStmt::forall(var.clone(), b))),
            Walk::Pending { consumer, producer } => {
                let in_c = consumer.uses_var(var);
                let in_p = producer.uses_var(var);
                if in_c && in_p {
                    if old_vars.contains(var) {
                        Ok(Walk::Pending {
                            consumer: ConcreteStmt::forall(var.clone(), consumer),
                            producer: ConcreteStmt::forall(var.clone(), producer),
                        })
                    } else {
                        // Stop: this variable stays wrapped around the where.
                        Ok(Walk::Done(ConcreteStmt::forall(
                            var.clone(),
                            ConcreteStmt::where_(consumer, producer),
                        )))
                    }
                } else if in_c {
                    Ok(Walk::Pending {
                        consumer: ConcreteStmt::forall(var.clone(), consumer),
                        producer,
                    })
                } else if in_p {
                    Ok(Walk::Pending {
                        consumer,
                        producer: ConcreteStmt::forall(var.clone(), producer),
                    })
                } else {
                    // Neither side uses the variable; keep it outside.
                    Ok(Walk::Done(ConcreteStmt::forall(
                        var.clone(),
                        ConcreteStmt::where_(consumer, producer),
                    )))
                }
            }
        },
        ConcreteStmt::Where { consumer, producer } => {
            match walk(consumer, target, old_vars, workspace)? {
                Walk::Pending { consumer: c, producer: p } => {
                    // The statement being transformed was this where's
                    // consumer. Attach the old producer to whichever new
                    // side reads its tensor (Section IV-B where-nesting
                    // equivalences).
                    let produced = producer.written_tensors();
                    let c_reads = produced.iter().any(|t| c.reads_tensor(t));
                    let p_reads = produced.iter().any(|t| p.reads_tensor(t));
                    match (c_reads, p_reads) {
                        (false, true) => Ok(Walk::Pending {
                            consumer: c,
                            producer: ConcreteStmt::where_(p, (**producer).clone()),
                        }),
                        (true, false) => Ok(Walk::Pending {
                            consumer: ConcreteStmt::where_(c, (**producer).clone()),
                            producer: p,
                        }),
                        (true, true) => Ok(Walk::Done(ConcreteStmt::where_(
                            ConcreteStmt::where_(c, p),
                            (**producer).clone(),
                        ))),
                        (false, false) => Ok(Walk::Pending {
                            consumer: ConcreteStmt::where_(c, (**producer).clone()),
                            producer: p,
                        }),
                    }
                }
                Walk::Done(c) => Ok(Walk::Done(ConcreteStmt::where_(c, (**producer).clone()))),
                Walk::NotFound(c) => match walk(producer, target, old_vars, workspace)? {
                    Walk::Pending { consumer: pc, producer: pp } => {
                        // The target lived in the producer side; the new
                        // where completes there.
                        Ok(Walk::Done(ConcreteStmt::where_(c, ConcreteStmt::where_(pc, pp))))
                    }
                    Walk::Done(p) => Ok(Walk::Done(ConcreteStmt::where_(c, p))),
                    Walk::NotFound(p) => Ok(Walk::NotFound(ConcreteStmt::where_(c, p))),
                },
            }
        }
        ConcreteStmt::Sequence { .. } => Err(IrError::ContainsSequence),
    }
}

/// Matches `target` against `rhs`. Returns `None` if not found;
/// `Some(None)` if the target is the entire rhs; `Some(Some(F))` if the rhs
/// is a product with the target's factors removed leaving `F`.
fn split_rhs(rhs: &IndexExpr, target: &IndexExpr) -> Option<Option<IndexExpr>> {
    if rhs == target {
        return Some(None);
    }
    let rhs_factors = rhs.factors();
    let target_factors = target.factors();
    if target_factors.len() >= rhs_factors.len() {
        return None;
    }
    // Remove the target's factors (as a multiset) from the rhs factors.
    let mut remaining: Vec<&IndexExpr> = rhs_factors;
    for tf in &target_factors {
        let pos = remaining.iter().position(|rf| rf == tf)?;
        remaining.remove(pos);
    }
    Some(Some(IndexExpr::product_of(remaining.into_iter().cloned().collect())))
}

/// Post-processing: rename split variables on each side, then apply the
/// assignment-operator simplifications of Section V-A.
fn finish(
    stmt: ConcreteStmt,
    splits: &[(IndexVar, IndexVar, IndexVar)],
    workspace: &TensorVar,
) -> Result<ConcreteStmt> {
    let renamed = rename_sides(&stmt, splits, workspace);
    let consumer_i: Vec<IndexVar> = splits.iter().map(|s| s.1.clone()).collect();
    let producer_i: Vec<IndexVar> = splits.iter().map(|s| s.2.clone()).collect();
    let mut out = renamed;
    convert_consumer_op(&mut out, workspace, &[]);
    convert_producer_op(&mut out, workspace, &consumer_i, &producer_i, &mut Vec::new(), false);
    Ok(out)
}

/// Renames `old` variables to the consumer variable inside consumer sides of
/// the new where and to the producer variable inside its producer side. The
/// "new where" is recognized as the one whose producer writes the workspace.
fn rename_sides(
    stmt: &ConcreteStmt,
    splits: &[(IndexVar, IndexVar, IndexVar)],
    workspace: &TensorVar,
) -> ConcreteStmt {
    match stmt {
        ConcreteStmt::Where { consumer, producer }
            if producer.written_tensors().iter().any(|t| t == workspace.name()) =>
        {
            let mut c = (**consumer).clone();
            let mut p = (**producer).clone();
            for (old, cv, pv) in splits {
                c = c.rename(old, cv);
                p = p.rename(old, pv);
            }
            ConcreteStmt::where_(c, p)
        }
        ConcreteStmt::Forall { var, body, .. } => {
            ConcreteStmt::forall(var.clone(), rename_sides(body, splits, workspace))
        }
        ConcreteStmt::Where { consumer, producer } => ConcreteStmt::where_(
            rename_sides(consumer, splits, workspace),
            rename_sides(producer, splits, workspace),
        ),
        other => other.clone(),
    }
}

/// Converts the consumer assignment `A_K ⊕= w ...` to a plain assignment
/// when every forall enclosing it binds a variable in K — i.e. each element
/// of A is incremented exactly once (Section V-A: "we can transform
/// `A_K ⊕= w_I` to `A_K = w_I` when K contains I").
fn convert_consumer_op(stmt: &mut ConcreteStmt, workspace: &TensorVar, enclosing: &[IndexVar]) {
    match stmt {
        ConcreteStmt::Assign { lhs, op, rhs } => {
            if *op == AssignOp::Accum
                && lhs.tensor().name() != workspace.name()
                && rhs.uses_tensor(workspace.name())
                && enclosing.iter().all(|v| lhs.uses_var(v))
            {
                *op = AssignOp::Assign;
            }
        }
        ConcreteStmt::Forall { var, body, .. } => {
            let mut inner = enclosing.to_vec();
            inner.push(var.clone());
            convert_consumer_op(body, workspace, &inner);
        }
        ConcreteStmt::Where { consumer, producer } => {
            convert_consumer_op(consumer, workspace, enclosing);
            convert_consumer_op(producer, workspace, enclosing);
        }
        ConcreteStmt::Sequence { first, second } => {
            convert_consumer_op(first, workspace, enclosing);
            convert_consumer_op(second, workspace, enclosing);
        }
    }
}

/// Converts the producer assignment `w_I ⊕= E` to a plain assignment when
/// every forall between the where and the assignment binds a workspace index
/// variable — i.e. each workspace element is written exactly once per where
/// execution.
fn convert_producer_op(
    stmt: &mut ConcreteStmt,
    workspace: &TensorVar,
    consumer_i: &[IndexVar],
    producer_i: &[IndexVar],
    since_where: &mut Vec<IndexVar>,
    in_producer: bool,
) {
    match stmt {
        ConcreteStmt::Assign { lhs, op, .. } => {
            if in_producer
                && *op == AssignOp::Accum
                && lhs.tensor().name() == workspace.name()
                && since_where.iter().all(|v| producer_i.contains(v) || consumer_i.contains(v))
            {
                *op = AssignOp::Assign;
            }
        }
        ConcreteStmt::Forall { var, body, .. } => {
            since_where.push(var.clone());
            convert_producer_op(body, workspace, consumer_i, producer_i, since_where, in_producer);
            since_where.pop();
        }
        ConcreteStmt::Where { consumer, producer } => {
            convert_producer_op(
                consumer,
                workspace,
                consumer_i,
                producer_i,
                since_where,
                in_producer,
            );
            let mut fresh = Vec::new();
            convert_producer_op(producer, workspace, consumer_i, producer_i, &mut fresh, true);
        }
        ConcreteStmt::Sequence { first, second } => {
            convert_producer_op(first, workspace, consumer_i, producer_i, since_where, in_producer);
            convert_producer_op(
                second,
                workspace,
                consumer_i,
                producer_i,
                since_where,
                in_producer,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Parallelize
// ---------------------------------------------------------------------------

/// Marks the forall binding `var` for parallel execution (the `parallelize`
/// scheduling directive).
///
/// Iterations of a parallel forall must be independent. An accumulation
/// whose left-hand side is not indexed by `var` is a cross-iteration
/// reduction — every iteration of `var` updates the same components — and
/// is only legal when the written tensor has been **privatized** by the
/// workspace transformation: produced by a `where` statement nested inside
/// the forall body, so each iteration materializes its own copy (the
/// paper's Section V workspaces are exactly this privatization). Writes
/// whose left-hand side is indexed by `var` land in disjoint slices and are
/// always legal.
///
/// `parallelize` should be applied *after* `reorder`/`precompute`: the
/// other transformations rebuild the forall chain and drop the annotation.
///
/// # Errors
///
/// Returns [`IrError::UnknownIndexVar`] if no forall binds `var`, and
/// [`IrError::ReductionNotPrivatized`] if the loop carries an unprivatized
/// cross-iteration reduction.
pub fn parallelize(stmt: &ConcreteStmt, var: &IndexVar) -> Result<ConcreteStmt> {
    fn go(stmt: &ConcreteStmt, var: &IndexVar) -> Result<Option<ConcreteStmt>> {
        match stmt {
            ConcreteStmt::Forall { var: v, body, parallel } => {
                if v == var {
                    check_independent(body, var, &mut Vec::new())?;
                    Ok(Some(ConcreteStmt::forall_parallel(v.clone(), (**body).clone())))
                } else {
                    Ok(go(body, var)?.map(|b| ConcreteStmt::Forall {
                        var: v.clone(),
                        body: Box::new(b),
                        parallel: *parallel,
                    }))
                }
            }
            ConcreteStmt::Where { consumer, producer } => {
                if let Some(c) = go(consumer, var)? {
                    return Ok(Some(ConcreteStmt::where_(c, (**producer).clone())));
                }
                if let Some(p) = go(producer, var)? {
                    return Ok(Some(ConcreteStmt::where_((**consumer).clone(), p)));
                }
                Ok(None)
            }
            ConcreteStmt::Sequence { first, second } => {
                if let Some(f) = go(first, var)? {
                    return Ok(Some(ConcreteStmt::sequence(f, (**second).clone())));
                }
                if let Some(s) = go(second, var)? {
                    return Ok(Some(ConcreteStmt::sequence((**first).clone(), s)));
                }
                Ok(None)
            }
            ConcreteStmt::Assign { .. } => Ok(None),
        }
    }

    /// Walks the body of the to-be-parallel forall over `var`, carrying the
    /// set of tensors privatized by enclosing `where` producers.
    fn check_independent(
        stmt: &ConcreteStmt,
        var: &IndexVar,
        privatized: &mut Vec<String>,
    ) -> Result<()> {
        match stmt {
            ConcreteStmt::Assign { lhs, op, .. } => {
                if *op == AssignOp::Accum
                    && !lhs.uses_var(var)
                    && !privatized.iter().any(|t| t == lhs.tensor().name())
                {
                    return Err(IrError::ReductionNotPrivatized {
                        var: var.name().to_string(),
                        tensor: lhs.tensor().name().to_string(),
                    });
                }
                Ok(())
            }
            ConcreteStmt::Forall { body, .. } => check_independent(body, var, privatized),
            ConcreteStmt::Where { consumer, producer } => {
                // Everything the producer writes is materialized afresh per
                // iteration of `var`: private to both sides of the where.
                let added = producer.written_tensors();
                let before = privatized.len();
                privatized.extend(added);
                check_independent(producer, var, privatized)?;
                check_independent(consumer, var, privatized)?;
                privatized.truncate(before);
                Ok(())
            }
            ConcreteStmt::Sequence { first, second } => {
                check_independent(first, var, privatized)?;
                check_independent(second, var, privatized)
            }
        }
    }

    go(stmt, var)?.ok_or_else(|| IrError::UnknownIndexVar(var.name().to_string()))
}

// ---------------------------------------------------------------------------
// Format retargeting
// ---------------------------------------------------------------------------

/// Rewrites every access to tensor `name` so its [`TensorVar`] carries
/// `format`, leaving shape and index variables unchanged. The candidate
/// enumerator uses this to race format-conversion schedules: the operand is
/// converted to `format` before the kernel runs, and the kernel is lowered
/// against the new level structure.
///
/// # Errors
///
/// Returns [`IrError::UnknownTensor`] if the statement never accesses
/// `name`, and [`IrError::FormatRankMismatch`] if the format's rank differs
/// from the tensor's.
pub fn with_format(
    stmt: &ConcreteStmt,
    name: &str,
    format: &taco_tensor::Format,
) -> Result<ConcreteStmt> {
    fn map_access(a: &crate::expr::Access, name: &str, nv: &TensorVar) -> crate::expr::Access {
        if a.tensor().name() == name {
            nv.access(a.vars().to_vec())
        } else {
            a.clone()
        }
    }
    fn map_expr(e: &IndexExpr, name: &str, nv: &TensorVar) -> IndexExpr {
        match e {
            IndexExpr::Access(a) => IndexExpr::Access(map_access(a, name, nv)),
            IndexExpr::Literal(v) => IndexExpr::Literal(*v),
            IndexExpr::Neg(x) => IndexExpr::Neg(Box::new(map_expr(x, name, nv))),
            IndexExpr::Add(a, b) => IndexExpr::Add(
                Box::new(map_expr(a, name, nv)),
                Box::new(map_expr(b, name, nv)),
            ),
            IndexExpr::Sub(a, b) => IndexExpr::Sub(
                Box::new(map_expr(a, name, nv)),
                Box::new(map_expr(b, name, nv)),
            ),
            IndexExpr::Mul(a, b) => IndexExpr::Mul(
                Box::new(map_expr(a, name, nv)),
                Box::new(map_expr(b, name, nv)),
            ),
            IndexExpr::Sum(v, x) => IndexExpr::Sum(v.clone(), Box::new(map_expr(x, name, nv))),
        }
    }
    fn map_stmt(s: &ConcreteStmt, name: &str, nv: &TensorVar) -> ConcreteStmt {
        match s {
            ConcreteStmt::Assign { lhs, op, rhs } => ConcreteStmt::assign(
                map_access(lhs, name, nv),
                *op,
                map_expr(rhs, name, nv),
            ),
            ConcreteStmt::Forall { var, body, parallel } => ConcreteStmt::Forall {
                var: var.clone(),
                body: Box::new(map_stmt(body, name, nv)),
                parallel: *parallel,
            },
            ConcreteStmt::Where { consumer, producer } => ConcreteStmt::where_(
                map_stmt(consumer, name, nv),
                map_stmt(producer, name, nv),
            ),
            ConcreteStmt::Sequence { first, second } => ConcreteStmt::sequence(
                map_stmt(first, name, nv),
                map_stmt(second, name, nv),
            ),
        }
    }

    let mut old: Option<TensorVar> = None;
    stmt.visit(&mut |s| {
        if let ConcreteStmt::Assign { lhs, rhs, .. } = s {
            for a in std::iter::once(lhs).chain(rhs.accesses()) {
                if a.tensor().name() == name && old.is_none() {
                    old = Some(a.tensor().clone());
                }
            }
        }
    });
    let old = old.ok_or_else(|| IrError::UnknownTensor(name.to_string()))?;
    if old.rank() != format.rank() {
        return Err(IrError::FormatRankMismatch {
            tensor: name.to_string(),
            rank: old.rank(),
            format_rank: format.rank(),
        });
    }
    let nv = TensorVar::new(name, old.shape().to_vec(), format.clone());
    Ok(map_stmt(stmt, name, &nv))
}

// ---------------------------------------------------------------------------
// Result reuse (Section V-B)
// ---------------------------------------------------------------------------

/// Splits an addition into a sequence that accumulates into the result:
/// `∀ a = E + R  ⇒  (∀ a ⊕= E ; ∀ a += R)`.
fn result_reuse(
    stmt: &ConcreteStmt,
    target: &IndexExpr,
    workspace: &TensorVar,
) -> Result<ConcreteStmt> {
    fn go(
        stmt: &ConcreteStmt,
        target: &IndexExpr,
        ws: &TensorVar,
    ) -> Result<Option<ConcreteStmt>> {
        match stmt {
            ConcreteStmt::Forall { .. } | ConcreteStmt::Assign { .. } => {
                // Gather the forall chain down to the assignment.
                let mut vars = Vec::new();
                let mut cur = stmt;
                while let ConcreteStmt::Forall { var, body, .. } = cur {
                    vars.push(var.clone());
                    cur = body;
                }
                let ConcreteStmt::Assign { lhs, op, rhs } = cur else {
                    return match cur {
                        ConcreteStmt::Where { consumer, producer } => {
                            match go_where(consumer, producer, target, ws)? {
                                Some(w) => Ok(Some(ConcreteStmt::forall_chain(vars, w))),
                                None => Ok(None),
                            }
                        }
                        _ => Ok(None),
                    };
                };
                if lhs.tensor().name() != ws.name() {
                    return Ok(None);
                }
                let addends = rhs.addends();
                let target_addends = target.addends();
                if target_addends.len() >= addends.len() {
                    return Err(IrError::ResultReuseNotApplicable);
                }
                let mut remaining: Vec<&IndexExpr> = addends;
                for t in &target_addends {
                    let Some(pos) = remaining.iter().position(|r| r == t) else {
                        return Err(IrError::ResultReuseNotApplicable);
                    };
                    remaining.remove(pos);
                }
                let rest = IndexExpr::sum_of(remaining.into_iter().cloned().collect());
                let first = ConcreteStmt::forall_chain(
                    vars.clone(),
                    ConcreteStmt::assign(lhs.clone(), *op, target.clone()),
                );
                let second = ConcreteStmt::forall_chain(
                    vars,
                    ConcreteStmt::assign(lhs.clone(), AssignOp::Accum, rest),
                );
                Ok(Some(ConcreteStmt::sequence(first, second)))
            }
            ConcreteStmt::Where { consumer, producer } => go_where(consumer, producer, target, ws),
            ConcreteStmt::Sequence { .. } => Err(IrError::ContainsSequence),
        }
    }

    fn go_where(
        consumer: &ConcreteStmt,
        producer: &ConcreteStmt,
        target: &IndexExpr,
        ws: &TensorVar,
    ) -> Result<Option<ConcreteStmt>> {
        if let Some(p) = go(producer, target, ws)? {
            return Ok(Some(ConcreteStmt::where_(consumer.clone(), p)));
        }
        if let Some(c) = go(consumer, target, ws)? {
            return Ok(Some(ConcreteStmt::where_(c, producer.clone())));
        }
        Ok(None)
    }

    go(stmt, target, workspace)?
        .ok_or_else(|| IrError::ExpressionNotFound(target.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::concretize;
    use crate::expr::sum;
    use crate::notation::IndexAssignment;
    use taco_tensor::Format;

    fn iv(n: &str) -> IndexVar {
        IndexVar::new(n)
    }

    fn matmul_concrete() -> (ConcreteStmt, IndexExpr, TensorVar) {
        let n = 16;
        let a = TensorVar::new("A", vec![n, n], Format::csr());
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j, k) = (iv("i"), iv("j"), iv("k"));
        let mul = b.access([i.clone(), k.clone()]) * c.access([k.clone(), j.clone()]);
        let s = IndexAssignment::assign(a.access([i, j]), sum(k, mul.clone()));
        let w = TensorVar::new("w", vec![n], Format::dvec());
        (concretize(&s).unwrap(), mul, w)
    }

    #[test]
    fn reorder_matmul_to_linear_combination_of_rows() {
        let (s, _, _) = matmul_concrete();
        assert_eq!(s.to_string(), "∀i ∀j ∀k A(i,j) += B(i,k) * C(k,j)");
        let r = reorder(&s, &iv("k"), &iv("j")).unwrap();
        assert_eq!(r.to_string(), "∀i ∀k ∀j A(i,j) += B(i,k) * C(k,j)");
    }

    #[test]
    fn reorder_unknown_var_errors() {
        let (s, _, _) = matmul_concrete();
        assert!(matches!(
            reorder(&s, &iv("k"), &iv("z")),
            Err(IrError::NotInSameForallChain { .. })
        ));
    }

    #[test]
    fn reorder_rejects_sequences() {
        // ∀y ∀z (seq) — exchanging y and z would reorder across a sequence.
        let (s, _, _) = matmul_concrete();
        let seq = ConcreteStmt::forall(
            "y",
            ConcreteStmt::forall("z", ConcreteStmt::sequence(s.clone(), s)),
        );
        assert_eq!(reorder(&seq, &iv("y"), &iv("z")), Err(IrError::ContainsSequence));
    }

    /// Section IV-A / Figure 1d: matrix multiplication with a dense row
    /// workspace.
    #[test]
    fn precompute_matmul_matches_paper() {
        let (s, mul, w) = matmul_concrete();
        let r = reorder(&s, &iv("k"), &iv("j")).unwrap();
        let jv = iv("j");
        let out = precompute(&r, &mul, &[(jv.clone(), jv.clone(), jv.clone())], &w).unwrap();
        assert_eq!(
            out.to_string(),
            "∀i ((∀j A(i,j) = w(j)) where (∀k ∀j w(j) += B(i,k) * C(k,j)))"
        );
    }

    /// Figure 2 variant: split j into jc (consumer) and jp (producer).
    #[test]
    fn precompute_with_split_vars_renames() {
        let (s, mul, w) = matmul_concrete();
        let r = reorder(&s, &iv("k"), &iv("j")).unwrap();
        let out = precompute(&r, &mul, &[(iv("j"), iv("jc"), iv("jp"))], &w).unwrap();
        assert_eq!(
            out.to_string(),
            "∀i ((∀jc A(i,jc) = w(jc)) where (∀k ∀jp w(jp) += B(i,k) * C(k,jp)))"
        );
    }

    /// Figure 4: precompute one factor of an intersection.
    #[test]
    fn precompute_factor_keeps_remainder_in_consumer() {
        let n = 16;
        let a = TensorVar::new("a", vec![n], Format::dvec());
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let bij: IndexExpr = b.access([i.clone(), j.clone()]).into();
        let s = IndexAssignment::assign(
            a.access([i.clone()]),
            sum(j.clone(), bij.clone() * c.access([i, j.clone()])),
        );
        let concrete = concretize(&s).unwrap();
        assert_eq!(concrete.to_string(), "∀i ∀j a(i) += B(i,j) * C(i,j)");
        let w = TensorVar::new("w", vec![n], Format::dvec());
        let out = precompute(&concrete, &bij, &[(j.clone(), j.clone(), j.clone())], &w).unwrap();
        assert_eq!(
            out.to_string(),
            "∀i ((∀j a(i) += w(j) * C(i,j)) where (∀j w(j) = B(i,j)))"
        );
    }

    /// Section VII, first MTTKRP transformation.
    #[test]
    fn precompute_mttkrp_hoists_loop_invariant_code() {
        let n = 8;
        let a = TensorVar::new("A", vec![n, n], Format::dense(2));
        let b = TensorVar::new("B", vec![n, n, n], Format::csf3());
        let c = TensorVar::new("C", vec![n, n], Format::dense(2));
        let d = TensorVar::new("D", vec![n, n], Format::dense(2));
        let (i, j, k, l) = (iv("i"), iv("j"), iv("k"), iv("l"));
        let bc = b.access([i.clone(), k.clone(), l.clone()]) * c.access([l.clone(), j.clone()]);
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(k.clone(), sum(l.clone(), bc.clone() * d.access([k.clone(), j.clone()]))),
        );
        let concrete = concretize(&s).unwrap();
        // Reorder ∀ijkl to ∀iklj (the order that traverses B's CSF
        // hierarchy).
        let r = reorder(&concrete, &iv("j"), &iv("k")).unwrap();
        let r = reorder(&r, &iv("j"), &iv("l")).unwrap();
        assert_eq!(r.to_string(), "∀i ∀k ∀l ∀j A(i,j) += B(i,k,l) * C(l,j) * D(k,j)");
        let w = TensorVar::new("w", vec![n], Format::dvec());
        let out = precompute(&r, &bc, &[(j.clone(), j.clone(), j.clone())], &w).unwrap();
        assert_eq!(
            out.to_string(),
            "∀i ∀k ((∀j A(i,j) += w(j) * D(k,j)) where (∀l ∀j w(j) += B(i,k,l) * C(l,j)))"
        );

        // Second transformation (sparse output): precompute w(j)*D(k,j)
        // into v.
        let v = TensorVar::new("v", vec![n], Format::dvec());
        let wd = IndexExpr::from(w.access([j.clone()])) * d.access([k.clone(), j.clone()]);
        let out2 = precompute(&out, &wd, &[(j.clone(), j.clone(), j.clone())], &v).unwrap();
        assert_eq!(
            out2.to_string(),
            "∀i ((∀j A(i,j) = v(j)) where (∀k ((∀j v(j) += w(j) * D(k,j)) where (∀l ∀j w(j) += B(i,k,l) * C(l,j)))))"
        );
    }

    /// Figure 5 / Section V-B: sparse matrix addition with result reuse.
    #[test]
    fn matrix_add_with_result_reuse() {
        let n = 16;
        let a = TensorVar::new("A", vec![n, n], Format::csr());
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let bij: IndexExpr = b.access([i.clone(), j.clone()]).into();
        let cij: IndexExpr = c.access([i.clone(), j.clone()]).into();
        let s = IndexAssignment::assign(a.access([i.clone(), j.clone()]), bij.clone() + cij.clone());
        let concrete = concretize(&s).unwrap();

        // First application: precompute B+C into w over j.
        let w = TensorVar::new("w", vec![n], Format::dvec());
        let sum_expr = bij.clone() + cij;
        let out = precompute(&concrete, &sum_expr, &[(j.clone(), j.clone(), j.clone())], &w).unwrap();
        assert_eq!(
            out.to_string(),
            "∀i ((∀j A(i,j) = w(j)) where (∀j w(j) = B(i,j) + C(i,j)))"
        );

        // Second application: precompute B into the workspace itself
        // (result reuse) — yields a sequence.
        let out2 = precompute(&out, &bij, &[], &w).unwrap();
        assert_eq!(
            out2.to_string(),
            "∀i ((∀j A(i,j) = w(j)) where (∀j w(j) = B(i,j) ; ∀j w(j) += C(i,j)))"
        );
    }

    /// Section V-B: dense vector addition reusing the result directly.
    #[test]
    fn vector_add_result_reuse() {
        let n = 16;
        let a = TensorVar::new("a", vec![n], Format::dvec());
        let b = TensorVar::new("b", vec![n], Format::svec());
        let c = TensorVar::new("c", vec![n], Format::svec());
        let i = iv("i");
        let bi: IndexExpr = b.access([i.clone()]).into();
        let s = IndexAssignment::assign(a.access([i.clone()]), bi.clone() + c.access([i.clone()]));
        let concrete = concretize(&s).unwrap();
        let out = precompute(&concrete, &bi, &[], &a).unwrap();
        assert_eq!(out.to_string(), "∀i a(i) = b(i) ; ∀i a(i) += c(i)");
    }

    #[test]
    fn precompute_missing_expression_errors() {
        let (s, _, w) = matmul_concrete();
        let z = TensorVar::new("Z", vec![16, 16], Format::csr());
        let bogus: IndexExpr = z.access([iv("i"), iv("j")]).into();
        let jv = iv("j");
        assert!(matches!(
            precompute(&s, &bogus, &[(jv.clone(), jv.clone(), jv.clone())], &w),
            Err(IrError::ExpressionNotFound(_))
        ));
    }

    #[test]
    fn parallelize_workspace_spgemm_outer_loop() {
        // Figure 2 schedule: the workspace privatizes w per i, so ∀i is
        // embarrassingly parallel.
        let (s, mul, w) = matmul_concrete();
        let r = reorder(&s, &iv("k"), &iv("j")).unwrap();
        let jv = iv("j");
        let ws = precompute(&r, &mul, &[(jv.clone(), jv.clone(), jv.clone())], &w).unwrap();
        let p = parallelize(&ws, &iv("i")).unwrap();
        assert_eq!(
            p.to_string(),
            "∀∥i ((∀j A(i,j) = w(j)) where (∀k ∀j w(j) += B(i,k) * C(k,j)))"
        );
    }

    #[test]
    fn parallelize_rejects_unprivatized_reduction() {
        // ∀i ∀j ∀k A(i,j) += ...: k carries the reduction into A, which no
        // workspace privatizes.
        let (s, _, _) = matmul_concrete();
        assert_eq!(
            parallelize(&s, &iv("k")),
            Err(IrError::ReductionNotPrivatized { var: "k".into(), tensor: "A".into() })
        );
        // The workspace form privatizes w against i but not against k: the
        // where sits outside ∀k, so all k iterations share one w.
        let (s, mul, w) = matmul_concrete();
        let r = reorder(&s, &iv("k"), &iv("j")).unwrap();
        let jv = iv("j");
        let ws = precompute(&r, &mul, &[(jv.clone(), jv.clone(), jv.clone())], &w).unwrap();
        assert_eq!(
            parallelize(&ws, &iv("k")),
            Err(IrError::ReductionNotPrivatized { var: "k".into(), tensor: "w".into() })
        );
    }

    #[test]
    fn parallelize_allows_disjoint_rows_and_rejects_unknown_vars() {
        // ∀i of the plain merge form writes disjoint rows A(i,_): legal even
        // without a workspace.
        let (s, _, _) = matmul_concrete();
        let p = parallelize(&s, &iv("i")).unwrap();
        assert_eq!(p.to_string(), "∀∥i ∀j ∀k A(i,j) += B(i,k) * C(k,j)");
        assert_eq!(parallelize(&s, &iv("z")), Err(IrError::UnknownIndexVar("z".into())));
    }

    #[test]
    fn precompute_validates_workspace_shape() {
        let (s, mul, _) = matmul_concrete();
        let small = TensorVar::new("w", vec![2], Format::dvec());
        let jv = iv("j");
        assert!(matches!(
            precompute(&s, &mul, &[(jv.clone(), jv.clone(), jv.clone())], &small),
            Err(IrError::WorkspaceShapeMismatch { .. })
        ));
        let wrong_rank = TensorVar::new("w", vec![16, 16], Format::dense(2));
        assert!(matches!(
            precompute(&s, &mul, &[(jv.clone(), jv.clone(), jv.clone())], &wrong_rank),
            Err(IrError::WorkspaceShapeMismatch { .. })
        ));
    }
}
