//! Policy heuristics for when to apply the workspace transformation
//! (paper Section V-C).
//!
//! The paper outlines three situations where a kernel is likely to benefit
//! from a workspace and leaves a full policy system as future work built on
//! the scheduling API. [`suggest`] implements the three detectors; each
//! [`Suggestion`] carries the arguments one would pass to
//! [`crate::transform::precompute`].

use crate::concrete::{AssignOp, ConcreteStmt};
use crate::expr::{IndexExpr, IndexVar};

/// Why a workspace is suggested (the three goals of Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// Merging more than three sparse operands produces expensive merge
    /// loops; a dense workspace replaces them with random accesses.
    SimplifyMerge,
    /// Scattering into a sparse result requires `O(nnz)` inserts; a dense
    /// workspace gives `O(1)` inserts.
    AvoidExpensiveInsert,
    /// Part of the inner-loop expression is invariant to an inner variable
    /// and can be hoisted by precomputing it.
    HoistLoopInvariant,
}

/// A suggested workspace transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Which heuristic fired.
    pub reason: Reason,
    /// The subexpression to precompute.
    pub expr: IndexExpr,
    /// The index variables to precompute over (the workspace index set *I*).
    pub over: Vec<IndexVar>,
    /// Human-readable justification.
    pub description: String,
}

/// Runs the three Section V-C heuristics over a concrete statement.
///
/// The returned suggestions are advisory: callers decide whether to invoke
/// [`crate::transform::precompute`] with them ("It should therefore be
/// applied judiciously", Section VII).
pub fn suggest(stmt: &ConcreteStmt) -> Vec<Suggestion> {
    let mut out = Vec::new();
    walk(stmt, &mut Vec::new(), &mut out);
    out
}

fn walk(stmt: &ConcreteStmt, enclosing: &mut Vec<IndexVar>, out: &mut Vec<Suggestion>) {
    match stmt {
        ConcreteStmt::Assign { lhs, op, rhs } => {
            let innermost = enclosing.last().cloned();

            // 1. Simplify merges: count operands that are compressed at the
            //    innermost variable (they would have to be co-iterated).
            if let Some(v) = &innermost {
                let merged = rhs
                    .accesses()
                    .iter()
                    .filter(|a| {
                        // Sparse at `v`: the storage level holding this mode
                        // cannot be located into, so it must be co-iterated.
                        a.mode_of(v).is_some_and(|m| {
                            let fmt = a.tensor().format();
                            !fmt.mode(fmt.level_of_mode(m)).has_locate()
                        })
                    })
                    .count();
                if merged > 3 {
                    out.push(Suggestion {
                        reason: Reason::SimplifyMerge,
                        expr: rhs.clone(),
                        over: vec![v.clone()],
                        description: format!(
                            "{merged} sparse operands are merged at `{v}`; precompute the \
                             expression into a dense workspace over `{v}`"
                        ),
                    });
                }
            }

            // 2. Avoid expensive inserts: accumulating (`+=`) into a result
            //    that is compressed at a variable bound inside a reduction
            //    loop scatters into sparse storage.
            if *op == AssignOp::Accum {
                let reduction_outside_k = enclosing.iter().any(|v| !lhs.uses_var(v));
                let sparse_result_var = lhs.vars().iter().find(|v| {
                    lhs.mode_of(v).is_some_and(|m| {
                        let fmt = lhs.tensor().format();
                        !fmt.mode(fmt.level_of_mode(m)).has_insert()
                    })
                });
                if let (true, Some(v)) = (reduction_outside_k, sparse_result_var) {
                    out.push(Suggestion {
                        reason: Reason::AvoidExpensiveInsert,
                        expr: rhs.clone(),
                        over: vec![v.clone()],
                        description: format!(
                            "`{}` accumulates into sparse result `{}`; precompute into a dense \
                             workspace over `{v}` and append once per row",
                            op_str(*op),
                            lhs.tensor().name()
                        ),
                    });
                }
            }

            // 3. Hoist loop-invariant code: a factor that does not use an
            //    inner reduction variable used by the other factors is
            //    recomputed redundantly in that loop.
            if let Some(v) = &innermost {
                let factors = rhs.factors();
                if factors.len() >= 2 {
                    for inner in enclosing.iter().rev() {
                        if lhs.uses_var(inner) {
                            continue; // only reduction loops cause redundancy
                        }
                        let (using, not_using): (Vec<_>, Vec<_>) =
                            factors.iter().partition(|f| f.uses_var(inner));
                        if !using.is_empty() && !not_using.is_empty() {
                            let expr = IndexExpr::product_of(
                                using.into_iter().cloned().cloned().collect(),
                            );
                            out.push(Suggestion {
                                reason: Reason::HoistLoopInvariant,
                                expr,
                                over: vec![v.clone()],
                                description: format!(
                                    "part of the expression is invariant to `{inner}`; \
                                     precompute the `{inner}`-dependent factors over `{v}` to \
                                     hoist the invariant multiplication"
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
        ConcreteStmt::Forall { var, body, .. } => {
            enclosing.push(var.clone());
            walk(body, enclosing, out);
            enclosing.pop();
        }
        ConcreteStmt::Where { consumer, producer } => {
            let depth = enclosing.len();
            walk(consumer, enclosing, out);
            enclosing.truncate(depth);
            walk(producer, enclosing, out);
            enclosing.truncate(depth);
        }
        ConcreteStmt::Sequence { first, second } => {
            let depth = enclosing.len();
            walk(first, enclosing, out);
            enclosing.truncate(depth);
            walk(second, enclosing, out);
            enclosing.truncate(depth);
        }
    }
}

fn op_str(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Assign => "=",
        AssignOp::Accum => "+=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::concretize;
    use crate::expr::{sum, TensorVar};
    use crate::notation::IndexAssignment;
    use taco_tensor::Format;

    fn iv(n: &str) -> IndexVar {
        IndexVar::new(n)
    }

    #[test]
    fn detects_expensive_insert_in_spgemm() {
        let n = 8;
        let a = TensorVar::new("A", vec![n, n], Format::csr());
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j, k) = (iv("i"), iv("j"), iv("k"));
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(k.clone(), b.access([i, k.clone()]) * c.access([k, j])),
        );
        let concrete = concretize(&s).unwrap();
        let sugg = suggest(&concrete);
        assert!(
            sugg.iter().any(|s| s.reason == Reason::AvoidExpensiveInsert),
            "expected an expensive-insert suggestion, got {sugg:?}"
        );
    }

    #[test]
    fn no_insert_warning_for_dense_result() {
        let n = 8;
        let a = TensorVar::new("A", vec![n, n], Format::dense(2));
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j, k) = (iv("i"), iv("j"), iv("k"));
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(k.clone(), b.access([i, k.clone()]) * c.access([k, j])),
        );
        let sugg = suggest(&concretize(&s).unwrap());
        assert!(sugg.iter().all(|s| s.reason != Reason::AvoidExpensiveInsert));
    }

    #[test]
    fn detects_merge_heavy_addition() {
        let n = 8;
        let fmt = Format::csr();
        let a = TensorVar::new("A", vec![n, n], fmt.clone());
        let ops: Vec<TensorVar> =
            (0..5).map(|x| TensorVar::new(format!("B{x}"), vec![n, n], fmt.clone())).collect();
        let (i, j) = (iv("i"), iv("j"));
        let rhs = IndexExpr::sum_of(
            ops.iter().map(|t| IndexExpr::Access(t.access([i.clone(), j.clone()]))).collect(),
        );
        let s = IndexAssignment::assign(a.access([i, j]), rhs);
        let sugg = suggest(&concretize(&s).unwrap());
        assert!(sugg.iter().any(|s| s.reason == Reason::SimplifyMerge));
    }

    #[test]
    fn two_operand_addition_is_not_merge_heavy() {
        let n = 8;
        let a = TensorVar::new("A", vec![n, n], Format::csr());
        let b = TensorVar::new("B", vec![n, n], Format::csr());
        let c = TensorVar::new("C", vec![n, n], Format::csr());
        let (i, j) = (iv("i"), iv("j"));
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            b.access([i.clone(), j.clone()]) + c.access([i, j]),
        );
        let sugg = suggest(&concretize(&s).unwrap());
        assert!(sugg.iter().all(|s| s.reason != Reason::SimplifyMerge));
    }

    #[test]
    fn detects_loop_invariant_factor_in_mttkrp() {
        let n = 8;
        let a = TensorVar::new("A", vec![n, n], Format::dense(2));
        let b = TensorVar::new("B", vec![n, n, n], Format::csf3());
        let c = TensorVar::new("C", vec![n, n], Format::dense(2));
        let d = TensorVar::new("D", vec![n, n], Format::dense(2));
        let (i, j, k, l) = (iv("i"), iv("j"), iv("k"), iv("l"));
        let s = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(
                k.clone(),
                sum(
                    l.clone(),
                    b.access([i, k.clone(), l.clone()]) * c.access([l, j.clone()]) * d.access([k, j]),
                ),
            ),
        );
        let sugg = suggest(&concretize(&s).unwrap());
        let hoist: Vec<_> =
            sugg.iter().filter(|s| s.reason == Reason::HoistLoopInvariant).collect();
        assert_eq!(hoist.len(), 1);
        // The l-dependent factors B(i,k,l) * C(l,j) should be precomputed.
        assert_eq!(hoist[0].expr.to_string(), "B(i,k,l) * C(l,j)");
    }
}
