//! Tensor index notation statements (the compiler's input language).

use crate::expr::{Access, IndexExpr, IndexVar};
use std::fmt;

/// An index notation statement `A(i,j,...) = expr`, e.g.
/// `A(i,j) = sum(k, B(i,k) * C(k,j))` (paper Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexAssignment {
    lhs: Access,
    rhs: IndexExpr,
}

impl IndexAssignment {
    /// Creates an index notation assignment.
    pub fn assign(lhs: Access, rhs: impl Into<IndexExpr>) -> IndexAssignment {
        IndexAssignment { lhs, rhs: rhs.into() }
    }

    /// The result access.
    pub fn lhs(&self) -> &Access {
        &self.lhs
    }

    /// The right-hand-side expression.
    pub fn rhs(&self) -> &IndexExpr {
        &self.rhs
    }

    /// The free index variables: those indexing the result, in result mode
    /// order.
    pub fn free_vars(&self) -> Vec<IndexVar> {
        self.lhs.vars().to_vec()
    }

    /// The reduction index variables: those used in the rhs but not free,
    /// in first-use order (summation binders and access variables).
    pub fn reduction_vars(&self) -> Vec<IndexVar> {
        let free = self.free_vars();
        let mut out: Vec<IndexVar> = Vec::new();
        self.rhs.visit(&mut |e| {
            let mut push = |v: &IndexVar| {
                if !free.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            };
            match e {
                IndexExpr::Sum(v, _) => push(v),
                IndexExpr::Access(a) => a.vars().iter().for_each(push),
                _ => {}
            }
        });
        out
    }
}

impl fmt::Display for IndexAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{sum, TensorVar};
    use taco_tensor::Format;

    #[test]
    fn free_and_reduction_vars() {
        let a = TensorVar::new("A", vec![4, 4], Format::csr());
        let b = TensorVar::new("B", vec![4, 4, 4], Format::csf3());
        let c = TensorVar::new("C", vec![4, 4], Format::dense(2));
        let d = TensorVar::new("D", vec![4, 4], Format::dense(2));
        let (i, j, k, l) =
            (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"), IndexVar::new("l"));
        // MTTKRP: A(i,j) = sum(k, sum(l, B(i,k,l) * C(l,j) * D(k,j)))
        let st = IndexAssignment::assign(
            a.access([i.clone(), j.clone()]),
            sum(
                k.clone(),
                sum(
                    l.clone(),
                    b.access([i.clone(), k.clone(), l.clone()])
                        * c.access([l.clone(), j.clone()])
                        * d.access([k.clone(), j.clone()]),
                ),
            ),
        );
        assert_eq!(st.free_vars(), vec![i, j]);
        assert_eq!(st.reduction_vars(), vec![k, l]);
        assert_eq!(
            st.to_string(),
            "A(i,j) = sum(k, sum(l, B(i,k,l) * C(l,j) * D(k,j)))"
        );
    }
}
