//! Native codegen backend dispatch: compile-and-dlopen the emitted C for a
//! cached kernel, with the interpreter as the portable fallback and the
//! correctness oracle.
//!
//! The engine owns one [`NativeStore`]: a lazily probed system C compiler
//! (probed exactly once per engine — a broken `$CC` costs one failed probe,
//! not one per kernel) and a per-fingerprint trust ledger. A kernel's native
//! form moves through three states:
//!
//! ```text
//! (no entry) ──compile──▶ Untrusted ──differential check──▶ Trusted
//!      │                      │                                │
//!      └──verify gate /       └── mismatch / native error ──▶ Rejected
//!          emit / toolchain
//!          failure ─▶ Rejected
//! ```
//!
//! * **Untrusted**: the shared object compiled and loaded, but has never
//!   produced a result. The first run is *differential*: the interpreter
//!   runs on the actual operands first, then the native kernel on a fresh
//!   binding, and the results are compared byte-for-byte. The caller always
//!   receives the interpreter's result on this run.
//! * **Trusted**: the differential check passed; later runs go straight to
//!   the native kernel, under the same budget/deadline/cancel supervision.
//! * **Rejected**: the verify gate, the emitter, the toolchain, or the
//!   differential check refused the kernel. Recorded once per fingerprint
//!   so the refusal costs nothing on later runs.
//!
//! Only statically *verified* kernels (an accepted [`VerifyReport`] with
//! zero deny-severity findings recorded at compile time) are eligible: the
//! emitted C elides the bounds checks the interpreter performs, so the
//! verifier's proof is what stands in for them.
//!
//! [`VerifyReport`]: taco_core::VerifyReport

use crate::engine::EngineEvent;
use crate::Engine;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use taco_core::{CompiledKernel, CoreError, FallbackEvent, Supervisor};
use taco_llir::{emit_native, Aborted, AbortReason, CancelToken, ExecReport, Progress};
use taco_native::{NativeCompiler, NativeKernel, NativeRunOptions};
use taco_tensor::Tensor;

/// Which execution backend the engine dispatches kernel runs to.
///
/// The interpreter is always the fallback: `Native` and `Auto` *attempt*
/// the native path and degrade to the interpreter — recording a
/// [`FallbackEvent::NativeUnavailable`] — whenever the toolchain, the
/// emitter, or the trust protocol refuses a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Let the engine decide: native when a working C toolchain is present
    /// and the kernel passes the trust protocol, interpreter otherwise.
    /// In [`crate::EngineConfig`] this currently behaves like `Native`; as
    /// a per-tenant policy it defers to the engine-wide setting.
    #[default]
    Auto,
    /// Interpreter only; the native backend is never consulted.
    Interp,
    /// Prefer compiled native kernels, interpreter fallback on any failure.
    Native,
}

impl Backend {
    /// Reads `TACO_BACKEND` (`auto` | `interp` | `native`); unset, empty,
    /// or unrecognized values mean [`Backend::Auto`].
    pub fn from_env() -> Backend {
        match std::env::var("TACO_BACKEND").as_deref() {
            Ok("interp") => Backend::Interp,
            Ok("native") => Backend::Native,
            _ => Backend::Auto,
        }
    }

    pub(crate) fn allows_native(self) -> bool {
        !matches!(self, Backend::Interp)
    }

    /// Resolves a per-call (e.g. per-tenant) preference against the
    /// engine-wide default: `Auto` defers, anything else wins.
    pub(crate) fn resolve_with(self, engine_default: Backend) -> Backend {
        match self {
            Backend::Auto => engine_default,
            other => other,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Auto => write!(f, "auto"),
            Backend::Interp => write!(f, "interp"),
            Backend::Native => write!(f, "native"),
        }
    }
}

/// Per-fingerprint trust state of a kernel's native form.
#[derive(Debug, Clone)]
pub(crate) enum NativeState {
    /// Compiled and loaded, but not yet differentially validated.
    Untrusted(Arc<NativeKernel>),
    /// Differential check passed; runs go straight to the native kernel.
    Trusted(Arc<NativeKernel>),
    /// Refused (verify gate, emitter, toolchain, or differential mismatch).
    Rejected,
}

/// Counters describing what the native backend has done so far; see
/// [`Engine::native_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct NativeStats {
    /// Shared objects compiled (or re-loaded from the on-disk cache).
    pub compiled: u64,
    /// Kernels promoted to trusted by a passing differential check.
    pub trusted: u64,
    /// Kernels refused by the verify gate, the emitter, or a failed
    /// differential check.
    pub rejected: u64,
    /// Kernels that fell back to the interpreter because the toolchain was
    /// missing or the compile/load failed.
    pub unavailable: u64,
    /// Runs served by a trusted native kernel.
    pub native_runs: u64,
}

/// The engine's native-backend state: one lazily probed compiler and the
/// per-fingerprint trust ledger.
#[derive(Debug, Default)]
pub(crate) struct NativeStore {
    /// `None` = not probed yet; `Some(Err)` = probe failed (rendered
    /// reason), remembered so a broken toolchain is reported once and never
    /// re-probed.
    compiler: Mutex<Option<Result<NativeCompiler, String>>>,
    entries: Mutex<HashMap<u64, NativeState>>,
    compiled: AtomicU64,
    trusted: AtomicU64,
    rejected: AtomicU64,
    unavailable: AtomicU64,
    native_runs: AtomicU64,
}

impl NativeStore {
    fn compiler(&self) -> Result<NativeCompiler, String> {
        let mut slot = self.compiler.lock().unwrap_or_else(|p| p.into_inner());
        slot.get_or_insert_with(|| NativeCompiler::from_env().map_err(|e| e.to_string()))
            .clone()
    }

    fn get(&self, fingerprint: u64) -> Option<NativeState> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).get(&fingerprint).cloned()
    }

    fn set(&self, fingerprint: u64, state: NativeState) {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).insert(fingerprint, state);
    }

    pub(crate) fn stats(&self) -> NativeStats {
        NativeStats {
            compiled: self.compiled.load(Ordering::Relaxed),
            trusted: self.trusted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
            native_runs: self.native_runs.load(Ordering::Relaxed),
        }
    }
}

/// The outcome of one attempted native dispatch. `None` from
/// [`Engine::try_run_native`] means "not attempted — run the interpreter";
/// `Some` carries the committed result (or typed error) plus whether the
/// native kernel itself produced it (`false` on the differential run, which
/// returns the interpreter's result).
pub(crate) struct NativeAttempt {
    pub(crate) result: std::result::Result<(Tensor, ExecReport), CoreError>,
    pub(crate) native: bool,
}

impl Engine {
    /// Counters for the native backend: compiles, trust promotions,
    /// rejections, toolchain fallbacks, and runs served natively.
    pub fn native_stats(&self) -> NativeStats {
        self.native.stats()
    }

    /// Attempts to serve a run through the native backend. Returns `None`
    /// when the backend is off or this kernel is rejected — the caller runs
    /// the interpreter as usual. Returns `Some` when the attempt produced a
    /// committed result or a typed error that must propagate (supervised
    /// errors arrive as [`CoreError::Aborted`] so the degrade-and-retry
    /// ladder treats both backends identically).
    pub(crate) fn try_run_native(
        &self,
        kernel: &CompiledKernel,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
        supervisor: Option<&Supervisor>,
        backend: Backend,
    ) -> Option<NativeAttempt> {
        if !backend.allows_native() {
            return None;
        }
        let fingerprint = kernel.fingerprint();
        let (nk, trusted) = match self.native.get(fingerprint) {
            Some(NativeState::Rejected) => return None,
            Some(NativeState::Trusted(nk)) => (nk, true),
            Some(NativeState::Untrusted(nk)) => (nk, false),
            None => (self.acquire_native(kernel)?, false),
        };

        if trusted {
            self.native.native_runs.fetch_add(1, Ordering::Relaxed);
            let result = run_native_once(kernel, &nk, inputs, output_structure, supervisor);
            return Some(NativeAttempt { result, native: true });
        }

        // Differential trust check: interpreter first (its result is what
        // the caller gets), then the native kernel on a fresh binding.
        let reference = match supervisor {
            Some(s) => kernel.run_supervised(inputs, output_structure, s),
            None => kernel
                .run_with(inputs, output_structure)
                .map(|t| (t, ExecReport::default())),
        };
        let (ref_result, ref_report) = match reference {
            Ok(pair) => pair,
            // The interpreter itself failed (deadline, budget, bad
            // operands): the check is inconclusive. Propagate the error and
            // leave the kernel untrusted for the next attempt.
            Err(e) => return Some(NativeAttempt { result: Err(e), native: false }),
        };
        match run_native_once(kernel, &nk, inputs, output_structure, supervisor) {
            Ok((native_result, _)) if native_result == ref_result => {
                self.native.set(fingerprint, NativeState::Trusted(nk));
                self.native.trusted.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => self.reject_native(
                fingerprint,
                "differential check failed: native result differs from the interpreter"
                    .to_string(),
            ),
            Err(e) => self.reject_native(
                fingerprint,
                format!("native run failed where the interpreter succeeded: {e}"),
            ),
        }
        Some(NativeAttempt { result: Ok((ref_result, ref_report)), native: false })
    }

    /// Verify-gates, emits, and compiles the native form of a kernel,
    /// recording the outcome in the trust ledger and the event log. `None`
    /// means the interpreter serves this kernel from now on.
    fn acquire_native(&self, kernel: &CompiledKernel) -> Option<Arc<NativeKernel>> {
        let fingerprint = kernel.fingerprint();
        // Trust gate: the emitted C elides the interpreter's bounds checks,
        // so only kernels the static verifier accepted may go native.
        match kernel.verify_report() {
            Some(report) if report.denies() == 0 => {}
            Some(report) => {
                self.reject_native(
                    fingerprint,
                    format!(
                        "{} deny-severity findings on the kernel's verification report",
                        report.denies()
                    ),
                );
                return None;
            }
            None => {
                self.reject_native(
                    fingerprint,
                    "kernel was compiled without static verification".to_string(),
                );
                return None;
            }
        }
        let source = match emit_native(kernel.executable()) {
            Ok(source) => source,
            Err(e) => {
                self.reject_native(fingerprint, e.to_string());
                return None;
            }
        };
        let compiler = match self.native.compiler() {
            Ok(c) => c,
            Err(reason) => {
                self.native_unavailable(fingerprint, reason);
                return None;
            }
        };
        match compiler.compile(&source, fingerprint) {
            Ok(nk) => {
                let nk = Arc::new(nk);
                self.native.compiled.fetch_add(1, Ordering::Relaxed);
                self.push_event(EngineEvent::NativeCompiled {
                    fingerprint,
                    compile_nanos: nk.compile_nanos,
                });
                self.native.set(fingerprint, NativeState::Untrusted(Arc::clone(&nk)));
                Some(nk)
            }
            Err(e) => {
                self.native_unavailable(fingerprint, e.to_string());
                None
            }
        }
    }

    /// Records a per-kernel rejection (verify gate, emitter, differential).
    fn reject_native(&self, fingerprint: u64, reason: String) {
        self.native.set(fingerprint, NativeState::Rejected);
        self.native.rejected.fetch_add(1, Ordering::Relaxed);
        self.push_event(EngineEvent::NativeRejected { fingerprint, reason });
    }

    /// Records a toolchain/compile/load failure: the kernel runs on the
    /// interpreter, and the degradation is visible as a fallback event.
    fn native_unavailable(&self, fingerprint: u64, reason: String) {
        // `NativeError::Unavailable` renders with the same preamble the
        // fallback event adds; strip it so the log line reads once.
        let reason = match reason.strip_prefix("native backend unavailable: ") {
            Some(trimmed) => trimmed.to_string(),
            None => reason,
        };
        self.native.set(fingerprint, NativeState::Rejected);
        self.native.unavailable.fetch_add(1, Ordering::Relaxed);
        self.push_event(EngineEvent::Fallback(FallbackEvent::NativeUnavailable { reason }));
    }
}

/// Runs the native kernel once on a fresh binding, under the tighter of
/// the supervisor's and the kernel's budgets, mapping the supervisor's
/// deadline and cancel token into the native runner's polling options.
fn run_native_once(
    kernel: &CompiledKernel,
    nk: &NativeKernel,
    inputs: &[(&str, &Tensor)],
    output_structure: Option<&Tensor>,
    supervisor: Option<&Supervisor>,
) -> std::result::Result<(Tensor, ExecReport), CoreError> {
    let mut binding = kernel.bind(inputs, output_structure)?;
    let budget = match supervisor {
        Some(s) => s.budget().min_with(&kernel.budget()),
        None => kernel.budget(),
    };
    let start = Instant::now();
    let token = supervisor.map(Supervisor::cancel_token);
    let mut opts = NativeRunOptions::default();
    if let Some(s) = supervisor {
        opts.cancel = token.as_ref().map(CancelToken::as_atomic);
        // Same resolution as ExecSession::run: the tighter of the relative
        // deadline and what remains of the absolute one.
        let relative = s.deadline();
        let absolute = s.deadline_at().map(|at| at.saturating_duration_since(start));
        let deadline = match (relative, absolute) {
            (Some(r), Some(a)) => Some(r.min(a)),
            (r, a) => r.or(a),
        };
        opts.deadline = deadline.map(|d| (start, d));
    }
    match nk.run(&mut binding, &budget, opts) {
        Ok(report) => {
            let result = kernel.extract(&binding, output_structure)?;
            Ok((
                result,
                ExecReport {
                    elapsed: start.elapsed(),
                    progress: Progress {
                        iterations: report.iterations,
                        allocated_bytes: report.allocated_bytes,
                        peak_single_bytes: report.peak_single_bytes,
                        peak_map_bytes: report.peak_map_bytes,
                        workers: 0,
                    },
                    samples: Vec::new(),
                },
            ))
        }
        Err(e) => match supervisor {
            // Supervised callers speak the abort protocol; the native
            // runner already restored the binding's pre-run state, matching
            // ExecSession's transactional rollback.
            Some(_) => Err(CoreError::Aborted(Aborted {
                reason: AbortReason::from_run_error(e),
                progress: Progress::default(),
                elapsed: start.elapsed(),
            })),
            None => Err(e.into()),
        },
    }
}
