//! Autotune bookkeeping: decision keys, cached decisions, and the counters
//! that prove tuning happens exactly once per key.
//!
//! The search itself (enumerate → compile → time → pick) lives in
//! [`Engine::run_tuned`](crate::Engine::run_tuned); this module owns the
//! *memory* of it. Decisions are keyed by what actually changes the best
//! schedule — the expression being computed, the operand formats, and how
//! sparse the operands are — so a decision made for one SpGEMM carries over
//! to every later SpGEMM on same-shaped data of similar density, but not to
//! a dense matmul or to operands three orders of magnitude denser.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use taco_core::fingerprint::fingerprint_stmt;
use taco_core::IndexStmt;
use taco_llir::WorkspaceKind;
use taco_tensor::{Format, LevelType, Tensor};

/// The identity of one autotune decision: *which* computation, on *what
/// kind* of data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Structural fingerprint of the **unscheduled** statement (the direct
    /// concretization of the source assignment), so every scheduling of the
    /// same expression shares one decision. Includes operand formats, ranks
    /// and dimensions.
    pub expr: u64,
    /// Hash of the runtime operands' formats and shapes, in binding order.
    pub formats: u64,
    /// Order-of-magnitude sparsity class of the operands:
    /// `round(-log10(geometric mean density))`, clamped to `0..=15`.
    /// Dense data is bucket 0; ~0.1% dense data is bucket 3.
    pub sparsity_bucket: u8,
}

impl TuneKey {
    /// Builds the key for a statement and the operands it will run on.
    ///
    /// Falls back to fingerprinting the statement as scheduled if the
    /// source fails to re-concretize (it was concretized once already, so
    /// this effectively cannot happen).
    pub fn new(stmt: &IndexStmt, inputs: &[(&str, &Tensor)]) -> TuneKey {
        let expr = match IndexStmt::new(stmt.source().clone()) {
            Ok(direct) => fingerprint_stmt(direct.concrete()),
            Err(_) => fingerprint_stmt(stmt.concrete()),
        };
        TuneKey {
            expr,
            formats: format_signature(inputs),
            sparsity_bucket: sparsity_bucket(inputs),
        }
    }
}

impl std::fmt::Display for TuneKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expr {:016x} / formats {:016x} / sparsity 1e-{}",
            self.expr, self.formats, self.sparsity_bucket
        )
    }
}

/// FNV-1a over the operand names, shapes and per-mode formats.
fn format_signature(inputs: &[(&str, &Tensor)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    };
    for (name, t) in inputs {
        for b in name.bytes() {
            byte(b);
        }
        byte(0xff);
        for &d in t.shape() {
            for b in (d as u64).to_le_bytes() {
                byte(b);
            }
        }
        for m in t.format().modes() {
            byte(match m {
                LevelType::Dense => 1,
                LevelType::Compressed => 2,
                LevelType::Singleton => 3,
                LevelType::Hashed => 4,
            });
        }
        // Mode order distinguishes CSR from CSC (same level chain).
        for &m in t.format().mode_order() {
            for b in (m as u64).to_le_bytes() {
                byte(b);
            }
        }
        byte(0xfe);
    }
    h
}

/// `round(-log10(geometric mean density))` over all operands, clamped to
/// `0..=15`. Empty operands count as maximally sparse.
fn sparsity_bucket(inputs: &[(&str, &Tensor)]) -> u8 {
    if inputs.is_empty() {
        return 0;
    }
    let mut log_sum = 0.0f64;
    for (_, t) in inputs {
        let size: f64 = t.shape().iter().map(|&d| d as f64).product();
        let density = if size > 0.0 { t.nnz() as f64 / size } else { 0.0 };
        // Floor the density so log10 stays finite for empty tensors.
        log_sum += density.max(1e-15).log10();
    }
    let mean_log = log_sum / inputs.len() as f64;
    (-mean_log).round().clamp(0.0, 15.0) as u8
}

/// A remembered winner for one [`TuneKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneDecision {
    /// Name of the winning candidate (see
    /// [`taco_core::candidates::ScheduleCandidate::name`]); stable across
    /// runs, so the engine re-derives the schedule from the candidate set.
    pub schedule: String,
    /// Measured wall-clock nanoseconds of the winner during tuning.
    pub best_nanos: u64,
    /// Pinned worker-thread count of the winner, when the winning schedule
    /// was a parallel candidate timed at an explicit thread count. `None`
    /// means the winner was serial (or parallel with automatic thread
    /// resolution); reuse then runs the schedule unpinned.
    pub threads: Option<usize>,
    /// The workspace storage backend the winning candidate was compiled
    /// with (dense for every candidate without a `workspace(...)` variant
    /// suffix).
    pub workspace_kind: WorkspaceKind,
    /// Operand format conversions the winning candidate requires:
    /// `(operand name, chosen format)`. Empty when the winner runs the
    /// operands in their declared formats.
    pub conversions: Vec<(String, Format)>,
    /// How many candidates were enumerated for this key.
    pub candidates: usize,
    /// How many of them compiled and ran to completion.
    pub viable: usize,
}

/// Thread-safe store of autotune decisions.
#[derive(Debug, Default)]
pub struct Autotuner {
    decisions: Mutex<HashMap<TuneKey, TuneDecision>>,
    tunings: AtomicU64,
}

impl Autotuner {
    /// An empty decision store.
    pub fn new() -> Autotuner {
        Autotuner::default()
    }

    /// The remembered decision for `key`, if one exists.
    pub fn decision(&self, key: &TuneKey) -> Option<TuneDecision> {
        self.decisions.lock().unwrap_or_else(|p| p.into_inner()).get(key).cloned()
    }

    /// Records a tuning outcome. Counts as one tuning run even if it
    /// overwrites an earlier decision for the same key.
    pub fn record(&self, key: TuneKey, decision: TuneDecision) {
        self.tunings.fetch_add(1, Ordering::Relaxed);
        self.decisions.lock().unwrap_or_else(|p| p.into_inner()).insert(key, decision);
    }

    /// Number of tuning searches actually executed (decision-cache misses).
    pub fn tunings(&self) -> u64 {
        self.tunings.load(Ordering::Relaxed)
    }

    /// Number of distinct keys with a remembered decision.
    pub fn decisions_len(&self) -> usize {
        self.decisions.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}
