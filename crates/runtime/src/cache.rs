//! The sharded, thread-safe compiled-kernel cache.
//!
//! Keys are canonical kernel fingerprints
//! ([`CompiledKernel::fingerprint`]); values are `Arc`-shared compiled
//! kernels. The cache is split into shards selected by key, so concurrent
//! lookups of different kernels never contend on one lock, and each shard
//! evicts least-recently-used entries against per-shard byte and entry
//! budgets.
//!
//! **Single-flight:** when N threads request the same uncached kernel, one
//! of them (the *leader*) runs the compile pipeline while the others wait on
//! a per-key flight slot; exactly one compile happens and every thread gets
//! the same `Arc`. A failed compile is broadcast to the waiters too, and the
//! flight slot is removed so a later request retries.

use crate::{EngineError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use taco_core::CompiledKernel;
use std::time::Instant;

/// Fixed per-entry overhead charged on top of the generated-code size:
/// binding metadata, fingerprint, budget, and map bookkeeping.
const ENTRY_OVERHEAD_BYTES: u64 = 512;

/// The byte weight the cache charges for one compiled kernel: the size of
/// its generated C listing (a stable proxy for the compiled statement tree,
/// which scales with it) plus a fixed metadata overhead.
pub fn entry_weight(kernel: &CompiledKernel) -> u64 {
    kernel.to_c().len() as u64 + ENTRY_OVERHEAD_BYTES
}

/// A point-in-time snapshot of cache activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry (leaders *and* single-flight waiters:
    /// the key was absent when they asked).
    pub misses: u64,
    /// Compile pipelines actually executed. With single-flight this can be
    /// far below `misses` under contention.
    pub compiles: u64,
    /// Misses that coalesced onto another thread's in-flight compile.
    pub coalesced: u64,
    /// Entries evicted to stay within the byte/entry budgets.
    pub evictions: u64,
    /// Total nanoseconds of compilation skipped by cache hits — each hit
    /// credits the measured compile time of the entry it reused.
    pub compile_nanos_saved: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Charged bytes currently resident (see [`entry_weight`]).
    pub bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.0}% hit rate), {} compiles, {} evictions, \
             {:.3} ms compile time saved, {} entries / {} bytes resident",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.compiles,
            self.evictions,
            self.compile_nanos_saved as f64 / 1e6,
            self.entries,
            self.bytes
        )
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    compile_nanos_saved: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

struct Entry {
    kernel: Arc<CompiledKernel>,
    bytes: u64,
    compile_nanos: u64,
    last_used: u64,
}

/// One thread compiles; the rest block here until the result is broadcast.
/// Compile errors travel as strings because `CoreError` is not `Clone`able
/// across waiters in general (and the waiters did not run the pipeline).
struct Flight {
    slot: Mutex<Option<std::result::Result<Arc<CompiledKernel>, String>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { slot: Mutex::new(None), ready: Condvar::new() }
    }

    fn wait(&self) -> std::result::Result<Arc<CompiledKernel>, String> {
        let mut slot = lock(&self.slot);
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("flight condvar");
        }
        slot.as_ref().expect("checked above").clone()
    }

    fn publish(&self, result: std::result::Result<Arc<CompiledKernel>, String>) {
        *lock(&self.slot) = Some(result);
        self.ready.notify_all();
    }
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    inflight: HashMap<u64, Arc<Flight>>,
    bytes: u64,
}

/// Sharded LRU cache of compiled kernels with single-flight compilation.
///
/// Byte and entry budgets are enforced *per shard* (each shard gets an equal
/// split of the configured totals), so eviction decisions never take a
/// global lock. Configure one shard when exact global LRU order matters
/// (tests do).
pub struct KernelCache {
    shards: Vec<Mutex<Shard>>,
    shard_max_bytes: u64,
    shard_max_entries: usize,
    counters: Counters,
    clock: AtomicU64,
}

/// A mutex poisoned by a panicking kernel compile would otherwise take the
/// whole cache down; the data under it is a plain map that is still
/// structurally valid, so recover the guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl KernelCache {
    /// Creates a cache with the given total budgets split over `shards`
    /// shards (clamped to at least one shard, one entry and one
    /// `entry_weight` of bytes per shard).
    pub fn new(max_bytes: u64, max_entries: usize, shards: usize) -> KernelCache {
        let shards = shards.max(1);
        KernelCache {
            shard_max_bytes: (max_bytes / shards as u64).max(1),
            shard_max_entries: (max_entries / shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            counters: Counters::default(),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The low fingerprint bits already mix the whole structure (FNV-1a),
        // so a simple modulus spreads keys evenly.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, or compiles it with `compile` under single-flight.
    ///
    /// # Errors
    ///
    /// Propagates the compile error ([`EngineError::Core`] from the leader,
    /// [`EngineError::SharedCompileFailed`] for waiters that coalesced onto
    /// the failed flight).
    pub fn get_or_compile(
        &self,
        key: u64,
        compile: impl FnOnce() -> taco_core::Result<CompiledKernel>,
    ) -> Result<Arc<CompiledKernel>> {
        // Fast path / flight discovery under the shard lock.
        let flight = {
            let mut shard = lock(self.shard(key));
            if let Some(entry) = shard.entries.get_mut(&key) {
                entry.last_used = self.tick();
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .compile_nanos_saved
                    .fetch_add(entry.compile_nanos, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.kernel));
            }
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            match shard.inflight.get(&key) {
                Some(flight) => {
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(flight))
                }
                None => {
                    let flight = Arc::new(Flight::new());
                    shard.inflight.insert(key, Arc::clone(&flight));
                    None
                }
            }
        };

        if let Some(flight) = flight {
            // Another thread is compiling this key: wait for its broadcast.
            return flight.wait().map_err(|message| EngineError::SharedCompileFailed { message });
        }

        // This thread is the leader: compile outside any lock.
        let started = Instant::now();
        let compiled = compile();
        let compile_nanos = started.elapsed().as_nanos() as u64;
        self.counters.compiles.fetch_add(1, Ordering::Relaxed);

        let mut shard = lock(self.shard(key));
        let flight = shard.inflight.remove(&key).expect("leader owns the flight slot");
        match compiled {
            Ok(kernel) => {
                let kernel = Arc::new(kernel);
                self.insert_locked(&mut shard, key, Arc::clone(&kernel), compile_nanos);
                drop(shard);
                flight.publish(Ok(Arc::clone(&kernel)));
                Ok(kernel)
            }
            Err(e) => {
                drop(shard);
                flight.publish(Err(e.to_string()));
                Err(EngineError::Core(e))
            }
        }
    }

    /// Inserts an already-compiled kernel (used by tests and warm-up paths).
    pub fn insert(&self, key: u64, kernel: Arc<CompiledKernel>, compile_nanos: u64) {
        let mut shard = lock(self.shard(key));
        self.insert_locked(&mut shard, key, kernel, compile_nanos);
    }

    fn insert_locked(
        &self,
        shard: &mut Shard,
        key: u64,
        kernel: Arc<CompiledKernel>,
        compile_nanos: u64,
    ) {
        let bytes = entry_weight(&kernel);
        let last_used = self.tick();
        if let Some(old) = shard
            .entries
            .insert(key, Entry { kernel, bytes, compile_nanos, last_used })
        {
            shard.bytes -= old.bytes;
            self.counters.entries.fetch_sub(1, Ordering::Relaxed);
            self.counters.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        shard.bytes += bytes;
        self.counters.entries.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(bytes, Ordering::Relaxed);

        // Evict least-recently-used entries until back under budget. The
        // just-inserted key goes last: if it alone exceeds the shard budget
        // it is dropped too (the caller still holds its Arc), leaving the
        // cache empty rather than wedged over budget.
        while shard.bytes > self.shard_max_bytes || shard.entries.len() > self.shard_max_entries {
            let victim = shard
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .or_else(|| shard.entries.keys().next().copied());
            match victim {
                Some(v) => self.evict_locked(shard, v),
                None => break,
            }
        }
    }

    fn evict_locked(&self, shard: &mut Shard, key: u64) {
        if let Some(e) = shard.entries.remove(&key) {
            shard.bytes -= e.bytes;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            self.counters.entries.fetch_sub(1, Ordering::Relaxed);
            self.counters.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
        }
    }

    /// True if `key` is resident (does not touch LRU order or counters).
    pub fn contains(&self, key: u64) -> bool {
        lock(self.shard(key)).entries.contains_key(&key)
    }

    /// Snapshots the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            compiles: self.counters.compiles.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            compile_nanos_saved: self.counters.compile_nanos_saved.load(Ordering::Relaxed),
            entries: self.counters.entries.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCache")
            .field("shards", &self.shards.len())
            .field("shard_max_bytes", &self.shard_max_bytes)
            .field("shard_max_entries", &self.shard_max_entries)
            .field("stats", &self.stats())
            .finish()
    }
}
