//! Serving-shaped runtime for `taco-workspaces`: a concurrent
//! compiled-kernel cache and a measurement-driven schedule autotuner behind
//! one [`Engine`] façade.
//!
//! The compiler crates answer "how do I compile this statement"; this crate
//! answers "how do I *serve* it": compile once and share the kernel across
//! threads ([`KernelCache`], keyed by the canonical fingerprint of
//! [`taco_core::fingerprint`]), coalesce concurrent compiles of the same
//! kernel into one (single-flight), evict cold kernels against byte/entry
//! budgets, and — when the caller does not want to schedule by hand — pick
//! the workspace placement and loop order empirically by timing the
//! Section V-C candidate space on the real operands ([`Engine::run_tuned`]).
//!
//! # Quickstart
//!
//! ```
//! use taco_runtime::Engine;
//! use taco_core::IndexStmt;
//! use taco_ir::expr::{sum, IndexVar, TensorVar};
//! use taco_ir::notation::IndexAssignment;
//! use taco_lower::LowerOptions;
//! use taco_tensor::{Format, Tensor};
//!
//! let n = 8;
//! let a = TensorVar::new("A", vec![n, n], Format::csr());
//! let b = TensorVar::new("B", vec![n, n], Format::csr());
//! let c = TensorVar::new("C", vec![n, n], Format::csr());
//! let (i, j, k) = (IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k"));
//! let spgemm = IndexStmt::new(IndexAssignment::assign(
//!     a.access([i.clone(), j.clone()]),
//!     sum(k.clone(), b.access([i, k.clone()]) * c.access([k, j])),
//! ))?;
//!
//! let bt = Tensor::from_entries(vec![n, n], Format::csr(),
//!     vec![(vec![0, 1], 2.0), (vec![1, 0], 3.0)])?;
//! let ct = Tensor::from_entries(vec![n, n], Format::csr(),
//!     vec![(vec![1, 3], 5.0), (vec![0, 2], 7.0)])?;
//!
//! // No manual schedule: the engine tunes one (here Gustavson's algorithm
//! // with a row workspace), remembers the decision, and caches the kernel.
//! let engine = Engine::new();
//! let out = engine.run_tuned(&spgemm, LowerOptions::fused("spgemm"), &[("B", &bt), ("C", &ct)])?;
//! assert!(out.tuned);
//! assert_eq!(out.result.to_dense().get(&[0, 3]), 10.0);
//!
//! // Same expression, same operands: decision and kernel both reused.
//! let again = engine.run_tuned(&spgemm, LowerOptions::fused("spgemm"), &[("B", &bt), ("C", &ct)])?;
//! assert!(!again.tuned);
//! assert!(engine.cache_stats().hits > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod native;
pub mod tuner;

pub use cache::{entry_weight, CacheStats, KernelCache};
pub use engine::{Engine, EngineBuilder, EngineConfig, EngineEvent, SupervisedRun, TunedOutcome};
pub use native::{Backend, NativeStats};
pub use taco_core::{VerifyMode, VerifyReport};
pub use tuner::{Autotuner, TuneDecision, TuneKey};

use taco_core::CoreError;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors surfaced by the runtime engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// A compile or run error from the compiler pipeline.
    Core(CoreError),
    /// This thread coalesced onto another thread's compile of the same
    /// kernel, and that compile failed. The message is the leader's error;
    /// retrying the call re-runs the compile.
    SharedCompileFailed {
        /// Rendered error from the compiling thread.
        message: String,
    },
    /// Autotuning found no schedule that both compiles and runs.
    NoViableCandidate {
        /// How many candidates were tried.
        candidates: usize,
    },
    /// A remembered autotune decision names a schedule that is no longer in
    /// the candidate space (should not happen: candidate names are
    /// deterministic).
    UnknownSchedule {
        /// The stale schedule name.
        schedule: String,
    },
    /// A cached kernel's recorded verification report carries deny-severity
    /// findings, and the caller asked for [`VerifyMode::Deny`] enforcement
    /// (see [`Engine::run_supervised_cached`]). The kernel stays cached for
    /// callers with laxer policies.
    VerifyDenied {
        /// The refused kernel's canonical fingerprint.
        fingerprint: u64,
        /// Deny-severity findings on its recorded report.
        denies: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::SharedCompileFailed { message } => {
                write!(f, "shared compile failed: {message}")
            }
            EngineError::NoViableCandidate { candidates } => {
                write!(f, "autotuning found no viable schedule among {candidates} candidates")
            }
            EngineError::UnknownSchedule { schedule } => {
                write!(f, "autotune decision names unknown schedule `{schedule}`")
            }
            EngineError::VerifyDenied { fingerprint, denies } => {
                write!(
                    f,
                    "kernel {fingerprint:016x} refused under deny-mode verification \
                     ({denies} deny-severity findings on its cached report)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> EngineError {
        EngineError::Core(e)
    }
}
