//! The [`Engine`]: one front door for compile-with-caching, supervised
//! execution, and schedule autotuning.

use crate::cache::{CacheStats, KernelCache};
use crate::tuner::{Autotuner, TuneDecision, TuneKey};
use crate::{EngineError, Result};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use taco_core::candidates::enumerate_candidates;
use taco_core::{
    CompiledKernel, FallbackEvent, IndexStmt, ResourceBudget, Supervisor, SupervisedOutcome,
    VerifyMode,
};
use taco_llir::WorkspaceKind;
use taco_lower::LowerOptions;
use taco_tensor::Tensor;

/// Engine construction parameters. `EngineConfig::default()` is sized for a
/// long-lived process serving many kernels.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total byte budget of the kernel cache (charged per
    /// [`crate::cache::entry_weight`]). Default 64 MiB.
    pub cache_max_bytes: u64,
    /// Maximum resident compiled kernels. Default 1024.
    pub cache_max_entries: usize,
    /// Cache shard count; one shard gives exact global LRU order, more
    /// shards give less lock contention. Default 8.
    pub cache_shards: usize,
    /// Resource budget applied to every compile and run issued through the
    /// engine (and folded into the cache key, so the same statement under a
    /// different budget class is a different kernel). Default unlimited.
    pub budget: ResourceBudget,
    /// Wall-clock budget for one autotune search. Once a viable candidate
    /// is in hand, no new candidate is timed past this deadline. Default
    /// 250 ms.
    pub tuning_deadline: Duration,
    /// Ring-buffer capacity of [`Engine::last_events`]; oldest events are
    /// dropped beyond it. Default 256.
    pub max_events: usize,
    /// Enforcement mode for the static verifier on every compile issued
    /// through the engine. The verdict is recorded on the compiled kernel
    /// (and therefore cached alongside its fingerprint) and surfaced as an
    /// [`EngineEvent::Verified`]; under [`VerifyMode::Deny`] a kernel with
    /// a proven violation fails to compile. Default
    /// [`taco_core::default_verify_mode`]: deny in debug builds, warn in
    /// release.
    pub verify: VerifyMode,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_max_bytes: 64 << 20,
            cache_max_entries: 1024,
            cache_shards: 8,
            budget: ResourceBudget::unlimited(),
            tuning_deadline: Duration::from_millis(250),
            max_events: 256,
            verify: taco_core::default_verify_mode(),
        }
    }
}

/// Fluent construction for [`Engine`]: `Engine::builder()` starts from
/// [`EngineConfig::default`], each method overrides one knob, and
/// [`EngineBuilder::build`] produces the engine.
///
/// ```
/// use taco_runtime::{Engine, VerifyMode};
///
/// let engine = Engine::builder().verify(VerifyMode::Deny).build();
/// assert_eq!(engine.config().verify, VerifyMode::Deny);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Sets the static-verification enforcement mode for every compile.
    #[must_use]
    pub fn verify(mut self, mode: VerifyMode) -> EngineBuilder {
        self.config.verify = mode;
        self
    }

    /// Sets the resource budget applied to every compile and run.
    #[must_use]
    pub fn budget(mut self, budget: ResourceBudget) -> EngineBuilder {
        self.config.budget = budget;
        self
    }

    /// Sets the kernel-cache byte budget.
    #[must_use]
    pub fn cache_max_bytes(mut self, bytes: u64) -> EngineBuilder {
        self.config.cache_max_bytes = bytes;
        self
    }

    /// Sets the wall-clock budget for one autotune search.
    #[must_use]
    pub fn tuning_deadline(mut self, deadline: Duration) -> EngineBuilder {
        self.config.tuning_deadline = deadline;
        self
    }

    /// Builds the engine.
    #[must_use]
    pub fn build(self) -> Engine {
        Engine::with_config(self.config)
    }
}

/// Something the engine did on the caller's behalf that changed how a
/// result was produced: a compile-time or runtime fallback, or an autotune
/// decision (fresh or reused). All such events flow through one query path,
/// [`Engine::last_events`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineEvent {
    /// A kernel was compiled or retried in degraded form (see
    /// [`FallbackEvent`]). Recorded once per actual compile or supervised
    /// retry — cache hits on a degraded kernel do not repeat it.
    Fallback(FallbackEvent),
    /// An autotune search ran and picked a schedule.
    Autotuned {
        /// The decision key (expression × formats × sparsity class).
        key: TuneKey,
        /// Name of the winning candidate schedule.
        schedule: String,
        /// Candidates enumerated.
        candidates: usize,
        /// Candidates that compiled and ran to completion.
        viable: usize,
        /// Measured nanoseconds of the winner.
        best_nanos: u64,
        /// Pinned thread count of the winner (`None` = serial/auto).
        threads: Option<usize>,
    },
    /// A previously tuned decision was reused without searching.
    AutotuneReused {
        /// The decision key that hit.
        key: TuneKey,
        /// The remembered schedule.
        schedule: String,
    },
    /// A freshly compiled kernel was run through the static verifier.
    /// Recorded once per actual compile — cache hits reuse the verdict
    /// stored on the kernel
    /// ([`CompiledKernel::verify_report`]) without repeating the event.
    Verified {
        /// The kernel's canonical fingerprint (the cache key).
        fingerprint: u64,
        /// Deny-severity findings. Nonzero only under [`VerifyMode::Warn`]
        /// (under deny the compile fails instead).
        denies: usize,
        /// Warn-severity findings (undischarged obligations).
        warns: usize,
    },
}

impl std::fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineEvent::Fallback(e) => write!(f, "fallback: {e}"),
            EngineEvent::Autotuned { key, schedule, candidates, viable, best_nanos, threads } => {
                write!(
                    f,
                    "autotuned [{key}]: chose `{schedule}` ({viable}/{candidates} runs viable, \
                     best {:.3} ms",
                    *best_nanos as f64 / 1e6
                )?;
                match threads {
                    Some(n) => write!(f, ", {n} threads)"),
                    None => write!(f, ")"),
                }
            }
            EngineEvent::AutotuneReused { key, schedule } => {
                write!(f, "autotune reused [{key}]: `{schedule}`")
            }
            EngineEvent::Verified { fingerprint, denies, warns } => {
                write!(f, "verified kernel {fingerprint:016x}: {denies} deny, {warns} warn")
            }
        }
    }
}

/// The result of [`Engine::run_tuned`].
#[derive(Debug, Clone)]
pub struct TunedOutcome {
    /// The computed tensor.
    pub result: Tensor,
    /// Name of the schedule that produced it.
    pub schedule: String,
    /// True if this call ran the search; false if a cached decision was
    /// reused.
    pub tuned: bool,
}

/// A long-lived kernel engine: compiled-kernel cache, autotuner, and event
/// log behind one thread-safe façade. Share it across threads with an
/// `Arc<Engine>`; every method takes `&self`.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: KernelCache,
    tuner: Autotuner,
    events: Mutex<VecDeque<EngineEvent>>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine with [`EngineConfig::default`].
    pub fn new() -> Engine {
        Engine::with_config(EngineConfig::default())
    }

    /// Fluent construction: `Engine::builder().verify(VerifyMode::Deny).build()`.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Engine {
        let cache =
            KernelCache::new(config.cache_max_bytes, config.cache_max_entries, config.cache_shards);
        Engine { config, cache, tuner: Autotuner::new(), events: Mutex::new(VecDeque::new()) }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Compiles a statement through the cache.
    ///
    /// The cache key is the kernel's canonical fingerprint
    /// ([`CompiledKernel::fingerprint`]): statement structure, applied
    /// schedule, operand formats/dimensions, lowering options, and the
    /// engine's budget class. A hit returns the shared kernel without
    /// touching the compile pipeline; concurrent misses of one key coalesce
    /// into a single compile.
    ///
    /// # Errors
    ///
    /// Propagates compile errors; waiters that coalesced onto a failed
    /// compile get [`EngineError::SharedCompileFailed`].
    pub fn compile(&self, stmt: &IndexStmt, opts: LowerOptions) -> Result<Arc<CompiledKernel>> {
        let budget = self.config.budget;
        let key = taco_core::fingerprint(stmt.concrete(), &opts, &budget);
        let mut compiled_now = false;
        let kernel = self.cache.get_or_compile(key, || {
            compiled_now = true;
            stmt.compile_checked(opts, budget, self.config.verify)
        })?;
        if compiled_now {
            for e in kernel.fallback_events() {
                self.push_event(EngineEvent::Fallback(e.clone()));
            }
            if let Some(report) = kernel.verify_report() {
                self.push_event(EngineEvent::Verified {
                    fingerprint: kernel.fingerprint(),
                    denies: report.denies(),
                    warns: report.warns(),
                });
            }
        }
        Ok(kernel)
    }

    /// Compiles (through the cache) and runs a statement.
    ///
    /// # Errors
    ///
    /// Compile errors, or the usual bind/run errors.
    pub fn run(&self, stmt: &IndexStmt, opts: LowerOptions, inputs: &[(&str, &Tensor)]) -> Result<Tensor> {
        self.run_with(stmt, opts, inputs, None)
    }

    /// Like [`Engine::run`], with a pre-assembled output structure for
    /// compute kernels with sparse results.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_with(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
    ) -> Result<Tensor> {
        let kernel = self.compile(stmt, opts)?;
        Ok(kernel.run_with(inputs, output_structure)?)
    }

    /// Runs a statement under a [`Supervisor`], descending the
    /// degrade-and-retry ladder on retryable aborts
    /// ([`IndexStmt::run_supervised`]) and recording every fallback in the
    /// engine's event log. The ladder re-lowers per rung, so this path does
    /// not consult the kernel cache.
    ///
    /// # Errors
    ///
    /// See [`IndexStmt::run_supervised`].
    pub fn run_supervised(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        supervisor: &Supervisor,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
    ) -> Result<SupervisedOutcome> {
        let outcome = stmt.run_supervised(opts, supervisor, inputs, output_structure)?;
        for e in &outcome.fallbacks {
            self.push_event(EngineEvent::Fallback(e.clone()));
        }
        Ok(outcome)
    }

    /// Picks the best schedule for a statement by measurement, then runs it.
    ///
    /// On the first call for a [`TuneKey`] (expression fingerprint × operand
    /// format signature × sparsity bucket) the engine enumerates the
    /// candidate space ([`enumerate_candidates`]: direct merge, loop
    /// reorders, and every Section V-C workspace placement), compiles each
    /// through the cache, times it on the *actual operands* under the
    /// engine budget, and picks the fastest. Candidates that fail to
    /// compile or abort count as infinitely slow. Once one viable candidate
    /// is in hand, no new candidate starts after
    /// [`EngineConfig::tuning_deadline`]; later candidates race under the
    /// remaining time.
    ///
    /// The decision is remembered: later calls with the same key skip the
    /// search (`tuned == false` in the outcome, one
    /// [`EngineEvent::AutotuneReused`] logged) and go straight through the
    /// kernel cache.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoViableCandidate`] when nothing compiles and runs;
    /// otherwise the usual compile/run errors.
    pub fn run_tuned(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        inputs: &[(&str, &Tensor)],
    ) -> Result<TunedOutcome> {
        let key = TuneKey::new(stmt, inputs);
        if let Some(decision) = self.tuner.decision(&key) {
            let schedule = decision.schedule;
            let cand = enumerate_candidates(stmt)
                .into_iter()
                .find(|c| c.name == schedule)
                .ok_or_else(|| EngineError::UnknownSchedule { schedule: schedule.clone() })?;
            self.push_event(EngineEvent::AutotuneReused { key, schedule: schedule.clone() });
            let opts = match decision.threads {
                Some(n) => opts.with_threads(n),
                None => opts,
            };
            let opts = opts.with_workspace_kind(cand.workspace_kind);
            let result = self.run(&cand.stmt, opts, inputs)?;
            return Ok(TunedOutcome { result, schedule, tuned: false });
        }

        let started = Instant::now();
        let candidates = enumerate_candidates(stmt);
        let total = candidates.len();
        let mut viable = 0usize;
        let mut best: Option<(String, Option<usize>, WorkspaceKind, Tensor, u64)> = None;
        'candidates: for cand in candidates {
            // A parallel candidate is timed at explicit thread counts (two
            // and the machine width) so the remembered decision also says
            // how wide to run it; serial candidates get one unpinned run.
            // On a single-core machine a parallel candidate can only fall
            // back to its serial twin's exact work, so it is skipped
            // outright — timing duplicate kernels would make the decision a
            // coin flip on noise.
            let thread_counts: Vec<Option<usize>> = if cand.name.contains("parallelize") {
                let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
                if avail <= 1 {
                    continue;
                }
                let mut counts = vec![Some(2)];
                if avail > 2 {
                    counts.push(Some(avail));
                }
                counts
            } else {
                vec![None]
            };
            for threads in thread_counts {
                let remaining = self.config.tuning_deadline.saturating_sub(started.elapsed());
                if best.is_some() && remaining.is_zero() {
                    break 'candidates;
                }
                let run_opts = match threads {
                    Some(n) => opts.clone().with_threads(n),
                    None => opts.clone(),
                };
                let run_opts = run_opts.with_workspace_kind(cand.workspace_kind);
                let Ok(kernel) = self.compile(&cand.stmt, run_opts) else {
                    continue;
                };
                // The first viable candidate runs without a deadline so a
                // slow search budget can never turn a tunable statement into
                // an error; later candidates only get the remaining time.
                let mut supervisor = Supervisor::new().with_budget(self.config.budget);
                if best.is_some() {
                    supervisor = supervisor.with_deadline(remaining);
                }
                match kernel.run_supervised(inputs, None, &supervisor) {
                    Ok((result, report)) => {
                        viable += 1;
                        let nanos = report.elapsed.as_nanos() as u64;
                        // A challenger displaces the incumbent only by a
                        // clear margin (5%): candidates are enumerated
                        // simplest-first, so near-ties deterministically
                        // keep the simpler schedule instead of flipping on
                        // timing noise. Sparse workspace backends need a
                        // decisive win (40%): on small operands their times
                        // sit within noise of their dense twin, and their
                        // real role is the budget ladder, not shaving
                        // single-digit percents here.
                        let margin = if cand.workspace_kind == WorkspaceKind::Dense {
                            95
                        } else {
                            60
                        };
                        if best.as_ref().is_none_or(|(_, _, _, _, b)| nanos * 100 < *b * margin) {
                            best = Some((
                                cand.name.clone(),
                                threads,
                                cand.workspace_kind,
                                result,
                                nanos,
                            ));
                        }
                    }
                    Err(_) => continue,
                }
            }
        }
        let Some((schedule, threads, workspace_kind, result, best_nanos)) = best else {
            return Err(EngineError::NoViableCandidate { candidates: total });
        };
        self.tuner.record(
            key,
            TuneDecision {
                schedule: schedule.clone(),
                best_nanos,
                threads,
                workspace_kind,
                candidates: total,
                viable,
            },
        );
        self.push_event(EngineEvent::Autotuned {
            key,
            schedule: schedule.clone(),
            candidates: total,
            viable,
            best_nanos,
            threads,
        });
        Ok(TunedOutcome { result, schedule, tuned: true })
    }

    /// Snapshot of the kernel-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The autotune decision store (for inspecting decisions and the
    /// tuning-run count).
    pub fn tuner(&self) -> &Autotuner {
        &self.tuner
    }

    /// The engine's event log, oldest first: every fallback and autotune
    /// decision since construction, up to [`EngineConfig::max_events`].
    pub fn last_events(&self) -> Vec<EngineEvent> {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).iter().cloned().collect()
    }

    fn push_event(&self, event: EngineEvent) {
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        if events.len() >= self.config.max_events {
            events.pop_front();
        }
        events.push_back(event);
    }
}
