//! The [`Engine`]: one front door for compile-with-caching, supervised
//! execution, and schedule autotuning.

use crate::cache::{CacheStats, KernelCache};
use crate::native::{Backend, NativeStore};
use crate::tuner::{Autotuner, TuneDecision, TuneKey};
use crate::{EngineError, Result};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use taco_core::candidates::enumerate_candidates;
use taco_core::fingerprint::fingerprint_stmt;
use taco_core::{
    stmt_workspaces, CompiledKernel, CoreError, DegradeRung, FallbackEvent, IndexStmt,
    ResourceBudget, Supervisor, SupervisedOutcome, VerifyMode,
};
use taco_llir::WorkspaceKind;
use taco_lower::{KernelKind, LowerOptions};
use taco_tensor::{Format, Tensor};

/// Engine construction parameters. `EngineConfig::default()` is sized for a
/// long-lived process serving many kernels.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total byte budget of the kernel cache (charged per
    /// [`crate::cache::entry_weight`]). Default 64 MiB.
    pub cache_max_bytes: u64,
    /// Maximum resident compiled kernels. Default 1024.
    pub cache_max_entries: usize,
    /// Cache shard count; one shard gives exact global LRU order, more
    /// shards give less lock contention. Default 8.
    pub cache_shards: usize,
    /// Resource budget applied to every compile and run issued through the
    /// engine (and folded into the cache key, so the same statement under a
    /// different budget class is a different kernel). Default unlimited.
    pub budget: ResourceBudget,
    /// Wall-clock budget for one autotune search. Once a viable candidate
    /// is in hand, no new candidate is timed past this deadline. Default
    /// 250 ms.
    pub tuning_deadline: Duration,
    /// Ring-buffer capacity of [`Engine::last_events`]; oldest events are
    /// dropped beyond it. Default 256.
    pub max_events: usize,
    /// Enforcement mode for the static verifier on every compile issued
    /// through the engine. The verdict is recorded on the compiled kernel
    /// (and therefore cached alongside its fingerprint) and surfaced as an
    /// [`EngineEvent::Verified`]; under [`VerifyMode::Deny`] a kernel with
    /// a proven violation fails to compile. Default
    /// [`taco_core::default_verify_mode`]: deny in debug builds, warn in
    /// release.
    pub verify: VerifyMode,
    /// Which execution backend runs kernels: the interpreter, or native
    /// shared objects compiled from the emitted C (with the interpreter as
    /// verify-gated correctness oracle and fallback — see
    /// [`crate::Backend`]). Default: [`Backend::from_env`], i.e. the
    /// `TACO_BACKEND` environment knob (`auto` when unset).
    pub backend: Backend,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_max_bytes: 64 << 20,
            cache_max_entries: 1024,
            cache_shards: 8,
            budget: ResourceBudget::unlimited(),
            tuning_deadline: Duration::from_millis(250),
            max_events: 256,
            verify: taco_core::default_verify_mode(),
            backend: Backend::from_env(),
        }
    }
}

/// Fluent construction for [`Engine`]: `Engine::builder()` starts from
/// [`EngineConfig::default`], each method overrides one knob, and
/// [`EngineBuilder::build`] produces the engine.
///
/// ```
/// use taco_runtime::{Engine, VerifyMode};
///
/// let engine = Engine::builder().verify(VerifyMode::Deny).build();
/// assert_eq!(engine.config().verify, VerifyMode::Deny);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Sets the static-verification enforcement mode for every compile.
    #[must_use]
    pub fn verify(mut self, mode: VerifyMode) -> EngineBuilder {
        self.config.verify = mode;
        self
    }

    /// Sets the resource budget applied to every compile and run.
    #[must_use]
    pub fn budget(mut self, budget: ResourceBudget) -> EngineBuilder {
        self.config.budget = budget;
        self
    }

    /// Sets the kernel-cache byte budget.
    #[must_use]
    pub fn cache_max_bytes(mut self, bytes: u64) -> EngineBuilder {
        self.config.cache_max_bytes = bytes;
        self
    }

    /// Sets the wall-clock budget for one autotune search.
    #[must_use]
    pub fn tuning_deadline(mut self, deadline: Duration) -> EngineBuilder {
        self.config.tuning_deadline = deadline;
        self
    }

    /// Sets the ring-buffer capacity of [`Engine::last_events`]. Size this
    /// to the event rate of the workload: once the buffer wraps, the oldest
    /// events are dropped (counted by [`Engine::dropped_events`]).
    #[must_use]
    pub fn max_events(mut self, capacity: usize) -> EngineBuilder {
        self.config.max_events = capacity;
        self
    }

    /// Sets the execution backend ([`EngineConfig::backend`]), overriding
    /// the `TACO_BACKEND` environment default.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> EngineBuilder {
        self.config.backend = backend;
        self
    }

    /// Builds the engine.
    #[must_use]
    pub fn build(self) -> Engine {
        Engine::with_config(self.config)
    }
}

/// Something the engine did on the caller's behalf that changed how a
/// result was produced: a compile-time or runtime fallback, or an autotune
/// decision (fresh or reused). All such events flow through one query path,
/// [`Engine::last_events`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineEvent {
    /// A kernel was compiled or retried in degraded form (see
    /// [`FallbackEvent`]). Recorded once per actual compile or supervised
    /// retry — cache hits on a degraded kernel do not repeat it.
    Fallback(FallbackEvent),
    /// An autotune search ran and picked a schedule.
    Autotuned {
        /// The decision key (expression × formats × sparsity class).
        key: TuneKey,
        /// Name of the winning candidate schedule.
        schedule: String,
        /// Candidates enumerated.
        candidates: usize,
        /// Candidates that compiled and ran to completion.
        viable: usize,
        /// Candidates skipped without a timing run because the symbolic
        /// cost analyzer proved their peak allocation charge at least
        /// [`Engine::TUNE_PRUNE_MARGIN`] times the incumbent's measured
        /// peak — statically dominated on memory, not worth racing.
        pruned: usize,
        /// Measured nanoseconds of the winner.
        best_nanos: u64,
        /// Pinned thread count of the winner (`None` = serial/auto).
        threads: Option<usize>,
    },
    /// A previously tuned decision was reused without searching.
    AutotuneReused {
        /// The decision key that hit.
        key: TuneKey,
        /// The remembered schedule.
        schedule: String,
    },
    /// A freshly compiled kernel was run through the static verifier.
    /// Recorded once per actual compile — cache hits reuse the verdict
    /// stored on the kernel
    /// ([`CompiledKernel::verify_report`]) without repeating the event.
    Verified {
        /// The kernel's canonical fingerprint (the cache key).
        fingerprint: u64,
        /// Deny-severity findings. Nonzero only under [`VerifyMode::Warn`]
        /// (under deny the compile fails instead).
        denies: usize,
        /// Warn-severity findings (undischarged obligations).
        warns: usize,
    },
    /// A kernel's emitted C was compiled to a native shared object and
    /// loaded (still untrusted until its differential check passes).
    /// Recorded once per fingerprint.
    NativeCompiled {
        /// The kernel's canonical fingerprint.
        fingerprint: u64,
        /// Wall-clock nanoseconds the C compiler took (0 when the shared
        /// object was served from the on-disk artifact cache).
        compile_nanos: u64,
    },
    /// A kernel was refused the native backend — by the verify gate, the
    /// emitter, or a failed differential check — and will run on the
    /// interpreter. Recorded once per fingerprint. Toolchain failures are
    /// recorded as [`FallbackEvent::NativeUnavailable`] instead.
    NativeRejected {
        /// The kernel's canonical fingerprint.
        fingerprint: u64,
        /// Why the native form was refused.
        reason: String,
    },
}

impl std::fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineEvent::Fallback(e) => write!(f, "fallback: {e}"),
            EngineEvent::Autotuned {
                key,
                schedule,
                candidates,
                viable,
                pruned,
                best_nanos,
                threads,
            } => {
                write!(
                    f,
                    "autotuned [{key}]: chose `{schedule}` ({viable}/{candidates} runs viable, \
                     {pruned} statically pruned, best {:.3} ms",
                    *best_nanos as f64 / 1e6
                )?;
                match threads {
                    Some(n) => write!(f, ", {n} threads)"),
                    None => write!(f, ")"),
                }
            }
            EngineEvent::AutotuneReused { key, schedule } => {
                write!(f, "autotune reused [{key}]: `{schedule}`")
            }
            EngineEvent::Verified { fingerprint, denies, warns } => {
                write!(f, "verified kernel {fingerprint:016x}: {denies} deny, {warns} warn")
            }
            EngineEvent::NativeCompiled { fingerprint, compile_nanos } => {
                if *compile_nanos == 0 {
                    write!(f, "native kernel {fingerprint:016x} loaded from the artifact cache")
                } else {
                    write!(
                        f,
                        "native kernel {fingerprint:016x} compiled in {:.3} ms",
                        *compile_nanos as f64 / 1e6
                    )
                }
            }
            EngineEvent::NativeRejected { fingerprint, reason } => {
                write!(f, "native kernel {fingerprint:016x} rejected: {reason}")
            }
        }
    }
}

/// The result of [`Engine::run_supervised_cached`]: the committed ladder
/// outcome plus the request-level warm-kernel signal.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// The committed result, rung, run report, and fallback trail.
    pub outcome: SupervisedOutcome,
    /// True when the first attempted rung's kernel was served from the
    /// cache (hit or coalesced) rather than compiled by this call.
    pub cache_hit: bool,
    /// True when the committing run executed on a trusted native kernel
    /// rather than the interpreter. (A differential trust-check run counts
    /// as interpreted: the interpreter's result is what committed.)
    pub native: bool,
}

/// The result of [`Engine::run_tuned`].
#[derive(Debug, Clone)]
pub struct TunedOutcome {
    /// The computed tensor.
    pub result: Tensor,
    /// Name of the schedule that produced it.
    pub schedule: String,
    /// True if this call ran the search; false if a cached decision was
    /// reused.
    pub tuned: bool,
}

/// The bounded event ring plus a monotonic count of everything it has had
/// to forget, so overload diagnosis can trust the stream: `dropped == 0`
/// means [`Engine::last_events`] is the complete history.
#[derive(Debug, Default)]
struct EventLog {
    buf: VecDeque<EngineEvent>,
    dropped: u64,
}

/// A long-lived kernel engine: compiled-kernel cache, autotuner, and event
/// log behind one thread-safe façade. Share it across threads with an
/// `Arc<Engine>`; every method takes `&self`.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: KernelCache,
    tuner: Autotuner,
    events: Mutex<EventLog>,
    pub(crate) native: NativeStore,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Static-pruning margin of the autotune search: a candidate is skipped
    /// without a timing run when its proven peak-allocation bound is at
    /// least this many times the incumbent's *measured* peak. Chosen well
    /// above the analyzer's typical bound-tightness ratio so a loose (but
    /// sound) bound never prunes a genuinely competitive schedule.
    pub const TUNE_PRUNE_MARGIN: u64 = 4;

    /// An engine with [`EngineConfig::default`].
    pub fn new() -> Engine {
        Engine::with_config(EngineConfig::default())
    }

    /// Fluent construction: `Engine::builder().verify(VerifyMode::Deny).build()`.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Engine {
        let cache =
            KernelCache::new(config.cache_max_bytes, config.cache_max_entries, config.cache_shards);
        Engine {
            config,
            cache,
            tuner: Autotuner::new(),
            events: Mutex::new(EventLog::default()),
            native: NativeStore::default(),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Compiles a statement through the cache.
    ///
    /// The cache key is the kernel's canonical fingerprint
    /// ([`CompiledKernel::fingerprint`]): statement structure, applied
    /// schedule, operand formats/dimensions, lowering options, and the
    /// engine's budget class. A hit returns the shared kernel without
    /// touching the compile pipeline; concurrent misses of one key coalesce
    /// into a single compile.
    ///
    /// # Errors
    ///
    /// Propagates compile errors; waiters that coalesced onto a failed
    /// compile get [`EngineError::SharedCompileFailed`].
    pub fn compile(&self, stmt: &IndexStmt, opts: LowerOptions) -> Result<Arc<CompiledKernel>> {
        self.compile_traced(stmt, opts).map(|(kernel, _)| kernel)
    }

    /// Like [`Engine::compile`], additionally reporting whether the kernel
    /// was served warm: `true` means a cache hit or a coalesced wait on a
    /// concurrent compile of the same fingerprint, `false` means this call
    /// ran the compile pipeline. The serving layer uses this to count
    /// per-request coalescing.
    ///
    /// # Errors
    ///
    /// See [`Engine::compile`].
    pub fn compile_traced(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
    ) -> Result<(Arc<CompiledKernel>, bool)> {
        let budget = self.config.budget;
        let key = taco_core::fingerprint(stmt.concrete(), &opts, &budget);
        let mut compiled_now = false;
        let kernel = self.cache.get_or_compile(key, || {
            compiled_now = true;
            stmt.compile_checked(opts, budget, self.config.verify)
        })?;
        if compiled_now {
            for e in kernel.fallback_events() {
                self.push_event(EngineEvent::Fallback(e.clone()));
            }
            if let Some(report) = kernel.verify_report() {
                self.push_event(EngineEvent::Verified {
                    fingerprint: kernel.fingerprint(),
                    denies: report.denies(),
                    warns: report.warns(),
                });
            }
        }
        Ok((kernel, !compiled_now))
    }

    /// Compiles (through the cache) and runs a statement.
    ///
    /// # Errors
    ///
    /// Compile errors, or the usual bind/run errors.
    pub fn run(&self, stmt: &IndexStmt, opts: LowerOptions, inputs: &[(&str, &Tensor)]) -> Result<Tensor> {
        self.run_with(stmt, opts, inputs, None)
    }

    /// Like [`Engine::run`], with a pre-assembled output structure for
    /// compute kernels with sparse results.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_with(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
    ) -> Result<Tensor> {
        let kernel = self.compile(stmt, opts)?;
        if let Some(attempt) =
            self.try_run_native(&kernel, inputs, output_structure, None, self.config.backend)
        {
            return attempt.result.map(|(result, _)| result).map_err(Into::into);
        }
        Ok(kernel.run_with(inputs, output_structure)?)
    }

    /// Runs a statement under a [`Supervisor`], descending the
    /// degrade-and-retry ladder on retryable aborts
    /// ([`IndexStmt::run_supervised`]) and recording every fallback in the
    /// engine's event log. The ladder re-lowers per rung, so this path does
    /// not consult the kernel cache.
    ///
    /// # Errors
    ///
    /// See [`IndexStmt::run_supervised`].
    pub fn run_supervised(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        supervisor: &Supervisor,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
    ) -> Result<SupervisedOutcome> {
        let outcome = stmt.run_supervised(opts, supervisor, inputs, output_structure)?;
        for e in &outcome.fallbacks {
            self.push_event(EngineEvent::Fallback(e.clone()));
        }
        Ok(outcome)
    }

    /// Runs a statement under a [`Supervisor`], descending the same
    /// degrade-and-retry ladder as [`Engine::run_supervised`] — but with
    /// every rung compiled *through the kernel cache*, so a serving workload
    /// coalesces onto warm kernels: N concurrent requests for one statement
    /// cost one compile (single-flight), and a rung that aborted for an
    /// earlier request retries from a cached kernel for the next.
    ///
    /// `verify` is enforced per call, on top of the engine-wide
    /// [`EngineConfig::verify`] applied at compile time: under
    /// [`VerifyMode::Deny`], a *cached* kernel whose recorded report carries
    /// deny-severity findings (possible when the engine compiled it under
    /// [`VerifyMode::Warn`]) is refused for this caller with
    /// [`EngineError::VerifyDenied`] and the ladder moves on. This is what
    /// lets one shared engine serve tenants with different verification
    /// policies.
    ///
    /// Returns the committed [`SupervisedOutcome`] plus whether the *first
    /// attempted rung* was served from the cache (the request-level
    /// coalesce/warm signal).
    ///
    /// # Errors
    ///
    /// [`CoreError::Aborted`] via [`EngineError::Core`] when every viable
    /// rung aborted; compile/bind errors for problems no rung can fix;
    /// [`EngineError::VerifyDenied`] when the only viable kernels are
    /// verify-denied for this caller.
    pub fn run_supervised_cached(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        supervisor: &Supervisor,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
        verify: VerifyMode,
    ) -> Result<SupervisedRun> {
        self.run_supervised_cached_with_backend(
            stmt,
            opts,
            supervisor,
            inputs,
            output_structure,
            verify,
            self.config.backend,
        )
    }

    /// [`Engine::run_supervised_cached`] with a per-call backend preference
    /// (e.g. a tenant policy): [`Backend::Auto`] defers to
    /// [`EngineConfig::backend`], anything else wins for this call. The
    /// trust ledger and compiled shared objects are engine-wide, so a
    /// native-preferring tenant warms them for every other tenant.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_supervised_cached`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_supervised_cached_with_backend(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        supervisor: &Supervisor,
        inputs: &[(&str, &Tensor)],
        output_structure: Option<&Tensor>,
        verify: VerifyMode,
        backend: Backend,
    ) -> Result<SupervisedRun> {
        let backend = backend.resolve_with(self.config.backend);
        let mut fallbacks: Vec<FallbackEvent> = Vec::new();
        let mut last_err: Option<EngineError> = None;
        let mut first_rung_warm: Option<bool> = None;
        for rung in DegradeRung::LADDER {
            // Rebuild each rung from public schedule surface: same skip
            // rules as `IndexStmt::run_supervised`, but expressed through
            // `LowerOptions` so every rung's kernel is cacheable.
            let attempt: Option<(IndexStmt, LowerOptions)> = match rung {
                DegradeRung::AsScheduled => Some((stmt.clone(), opts.clone())),
                DegradeRung::HashWorkspace | DegradeRung::CoordListWorkspace => {
                    let kind = if rung == DegradeRung::HashWorkspace {
                        WorkspaceKind::Hash
                    } else {
                        WorkspaceKind::CoordList
                    };
                    // Nothing to downgrade when the schedule has no
                    // workspaces, the caller already asked for this backend,
                    // or the compile-time budget fallback already chose it.
                    if opts.workspace_kind == kind
                        || stmt_workspaces(stmt.concrete()).is_empty()
                        || fallbacks.iter().any(|f| {
                            matches!(f, FallbackEvent::WorkspaceDowngraded { to, .. } if *to == kind)
                        })
                    {
                        None
                    } else {
                        Some((stmt.clone(), opts.clone().with_workspace_kind(kind)))
                    }
                }
                DegradeRung::UnsortedAssembly => {
                    if !opts.sort_output || opts.kind == KernelKind::Compute {
                        None
                    } else {
                        Some((stmt.clone(), opts.clone().unsorted()))
                    }
                }
                DegradeRung::DirectMerge => {
                    // If the compile-time workspace estimate already forced
                    // the direct kernel, the as-scheduled rung was this one.
                    if fallbacks
                        .iter()
                        .any(|f| matches!(f, FallbackEvent::WorkspaceOverBudget { .. }))
                    {
                        None
                    } else {
                        match IndexStmt::new(stmt.source().clone()) {
                            Ok(direct)
                                if fingerprint_stmt(direct.concrete())
                                    != fingerprint_stmt(stmt.concrete()) =>
                            {
                                Some((direct, opts.clone()))
                            }
                            _ => None,
                        }
                    }
                }
            };
            let Some((rung_stmt, rung_opts)) = attempt else { continue };
            let (kernel, warm) = match self.compile_traced(&rung_stmt, rung_opts) {
                Ok(pair) => pair,
                // Rung not realizable (e.g. direct sparse scatter): try the
                // next one, but remember why in case nothing works.
                Err(e) => {
                    last_err.get_or_insert(e);
                    continue;
                }
            };
            first_rung_warm.get_or_insert(warm);
            if verify == VerifyMode::Deny {
                if let Some(report) = kernel.verify_report() {
                    if report.denies() > 0 {
                        last_err = Some(EngineError::VerifyDenied {
                            fingerprint: kernel.fingerprint(),
                            denies: report.denies(),
                        });
                        continue;
                    }
                }
            }
            if rung == DegradeRung::AsScheduled {
                fallbacks.extend(kernel.fallback_events().iter().cloned());
            }
            let (run_result, native) = match self.try_run_native(
                &kernel,
                inputs,
                output_structure,
                Some(supervisor),
                backend,
            ) {
                Some(attempt) => (attempt.result, attempt.native),
                None => (kernel.run_supervised(inputs, output_structure, supervisor), false),
            };
            match run_result {
                Ok((result, report)) => {
                    return Ok(SupervisedRun {
                        outcome: SupervisedOutcome { result, report, rung, fallbacks },
                        cache_hit: first_rung_warm.unwrap_or(false),
                        native,
                    });
                }
                Err(CoreError::Aborted(aborted)) if aborted.reason.is_retryable() => {
                    let event =
                        FallbackEvent::DegradedRetry { rung, reason: aborted.reason.clone() };
                    self.push_event(EngineEvent::Fallback(event.clone()));
                    fallbacks.push(event);
                    last_err = Some(EngineError::Core(CoreError::Aborted(aborted)));
                }
                // Cancellation, runtime failures, and bind errors are not
                // fixed by a degraded schedule.
                Err(other) => return Err(other.into()),
            }
        }
        Err(last_err.expect("at least the as-scheduled rung is always attempted"))
    }

    /// Picks the best schedule for a statement by measurement, then runs it.
    ///
    /// On the first call for a [`TuneKey`] (expression fingerprint × operand
    /// format signature × sparsity bucket) the engine enumerates the
    /// candidate space ([`enumerate_candidates`]: direct merge, loop
    /// reorders, and every Section V-C workspace placement), compiles each
    /// through the cache, times it on the *actual operands* under the
    /// engine budget (best of up to three runs, so one scheduler stall
    /// cannot flip the decision), and picks the fastest. Candidates that fail to
    /// compile or abort count as infinitely slow. Once one viable candidate
    /// is in hand, no new candidate starts after
    /// [`EngineConfig::tuning_deadline`]; later candidates race under the
    /// remaining time.
    ///
    /// The decision is remembered: later calls with the same key skip the
    /// search (`tuned == false` in the outcome, one
    /// [`EngineEvent::AutotuneReused`] logged) and go straight through the
    /// kernel cache.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoViableCandidate`] when nothing compiles and runs;
    /// otherwise the usual compile/run errors.
    pub fn run_tuned(
        &self,
        stmt: &IndexStmt,
        opts: LowerOptions,
        inputs: &[(&str, &Tensor)],
    ) -> Result<TunedOutcome> {
        let key = TuneKey::new(stmt, inputs);
        if let Some(decision) = self.tuner.decision(&key) {
            let schedule = decision.schedule;
            let cand = enumerate_candidates(stmt)
                .into_iter()
                .find(|c| c.name == schedule)
                .ok_or_else(|| EngineError::UnknownSchedule { schedule: schedule.clone() })?;
            self.push_event(EngineEvent::AutotuneReused { key, schedule: schedule.clone() });
            let opts = match decision.threads {
                Some(n) => opts.with_threads(n),
                None => opts,
            };
            let opts = opts.with_workspace_kind(cand.workspace_kind);
            let converted = converted_operands(inputs, &cand.conversions)
                .map_err(|e| EngineError::Core(CoreError::Tensor(e)))?;
            let run_inputs: Vec<(&str, &Tensor)> = inputs
                .iter()
                .zip(&converted)
                .map(|((n, t), c)| (*n, c.as_ref().unwrap_or(t)))
                .collect();
            let result = self.run(&cand.stmt, opts, &run_inputs)?;
            return Ok(TunedOutcome { result, schedule, tuned: false });
        }

        let started = Instant::now();
        let candidates = enumerate_candidates(stmt);
        let total = candidates.len();
        let mut viable = 0usize;
        let mut pruned = 0usize;
        type Best = (String, Option<usize>, WorkspaceKind, Vec<(String, Format)>, Tensor, u64);
        let mut best: Option<Best> = None;
        // Measured peak allocation charge of the incumbent, for static
        // pruning (0 until a run reports one).
        let mut best_peak: u64 = 0;
        'candidates: for cand in candidates {
            // Format-conversion candidates run on converted copies of the
            // named operands; a conversion that fails (or an identical
            // format) simply leaves the original bound.
            let Ok(converted) = converted_operands(inputs, &cand.conversions) else {
                continue;
            };
            let cand_inputs: Vec<(&str, &Tensor)> = inputs
                .iter()
                .zip(&converted)
                .map(|((n, t), c)| (*n, c.as_ref().unwrap_or(t)))
                .collect();
            // Static pruning: once an incumbent has been timed, a candidate
            // whose *proven* peak allocation bound — evaluated against the
            // actual operands — is at least `TUNE_PRUNE_MARGIN` times the
            // incumbent's measured peak is dominated on memory by a margin
            // no timing upset can justify, so it is skipped without a run.
            // Unknown bounds are never pruned: degradation is conservative.
            if best_peak > 0 {
                let prune_opts = opts.clone().with_workspace_kind(cand.workspace_kind);
                if let Ok(kernel) = self.compile(&cand.stmt, prune_opts) {
                    if let Ok(binding) = kernel.bind(&cand_inputs, None) {
                        if let Some(bound) = kernel.static_peak_bytes(&binding) {
                            if bound >= best_peak.saturating_mul(Self::TUNE_PRUNE_MARGIN) {
                                pruned += 1;
                                continue;
                            }
                        }
                    }
                }
            }
            // A parallel candidate is timed at explicit thread counts (two
            // and the machine width) so the remembered decision also says
            // how wide to run it; serial candidates get one unpinned run.
            // On a single-core machine a parallel candidate can only fall
            // back to its serial twin's exact work, so it is skipped
            // outright — timing duplicate kernels would make the decision a
            // coin flip on noise.
            let thread_counts: Vec<Option<usize>> = if cand.name.contains("parallelize") {
                let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
                if avail <= 1 {
                    continue;
                }
                let mut counts = vec![Some(2)];
                if avail > 2 {
                    counts.push(Some(avail));
                }
                counts
            } else {
                vec![None]
            };
            for threads in thread_counts {
                let remaining = self.config.tuning_deadline.saturating_sub(started.elapsed());
                if best.is_some() && remaining.is_zero() {
                    break 'candidates;
                }
                let run_opts = match threads {
                    Some(n) => opts.clone().with_threads(n),
                    None => opts.clone(),
                };
                let run_opts = run_opts.with_workspace_kind(cand.workspace_kind);
                let Ok(kernel) = self.compile(&cand.stmt, run_opts) else {
                    continue;
                };
                // Timing a candidate once makes the decision hostage to a
                // single scheduler stall: the displacement margin is 5% and
                // one preempted run easily exceeds that. Each candidate gets
                // up to TUNE_REPS runs and the minimum counts — the first
                // run of the first viable candidate still ignores the
                // deadline so a slow search budget can never turn a tunable
                // statement into an error; every other rep only spends
                // remaining search time.
                const TUNE_REPS: usize = 3;
                let mut measured: Option<(Tensor, u64, u64)> = None;
                for rep in 0..TUNE_REPS {
                    let remaining =
                        self.config.tuning_deadline.saturating_sub(started.elapsed());
                    if rep > 0 && remaining.is_zero() {
                        break;
                    }
                    let mut supervisor = Supervisor::new().with_budget(self.config.budget);
                    if best.is_some() || rep > 0 {
                        supervisor = supervisor.with_deadline(remaining);
                    }
                    // The native backend competes on equal footing: once a
                    // candidate's kernel is differential-trusted, later reps
                    // (and the remembered decision's reuse path) time the
                    // compiled shared object instead of the interpreter.
                    let run_result = match self.try_run_native(
                        &kernel,
                        &cand_inputs,
                        None,
                        Some(&supervisor),
                        self.config.backend,
                    ) {
                        Some(attempt) => attempt.result,
                        None => kernel.run_supervised(&cand_inputs, None, &supervisor),
                    };
                    match run_result {
                        Ok((result, report)) => {
                            let nanos = report.elapsed.as_nanos() as u64;
                            let peak = report.progress.peak_bytes();
                            measured = Some(match measured.take() {
                                Some((first, b, p)) => (first, b.min(nanos), p.max(peak)),
                                None => (result, nanos, peak),
                            });
                        }
                        Err(_) => break,
                    }
                }
                let Some((result, nanos, peak)) = measured else { continue };
                viable += 1;
                // A challenger displaces the incumbent only by a clear
                // margin (5%): candidates are enumerated simplest-first, so
                // near-ties deterministically keep the simpler schedule
                // instead of flipping on timing noise. Sparse workspace
                // backends need a decisive win (40%): on small operands
                // their times sit within noise of their dense twin, and
                // their real role is the budget ladder, not shaving
                // single-digit percents here. Format-conversion candidates
                // need the same decisive win: their conversion cost is paid
                // outside the timed region, so a noise-level advantage would
                // pick a schedule whose end-to-end cost is strictly worse.
                let margin = if cand.workspace_kind != WorkspaceKind::Dense
                    || !cand.conversions.is_empty()
                {
                    60
                } else {
                    95
                };
                if best.as_ref().is_none_or(|(.., b)| nanos * 100 < *b * margin) {
                    best = Some((
                        cand.name.clone(),
                        threads,
                        cand.workspace_kind,
                        cand.conversions.clone(),
                        result,
                        nanos,
                    ));
                    best_peak = peak;
                }
            }
        }
        let Some((schedule, threads, workspace_kind, conversions, result, best_nanos)) = best
        else {
            return Err(EngineError::NoViableCandidate { candidates: total });
        };
        self.tuner.record(
            key,
            TuneDecision {
                schedule: schedule.clone(),
                best_nanos,
                threads,
                workspace_kind,
                conversions,
                candidates: total,
                viable,
            },
        );
        self.push_event(EngineEvent::Autotuned {
            key,
            schedule: schedule.clone(),
            candidates: total,
            viable,
            pruned,
            best_nanos,
            threads,
        });
        Ok(TunedOutcome { result, schedule, tuned: true })
    }

    /// Snapshot of the kernel-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The autotune decision store (for inspecting decisions and the
    /// tuning-run count).
    pub fn tuner(&self) -> &Autotuner {
        &self.tuner
    }

    /// The engine's event log, oldest first: every fallback and autotune
    /// decision since construction, up to [`EngineConfig::max_events`].
    pub fn last_events(&self) -> Vec<EngineEvent> {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).buf.iter().cloned().collect()
    }

    /// Monotonic count of events the ring buffer has dropped since
    /// construction. Zero means [`Engine::last_events`] is the complete
    /// event history; nonzero tells an overload investigation exactly how
    /// much of the stream is missing (and to raise
    /// [`EngineBuilder::max_events`]).
    pub fn dropped_events(&self) -> u64 {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).dropped
    }

    /// Converts a tensor to `format` — the pack/convert kernel surfaced at
    /// the engine level, so callers that route everything through the
    /// [`Engine`] never have to reach into [`Tensor`] directly. Identity
    /// conversions return a cheap copy.
    ///
    /// # Errors
    ///
    /// [`taco_tensor::TensorError`] (via [`CoreError::Tensor`]) when the
    /// format's rank does not match or its level chain is invalid.
    pub fn convert(&self, tensor: &Tensor, format: Format) -> Result<Tensor> {
        tensor.convert(format).map_err(|e| EngineError::Core(CoreError::Tensor(e)))
    }

    /// Packs dense (row-major) data into `format` through the engine — the
    /// companion of [`Engine::convert`] for data that starts outside any
    /// sparse format.
    ///
    /// # Errors
    ///
    /// [`taco_tensor::TensorError`] when `data.len()` does not match the
    /// shape or the format is invalid for the shape.
    pub fn pack(&self, shape: &[usize], data: &[f64], format: Format) -> Result<Tensor> {
        let volume: usize = shape.iter().product();
        if shape.is_empty() || data.len() != volume {
            return Err(EngineError::Core(CoreError::Tensor(
                taco_tensor::TensorError::InvalidFormat {
                    detail: format!(
                        "pack: {} values do not fill shape {shape:?}",
                        data.len()
                    ),
                },
            )));
        }
        let dense = taco_tensor::DenseTensor::from_data(shape.to_vec(), data.to_vec());
        Tensor::from_dense(&dense, format).map_err(|e| EngineError::Core(CoreError::Tensor(e)))
    }

    pub(crate) fn push_event(&self, event: EngineEvent) {
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        while events.buf.len() >= self.config.max_events.max(1) {
            events.buf.pop_front();
            events.dropped += 1;
        }
        events.buf.push_back(event);
    }
}

/// Per-input converted operand for one candidate: `Some(tensor)` where a
/// conversion names the input and actually changes its format, `None` where
/// the original binds as-is.
fn converted_operands(
    inputs: &[(&str, &Tensor)],
    conversions: &[(String, Format)],
) -> std::result::Result<Vec<Option<Tensor>>, taco_tensor::TensorError> {
    inputs
        .iter()
        .map(|(name, t)| match conversions.iter().find(|(n, _)| n == name) {
            Some((_, f)) if t.format() != f => t.convert(f.clone()).map(Some),
            _ => Ok(None),
        })
        .collect()
}
