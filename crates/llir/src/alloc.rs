//! Unified allocation accounting for every execution backend.
//!
//! The interpreter ([`Executable::run`](crate::Executable::run)) and the
//! native backend (`taco-native`) both allocate output and workspace arrays
//! while a kernel runs, and both must abort with *identical* typed
//! [`RunError::BudgetExceeded`] payloads when a [`ResourceBudget`] limit is
//! crossed — a serving tier keys retry/degrade decisions off those payloads,
//! so backends may not disagree about when or how a budget trips.
//!
//! [`AllocSink`] is the charging contract; [`BudgetMeter`] is the single
//! canonical implementation, shared verbatim by both backends:
//!
//! * the interpreter's machine threads each `Alloc`/`Realloc`/map-growth
//!   through its meter, and
//! * the native host's `extern "C"` allocation callbacks charge the same
//!   meter before touching any buffer.
//!
//! The meter also carries the loop-iteration fuse so the native poll
//! callback can consume iterations in supervision-stride batches and still
//! abort on exactly the same iteration count as the interpreter.

use crate::budget::{BudgetResource, ResourceBudget};
use crate::error::RunError;
use crate::ArrayTy;

/// Bytes charged per element of an array of type `ty`. Both backends size
/// allocations from this table so their byte charges agree exactly.
pub fn elem_bytes(ty: ArrayTy) -> u64 {
    match ty {
        ArrayTy::Int => 8,
        ArrayTy::F64 => 8,
        ArrayTy::F32 => 4,
        ArrayTy::Bool => 1,
    }
}

/// The allocation-accounting contract every execution backend charges
/// through. One implementation — [`BudgetMeter`] — serves both the
/// interpreter and the native backend, which is what guarantees the two
/// report byte-identical budget aborts.
pub trait AllocSink {
    /// Charges `new_bytes` of fresh allocation for the array `name` against
    /// the single-allocation and cumulative byte limits.
    fn charge_array_bytes(&mut self, name: &str, new_bytes: u64) -> Result<(), RunError>;

    /// Charges map-workspace growth: the map's whole `footprint` must fit
    /// the single-workspace limit, and the growth `delta` counts toward the
    /// cumulative total.
    fn charge_map_bytes(&mut self, name: &str, footprint: u64, delta: u64)
        -> Result<(), RunError>;

    /// Counts one `Realloc` growth of the array in `slot` (named `name`)
    /// against the per-array doubling cap.
    fn charge_realloc_doubling(&mut self, slot: usize, name: &str) -> Result<(), RunError>;
}

/// Mutable budget accounting for one run. Limits of `u64::MAX`/`u32::MAX`
/// mean "unbounded" so the hot-path checks stay branch-cheap.
///
/// Constructed from a [`ResourceBudget`] at run start; consumed by exactly
/// one run (counters are cumulative within the run, never refunded).
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    pub(crate) iterations_left: u64,
    pub(crate) max_iterations: u64,
    pub(crate) max_single_bytes: u64,
    pub(crate) max_total_bytes: u64,
    pub(crate) total_bytes: u64,
    pub(crate) peak_single_bytes: u64,
    pub(crate) peak_map_bytes: u64,
    pub(crate) max_doublings: u32,
    pub(crate) realloc_counts: Vec<u32>,
}

impl BudgetMeter {
    /// Creates a meter for one run over `n_arrays` array slots.
    pub fn new(budget: &ResourceBudget, n_arrays: usize) -> BudgetMeter {
        let max_iterations = budget.max_loop_iterations.unwrap_or(u64::MAX);
        BudgetMeter {
            iterations_left: max_iterations,
            max_iterations,
            max_single_bytes: budget.max_workspace_bytes.unwrap_or(u64::MAX),
            max_total_bytes: budget.max_total_bytes.unwrap_or(u64::MAX),
            total_bytes: 0,
            peak_single_bytes: 0,
            peak_map_bytes: 0,
            max_doublings: budget.max_realloc_doublings.unwrap_or(u32::MAX),
            realloc_counts: vec![0; n_arrays],
        }
    }

    /// Cumulative bytes charged so far this run.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// High-water mark of the largest single array allocation charged this
    /// run (the observable the static cost analysis bounds per allocation).
    pub fn peak_single_bytes(&self) -> u64 {
        self.peak_single_bytes
    }

    /// High-water mark of the largest map-workspace footprint (capacity ×
    /// entry bytes, doubling included) charged this run.
    pub fn peak_map_bytes(&self) -> u64 {
        self.peak_map_bytes
    }

    /// Loop iterations consumed so far, recovered from the fuse.
    pub fn iterations_done(&self) -> u64 {
        self.max_iterations - self.iterations_left
    }

    /// Grants a batch of up to `want` loop iterations for coarse-grained
    /// (native) supervision. Returns `min(want, fuse + 1)`: when the fuse
    /// has fewer than `want` iterations left, the grant still includes the
    /// first over-budget iteration so the *charge* of the batch trips the
    /// fuse on exactly the same iteration count as the interpreter's
    /// one-at-a-time accounting.
    pub fn grant_iterations(&self, want: u64) -> u64 {
        want.min(self.iterations_left.saturating_add(1))
    }

    /// Consumes `n` loop iterations from the fuse; the error payload is
    /// identical to the interpreter's per-iteration consumption.
    pub fn consume_iterations(&mut self, n: u64) -> Result<(), RunError> {
        match self.iterations_left.checked_sub(n) {
            Some(left) => {
                self.iterations_left = left;
                Ok(())
            }
            None => Err(RunError::BudgetExceeded {
                resource: BudgetResource::LoopIterations,
                limit: self.max_iterations,
                requested: self.max_iterations.saturating_add(1),
                array: None,
            }),
        }
    }
}

impl AllocSink for BudgetMeter {
    fn charge_array_bytes(&mut self, name: &str, new_bytes: u64) -> Result<(), RunError> {
        if new_bytes > self.max_single_bytes {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::WorkspaceBytes,
                limit: self.max_single_bytes,
                requested: new_bytes,
                array: Some(name.to_string()),
            });
        }
        let total = self.total_bytes.saturating_add(new_bytes);
        if total > self.max_total_bytes {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::TotalBytes,
                limit: self.max_total_bytes,
                requested: total,
                array: Some(name.to_string()),
            });
        }
        self.total_bytes = total;
        self.peak_single_bytes = self.peak_single_bytes.max(new_bytes);
        Ok(())
    }

    fn charge_map_bytes(
        &mut self,
        name: &str,
        footprint: u64,
        delta: u64,
    ) -> Result<(), RunError> {
        if footprint > self.max_single_bytes {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::WorkspaceBytes,
                limit: self.max_single_bytes,
                requested: footprint,
                array: Some(name.to_string()),
            });
        }
        let total = self.total_bytes.saturating_add(delta);
        if total > self.max_total_bytes {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::TotalBytes,
                limit: self.max_total_bytes,
                requested: total,
                array: Some(name.to_string()),
            });
        }
        self.total_bytes = total;
        self.peak_map_bytes = self.peak_map_bytes.max(footprint);
        Ok(())
    }

    fn charge_realloc_doubling(&mut self, slot: usize, name: &str) -> Result<(), RunError> {
        let count = self.realloc_counts[slot].saturating_add(1);
        if count > self.max_doublings {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::ReallocDoublings,
                limit: self.max_doublings as u64,
                requested: count as u64,
                array: Some(name.to_string()),
            });
        }
        self.realloc_counts[slot] = count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_allocation_limit_trips_with_array_name() {
        let budget = ResourceBudget::unlimited().with_max_workspace_bytes(100);
        let mut m = BudgetMeter::new(&budget, 2);
        assert!(m.charge_array_bytes("w", 100).is_ok());
        let err = m.charge_array_bytes("w", 101).unwrap_err();
        match err {
            RunError::BudgetExceeded { resource, limit, requested, array } => {
                assert_eq!(resource, BudgetResource::WorkspaceBytes);
                assert_eq!(limit, 100);
                assert_eq!(requested, 101);
                assert_eq!(array.as_deref(), Some("w"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn cumulative_limit_counts_across_arrays() {
        let budget = ResourceBudget::unlimited().with_max_total_bytes(150);
        let mut m = BudgetMeter::new(&budget, 2);
        assert!(m.charge_array_bytes("a", 100).is_ok());
        let err = m.charge_array_bytes("b", 100).unwrap_err();
        match err {
            RunError::BudgetExceeded { resource, requested, .. } => {
                assert_eq!(resource, BudgetResource::TotalBytes);
                assert_eq!(requested, 200);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn batched_iteration_fuse_matches_per_iteration_payload() {
        let budget = ResourceBudget::unlimited().with_max_loop_iterations(500);
        let mut m = BudgetMeter::new(&budget, 0);
        let g = m.grant_iterations(1024);
        assert_eq!(g, 501, "grant includes the first over-budget iteration");
        let err = m.consume_iterations(g).unwrap_err();
        match err {
            RunError::BudgetExceeded { resource, limit, requested, array } => {
                assert_eq!(resource, BudgetResource::LoopIterations);
                assert_eq!(limit, 500);
                assert_eq!(requested, 501);
                assert_eq!(array, None);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn peak_high_water_marks_track_largest_charges() {
        let budget = ResourceBudget::unlimited();
        let mut m = BudgetMeter::new(&budget, 2);
        m.charge_array_bytes("a", 100).unwrap();
        m.charge_array_bytes("b", 40).unwrap();
        assert_eq!(m.peak_single_bytes(), 100);
        m.charge_map_bytes("w", 64, 64).unwrap();
        m.charge_map_bytes("w", 256, 192).unwrap();
        m.charge_map_bytes("w2", 32, 32).unwrap();
        assert_eq!(m.peak_map_bytes(), 256);
        assert_eq!(m.total_bytes(), 100 + 40 + 64 + 192 + 32);
    }

    #[test]
    fn realloc_doubling_cap() {
        let budget = ResourceBudget::unlimited().with_max_realloc_doublings(2);
        let mut m = BudgetMeter::new(&budget, 1);
        assert!(m.charge_realloc_doubling(0, "crd").is_ok());
        assert!(m.charge_realloc_doubling(0, "crd").is_ok());
        let err = m.charge_realloc_doubling(0, "crd").unwrap_err();
        match err {
            RunError::BudgetExceeded { resource, array, .. } => {
                assert_eq!(resource, BudgetResource::ReallocDoublings);
                assert_eq!(array.as_deref(), Some("crd"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
