//! Native C emission: lowers the typed, slot-resolved statement tree of an
//! [`Executable`] to a self-contained C translation unit against the
//! `taco_ctx` table ABI of `taco_kernel.h`.
//!
//! This is the code-generation half of the native backend; the compile /
//! dlopen / marshalling half lives in the `taco-native` crate. Emitting
//! from the *resolved* IR (rather than the surface [`Kernel`](crate::Kernel)
//! AST) means every scalar already has a type and a dense slot, so the C
//! mirrors the interpreter exactly: flat `int64_t i<n>` / `double f<n>` /
//! `bool b<n>` locals (slots are never reused across declarations), and
//! the same evaluation order statement by statement.
//!
//! Semantics contract with the interpreter (checked by the differential
//! trust gate in the runtime):
//!
//! * i64 arithmetic wraps (`-fwrapv`); division by zero is a sticky fault
//!   aborting at the statement boundary, `INT64_MIN / -1` wraps.
//! * All floats compute in `f64`; `F32` arrays load-promote and
//!   store-demote exactly like the interpreter.
//! * Loop bounds are evaluated once, before the loop; `while` conditions
//!   every iteration. Every back-edge burns one tick of the host-granted
//!   iteration batch, so fuse aborts and supervision latency match the
//!   interpreter's [`SUPERVISION_STRIDE`](crate::SUPERVISION_STRIDE).
//! * Stores are bounds-checked (a fault, not UB). Loads are *not*: reads
//!   are trusted to the static verifier plus the differential check — the
//!   documented trust contract of the native backend (DESIGN.md §15).
//! * `ParallelFor` is rejected: its deterministic clone-and-merge
//!   semantics have no plain-OpenMP equivalent, so parallel candidates
//!   stay on the interpreter and the autotuner races the two backends.

use crate::exec::{BExpr, FExpr, IExpr, RStmt};
use crate::{ArrayTy, BinOp, CompileError, Executable, ParamKind, WorkspaceKind};
use std::fmt::Write;

/// The C prelude shared by every emitted kernel (and by the display
/// dialect of [`Kernel::to_c`](crate::Kernel::to_c)).
pub const TACO_KERNEL_H: &str = include_str!("taco_kernel.h");

/// The exported entry symbol of every native kernel.
pub const ENTRY_SYMBOL: &str = "taco_kernel_entry";

/// The exported ABI-version symbol.
pub const ABI_VERSION_SYMBOL: &str = "taco_abi_version";

/// ABI version the emitted C and the Rust host must agree on. Keep in
/// sync with `TACO_ABI_VERSION` in `taco_kernel.h`.
pub const ABI_VERSION: i32 = 1;

/// One array slot of the table ABI.
#[derive(Debug, Clone)]
pub struct AbiArray {
    /// Array name (parameter name, or the kernel-local name).
    pub name: String,
    /// Element type: a parameter's declared type, or the type of the
    /// `Alloc` that materializes a kernel-local array. The emitted C
    /// declares the slot's pointer with this type, so it must match what
    /// the kernel actually stores there.
    pub ty: ArrayTy,
    /// Parameter kind; `None` for kernel-local arrays.
    pub kind: Option<ParamKind>,
    /// True for the hidden key/val slots backing a map workspace: they
    /// are never charged against the byte budget (maps charge through
    /// the logical entry model instead).
    pub map_backing: bool,
}

/// One map workspace of the table ABI, with its hidden backing slots.
#[derive(Debug, Clone)]
pub struct AbiMap {
    /// Map workspace name (for budget-abort payloads).
    pub name: String,
    /// Hidden array slot holding sorted keys (`int64_t`).
    pub keys_slot: usize,
    /// Hidden array slot holding values (`double`).
    pub vals_slot: usize,
}

/// Everything the host needs to marshal a [`Binding`](crate::Binding)
/// into the `taco_ctx` tables and back.
#[derive(Debug, Clone)]
pub struct AbiPlan {
    /// Kernel name.
    pub name: String,
    /// Scalar parameters in `ctx->scalars` order: (name, int slot).
    pub scalar_params: Vec<(String, usize)>,
    /// Scalar outputs in `ctx->scalar_out` order: (name, int slot).
    pub scalar_outputs: Vec<(String, usize)>,
    /// Every array slot, visible then hidden map backings, by index.
    pub arrays: Vec<AbiArray>,
    /// Map workspaces by map slot.
    pub maps: Vec<AbiMap>,
}

/// An emitted native translation unit plus its marshalling plan.
#[derive(Debug, Clone)]
pub struct NativeSource {
    /// Self-contained C (prelude + kernel), ready for `cc -shared`.
    pub c_source: String,
    /// The marshalling contract for the host.
    pub plan: AbiPlan,
}

/// Why a kernel cannot be emitted natively. Every variant degrades to
/// the interpreter; none is an error at the engine level.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeEmitError {
    /// The kernel failed to compile to the resolved IR (a lowering bug).
    Compile(CompileError),
    /// A construct with no native equivalent. The payload names it.
    Unsupported(String),
}

impl std::fmt::Display for NativeEmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeEmitError::Compile(e) => write!(f, "kernel failed to compile: {e}"),
            NativeEmitError::Unsupported(what) => {
                write!(f, "no native equivalent for {what}")
            }
        }
    }
}

impl std::error::Error for NativeEmitError {}

/// Emits the native C translation unit for a compiled kernel.
///
/// # Errors
///
/// [`NativeEmitError::Unsupported`] when the kernel uses `ParallelFor`
/// (deterministic clone-and-merge is interpreter-only) or mutates a map
/// workspace inside its own drain loop.
pub fn emit_native(exe: &Executable) -> Result<NativeSource, NativeEmitError> {
    check_supported(&exe.body)?;

    let n_visible = exe.array_names.len();
    let alloc_tys = alloc_types(&exe.body);
    let mut arrays: Vec<AbiArray> = Vec::with_capacity(n_visible + 2 * exe.map_names.len());
    for (slot, name) in exe.array_names.iter().enumerate() {
        let param = exe.array_params.iter().find(|(_, s, _, _)| *s == slot);
        // Kernel-local arrays have no parameter declaration; their element
        // type is the one their Alloc materializes. Defaulting to Int here
        // would declare e.g. a double workspace as int64_t* and type-pun
        // every load and store through it.
        arrays.push(AbiArray {
            name: name.clone(),
            ty: param
                .map(|(_, _, ty, _)| *ty)
                .or_else(|| alloc_tys.get(&slot).copied())
                .unwrap_or(ArrayTy::Int),
            kind: param.map(|(_, _, _, k)| *k),
            map_backing: false,
        });
    }
    let mut maps = Vec::with_capacity(exe.map_names.len());
    for name in exe.map_names.iter() {
        let keys_slot = arrays.len();
        arrays.push(AbiArray {
            name: format!("{name}.keys"),
            ty: ArrayTy::Int,
            kind: None,
            map_backing: true,
        });
        let vals_slot = arrays.len();
        arrays.push(AbiArray {
            name: format!("{name}.vals"),
            ty: ArrayTy::F64,
            kind: None,
            map_backing: true,
        });
        maps.push(AbiMap { name: name.clone(), keys_slot, vals_slot });
    }

    let plan = AbiPlan {
        name: exe.name.clone(),
        scalar_params: exe.scalar_params.as_ref().clone(),
        scalar_outputs: exe.scalar_outputs.as_ref().clone(),
        arrays,
        maps,
    };

    let mut e = Emitter { plan: &plan, out: String::new(), depth: 1 };
    let mut src = String::new();
    src.push_str(TACO_KERNEL_H);
    let _ = writeln!(src, "\n/* kernel: {} */", exe.name);
    let _ = writeln!(src, "int32_t {ABI_VERSION_SYMBOL}(void) {{ return TACO_ABI_VERSION; }}\n");
    let _ = writeln!(
        src,
        "int32_t {ENTRY_SYMBOL}(taco_ctx* ctx, int64_t row_lo, int64_t row_hi) {{"
    );
    let _ = writeln!(src, "  (void)row_lo; (void)row_hi;");

    // Flat scalar locals: slots are never reused across declarations, so
    // one function-scope local per slot reproduces interpreter scoping.
    for (pos, (_, slot)) in exe.scalar_params.iter().enumerate() {
        let _ = writeln!(src, "  int64_t i{slot} = ctx->scalars[{pos}];");
    }
    let param_slots: Vec<usize> = exe.scalar_params.iter().map(|(_, s)| *s).collect();
    for slot in 0..exe.n_int {
        if !param_slots.contains(&slot) {
            let _ = writeln!(src, "  int64_t i{slot} = 0;");
        }
        let _ = writeln!(src, "  (void)i{slot};");
    }
    for slot in 0..exe.n_float {
        let _ = writeln!(src, "  double f{slot} = 0.0; (void)f{slot};");
    }
    for slot in 0..exe.n_bool {
        let _ = writeln!(src, "  bool b{slot} = false; (void)b{slot};");
    }

    // Array locals for the visible slots (hidden map backings are only
    // touched through the prelude helpers, via the ctx tables).
    let mutated = mutated_slots(&exe.body);
    for slot in 0..n_visible {
        let ty = c_ty(plan.arrays[slot].ty);
        let konst = if mutated.contains(&slot) { "" } else { "const " };
        let _ = writeln!(
            src,
            "  {konst}{ty}* restrict a{slot} = ({konst}{ty}*)ctx->arr[{slot}];"
        );
        let _ = writeln!(src, "  int64_t a{slot}_n = ctx->arr_size[{slot}];");
        // Some slots are only touched through host callbacks (or not at
        // all on a given path); keep -Wall builds of the TU clean.
        let _ = writeln!(src, "  (void)a{slot}; (void)a{slot}_n;");
    }
    src.push('\n');

    e.block(&exe.body);
    src.push_str(&e.out);

    src.push('\n');
    for (pos, (_, slot)) in exe.scalar_outputs.iter().enumerate() {
        let _ = writeln!(src, "  ctx->scalar_out[{pos}] = i{slot};");
    }
    let _ = writeln!(src, "  return TACO_OK;");
    let _ = writeln!(src, "taco_abort:");
    let _ = writeln!(src, "  return ctx->status ? ctx->status : TACO_ERR_HOST;");
    let _ = writeln!(src, "}}");

    Ok(NativeSource { c_source: src, plan })
}

/// Rejects constructs the native backend cannot reproduce.
fn check_supported(body: &[RStmt]) -> Result<(), NativeEmitError> {
    for s in body {
        match s {
            RStmt::ParallelFor(_) => {
                return Err(NativeEmitError::Unsupported(
                    "parallel loop (deterministic clone-and-merge is interpreter-only)".into(),
                ))
            }
            RStmt::For(_, _, _, b) | RStmt::While(_, b) => check_supported(b)?,
            RStmt::If(_, t, e) => {
                check_supported(t)?;
                check_supported(e)?;
            }
            RStmt::MapDrainSorted(m, _, _, b) => {
                if drains_mutate_map(b, *m) {
                    return Err(NativeEmitError::Unsupported(
                        "map workspace mutated inside its own drain loop".into(),
                    ));
                }
                check_supported(b)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn drains_mutate_map(body: &[RStmt], map: usize) -> bool {
    body.iter().any(|s| match s {
        RStmt::MapInit(m, ..) | RStmt::MapScatter(m, ..) | RStmt::MapDrainSorted(m, ..) => {
            *m == map
        }
        RStmt::For(_, _, _, b) | RStmt::While(_, b) => drains_mutate_map(b, map),
        RStmt::If(_, t, e) => drains_mutate_map(t, map) || drains_mutate_map(e, map),
        _ => false,
    })
}

/// Element types of kernel-local arrays, recovered from the `Alloc` that
/// materializes each slot (slots are never reused, so first wins).
fn alloc_types(body: &[RStmt]) -> std::collections::HashMap<usize, ArrayTy> {
    let mut out = std::collections::HashMap::new();
    fn walk(body: &[RStmt], out: &mut std::collections::HashMap<usize, ArrayTy>) {
        for s in body {
            match s {
                RStmt::Alloc(slot, ty, _) => {
                    out.entry(*slot).or_insert(*ty);
                }
                RStmt::For(_, _, _, b) | RStmt::While(_, b) => walk(b, out),
                RStmt::If(_, t, e) => {
                    walk(t, out);
                    walk(e, out);
                }
                RStmt::MapDrainSorted(_, _, _, b) => walk(b, out),
                RStmt::ParallelFor(pf) => walk(&pf.body, out),
                _ => {}
            }
        }
    }
    walk(body, &mut out);
    out
}

/// Array slots written (stored to, filled, allocated, grown, or sorted)
/// anywhere in the body; the rest get `const` locals.
fn mutated_slots(body: &[RStmt]) -> Vec<usize> {
    let mut out = Vec::new();
    fn walk(body: &[RStmt], out: &mut Vec<usize>) {
        for s in body {
            match s {
                RStmt::StoreI(a, ..)
                | RStmt::StoreF64(a, ..)
                | RStmt::StoreF32(a, ..)
                | RStmt::StoreB(a, ..)
                | RStmt::StoreAddI(a, ..)
                | RStmt::StoreAddF64(a, ..)
                | RStmt::StoreAddF32(a, ..)
                | RStmt::MemsetI(a, ..)
                | RStmt::MemsetF64(a, ..)
                | RStmt::MemsetF32(a, ..)
                | RStmt::MemsetB(a, ..)
                | RStmt::Alloc(a, ..)
                | RStmt::Realloc(a, ..)
                | RStmt::Sort(a, ..) if !out.contains(a) => out.push(*a),
                RStmt::For(_, _, _, b) | RStmt::While(_, b) => walk(b, out),
                RStmt::If(_, t, e) => {
                    walk(t, out);
                    walk(e, out);
                }
                RStmt::MapDrainSorted(_, _, _, b) => walk(b, out),
                RStmt::ParallelFor(pf) => walk(&pf.body, out),
                _ => {}
            }
        }
    }
    walk(body, &mut out);
    out
}

fn c_ty(ty: ArrayTy) -> &'static str {
    match ty {
        ArrayTy::Int => "int64_t",
        ArrayTy::F64 => "double",
        ArrayTy::F32 => "float",
        ArrayTy::Bool => "bool",
    }
}

fn ty_code(ty: ArrayTy) -> &'static str {
    match ty {
        ArrayTy::Int => "TACO_TY_INT",
        ArrayTy::F64 => "TACO_TY_F64",
        ArrayTy::F32 => "TACO_TY_F32",
        ArrayTy::Bool => "TACO_TY_BOOL",
    }
}

fn i64_lit(v: i64) -> String {
    if v == i64::MIN {
        "(-9223372036854775807LL - 1)".to_string()
    } else {
        format!("{v}LL")
    }
}

fn f64_lit(v: f64) -> String {
    if v.is_nan() {
        "(0.0 / 0.0)".to_string()
    } else if v == f64::INFINITY {
        "(1.0 / 0.0)".to_string()
    } else if v == f64::NEG_INFINITY {
        "(-1.0 / 0.0)".to_string()
    } else {
        // `{:?}` is Rust's shortest round-trip form: always carries a
        // decimal point or exponent, so it parses as a C double.
        format!("{v:?}")
    }
}

// --- fault detection: does an expression contain integer div/rem? ------

fn ifaults(e: &IExpr) -> bool {
    match e {
        IExpr::Lit(_) | IExpr::Var(_) | IExpr::Len(_) => false,
        IExpr::Load(_, i) => ifaults(i),
        IExpr::Bin(op, a, b) => {
            matches!(op, BinOp::Div | BinOp::Rem) || ifaults(a) || ifaults(b)
        }
        IExpr::Neg(a) => ifaults(a),
    }
}

fn ffaults(e: &FExpr) -> bool {
    match e {
        FExpr::Lit(_) | FExpr::Var(_) => false,
        FExpr::LoadF64(_, i) | FExpr::LoadF32(_, i) => ifaults(i),
        FExpr::Bin(_, a, b) => ffaults(a) || ffaults(b),
        FExpr::Neg(a) => ffaults(a),
        FExpr::FromInt(i) => ifaults(i),
    }
}

fn bfaults(e: &BExpr) -> bool {
    match e {
        BExpr::Lit(_) | BExpr::Var(_) => false,
        BExpr::Load(_, i) => ifaults(i),
        BExpr::CmpI(_, a, b) => ifaults(a) || ifaults(b),
        BExpr::CmpF(_, a, b) => ffaults(a) || ffaults(b),
        BExpr::Bin(_, a, b) => bfaults(a) || bfaults(b),
        BExpr::Not(a) => bfaults(a),
    }
}

// --- the emitter -------------------------------------------------------

struct Emitter<'a> {
    plan: &'a AbiPlan,
    out: String,
    depth: usize,
}

impl Emitter<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// Emits `if (ctx->status) goto taco_abort;` — placed after any
    /// computation that may have raised a sticky div/rem fault, before
    /// its result can reach memory.
    fn fault_check(&mut self) {
        self.line("if (ctx->status) goto taco_abort;");
    }

    /// Refreshes the cached pointer/length locals of a visible slot after
    /// the host may have moved its buffer.
    fn refresh(&mut self, slot: usize) {
        let arr = &self.plan.arrays[slot];
        let ty = c_ty(arr.ty);
        // A mutated slot is never const (it was just allocated into).
        self.line(&format!("a{slot} = ({ty}*)ctx->arr[{slot}];"));
        self.line(&format!("a{slot}_n = ctx->arr_size[{slot}];"));
    }

    fn block(&mut self, body: &[RStmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn iexpr(&self, e: &IExpr) -> String {
        match e {
            IExpr::Lit(v) => i64_lit(*v),
            IExpr::Var(s) => format!("i{s}"),
            IExpr::Load(arr, idx) => format!("a{arr}[{}]", self.iexpr(idx)),
            IExpr::Len(arr) => format!("a{arr}_n"),
            IExpr::Bin(op, a, b) => {
                let (x, y) = (self.iexpr(a), self.iexpr(b));
                match op {
                    BinOp::Add => format!("({x} + {y})"),
                    BinOp::Sub => format!("({x} - {y})"),
                    BinOp::Mul => format!("({x} * {y})"),
                    BinOp::Div => format!("taco_div_i64(ctx, {x}, {y})"),
                    BinOp::Rem => format!("taco_rem_i64(ctx, {x}, {y})"),
                    BinOp::Min => format!("taco_min_i64({x}, {y})"),
                    BinOp::Max => format!("taco_max_i64({x}, {y})"),
                    other => unreachable!("non-arithmetic op {other:?} in int expression"),
                }
            }
            IExpr::Neg(a) => format!("(-{})", self.iexpr(a)),
        }
    }

    fn fexpr(&self, e: &FExpr) -> String {
        match e {
            FExpr::Lit(v) => f64_lit(*v),
            FExpr::Var(s) => format!("f{s}"),
            FExpr::LoadF64(arr, idx) => format!("a{arr}[{}]", self.iexpr(idx)),
            FExpr::LoadF32(arr, idx) => {
                format!("(double)a{arr}[{}]", self.iexpr(idx))
            }
            FExpr::Bin(op, a, b) => {
                let (x, y) = (self.fexpr(a), self.fexpr(b));
                match op {
                    BinOp::Add => format!("({x} + {y})"),
                    BinOp::Sub => format!("({x} - {y})"),
                    BinOp::Mul => format!("({x} * {y})"),
                    BinOp::Div => format!("({x} / {y})"),
                    BinOp::Rem => format!("fmod({x}, {y})"),
                    BinOp::Min => format!("fmin({x}, {y})"),
                    BinOp::Max => format!("fmax({x}, {y})"),
                    other => unreachable!("non-arithmetic op {other:?} in float expression"),
                }
            }
            FExpr::Neg(a) => format!("(-{})", self.fexpr(a)),
            FExpr::FromInt(i) => format!("(double)({})", self.iexpr(i)),
        }
    }

    fn bexpr(&self, e: &BExpr) -> String {
        match e {
            BExpr::Lit(v) => if *v { "true" } else { "false" }.to_string(),
            BExpr::Var(s) => format!("b{s}"),
            BExpr::Load(arr, idx) => format!("a{arr}[{}]", self.iexpr(idx)),
            BExpr::CmpI(op, a, b) => {
                format!("({} {} {})", self.iexpr(a), cmp_str(*op), self.iexpr(b))
            }
            BExpr::CmpF(op, a, b) => {
                format!("({} {} {})", self.fexpr(a), cmp_str(*op), self.fexpr(b))
            }
            BExpr::Bin(BinOp::And, a, b) => {
                format!("({} && {})", self.bexpr(a), self.bexpr(b))
            }
            BExpr::Bin(BinOp::Or, a, b) => {
                format!("({} || {})", self.bexpr(a), self.bexpr(b))
            }
            BExpr::Bin(op, ..) => unreachable!("non-logical op {op:?} in bool expression"),
            BExpr::Not(a) => format!("(!{})", self.bexpr(a)),
        }
    }

    /// A bounds-checked store: stores fault like the interpreter instead
    /// of invoking UB (loads stay unchecked under the verifier +
    /// differential trust contract).
    fn store(
        &mut self,
        arr: usize,
        idx: &IExpr,
        val_decl: &str,
        val: String,
        val_faults: bool,
        op: &str,
    ) {
        let faults = ifaults(idx) || val_faults;
        self.line("{");
        self.depth += 1;
        self.line(&format!("int64_t _x = {};", self.iexpr(idx)));
        self.line(&format!("{val_decl} _v = {val};"));
        if faults {
            self.fault_check();
        }
        self.line(&format!(
            "if ((uint64_t)_x >= (uint64_t)a{arr}_n) {{ ctx->fault(ctx, TACO_ERR_OOB, {arr}, _x, a{arr}_n); goto taco_abort; }}"
        ));
        self.line(&format!("a{arr}[_x] {op} _v;"));
        self.depth -= 1;
        self.line("}");
    }

    fn stmt(&mut self, s: &RStmt) {
        match s {
            RStmt::AssignI(slot, e) => {
                let v = self.iexpr(e);
                self.line(&format!("i{slot} = {v};"));
                if ifaults(e) {
                    self.fault_check();
                }
            }
            RStmt::AssignF(slot, e) => {
                let v = self.fexpr(e);
                self.line(&format!("f{slot} = {v};"));
                if ffaults(e) {
                    self.fault_check();
                }
            }
            RStmt::AssignB(slot, e) => {
                let v = self.bexpr(e);
                self.line(&format!("b{slot} = {v};"));
                if bfaults(e) {
                    self.fault_check();
                }
            }
            RStmt::StoreI(arr, idx, val) => {
                let v = self.iexpr(val);
                self.store(*arr, idx, "int64_t", v, ifaults(val), "=");
            }
            RStmt::StoreF64(arr, idx, val) => {
                let v = self.fexpr(val);
                self.store(*arr, idx, "double", v, ffaults(val), "=");
            }
            RStmt::StoreF32(arr, idx, val) => {
                let v = format!("(float)({})", self.fexpr(val));
                self.store(*arr, idx, "float", v, ffaults(val), "=");
            }
            RStmt::StoreB(arr, idx, val) => {
                let v = self.bexpr(val);
                self.store(*arr, idx, "bool", v, bfaults(val), "=");
            }
            RStmt::StoreAddI(arr, idx, val) => {
                let v = self.iexpr(val);
                self.store(*arr, idx, "int64_t", v, ifaults(val), "+=");
            }
            RStmt::StoreAddF64(arr, idx, val) => {
                let v = self.fexpr(val);
                self.store(*arr, idx, "double", v, ffaults(val), "+=");
            }
            RStmt::StoreAddF32(arr, idx, val) => {
                let v = format!("(float)({})", self.fexpr(val));
                self.store(*arr, idx, "float", v, ffaults(val), "+=");
            }
            RStmt::For(slot, lo, hi, body) => {
                // Bounds evaluate once, before the loop; the shadow
                // counter keeps body writes to the loop-var slot from
                // perturbing the trip count, exactly like the interpreter.
                self.line("{");
                self.depth += 1;
                self.line(&format!("int64_t _lo = {};", self.iexpr(lo)));
                self.line(&format!("int64_t _hi = {};", self.iexpr(hi)));
                if ifaults(lo) || ifaults(hi) {
                    self.fault_check();
                }
                self.line("for (int64_t _it = _lo; _it < _hi; _it++) {");
                self.depth += 1;
                self.line("TACO_TICK(ctx);");
                self.line(&format!("i{slot} = _it;"));
                self.block(body);
                self.depth -= 1;
                self.line("}");
                self.depth -= 1;
                self.line("}");
            }
            RStmt::ParallelFor(_) => {
                unreachable!("rejected by check_supported before emission")
            }
            RStmt::While(cond, body) => {
                if bfaults(cond) {
                    self.line("for (;;) {");
                    self.depth += 1;
                    let c = self.bexpr(cond);
                    self.line(&format!("bool _c = {c};"));
                    self.fault_check();
                    self.line("if (!_c) break;");
                } else {
                    let c = self.bexpr(cond);
                    self.line(&format!("while ({c}) {{"));
                    self.depth += 1;
                }
                self.line("TACO_TICK(ctx);");
                self.block(body);
                self.depth -= 1;
                self.line("}");
            }
            RStmt::If(cond, then, els) => {
                let faults = bfaults(cond);
                if faults {
                    self.line("{");
                    self.depth += 1;
                    let c = self.bexpr(cond);
                    self.line(&format!("bool _c = {c};"));
                    self.fault_check();
                    self.line("if (_c) {");
                } else {
                    let c = self.bexpr(cond);
                    self.line(&format!("if ({c}) {{"));
                }
                self.block_nested(then);
                if els.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.block_nested(els);
                    self.line("}");
                }
                if faults {
                    self.depth -= 1;
                    self.line("}");
                }
            }
            RStmt::MemsetI(arr, val) => self.memset(*arr, "int64_t", self.iexpr(val), ifaults(val)),
            RStmt::MemsetF64(arr, val) => {
                self.memset(*arr, "double", self.fexpr(val), ffaults(val))
            }
            RStmt::MemsetF32(arr, val) => {
                let v = format!("(float)({})", self.fexpr(val));
                self.memset(*arr, "float", v, ffaults(val));
            }
            RStmt::MemsetB(arr, val) => self.memset(*arr, "bool", self.bexpr(val), bfaults(val)),
            RStmt::Alloc(arr, ty, len) => {
                let l = self.iexpr(len);
                if ifaults(len) {
                    self.line("{");
                    self.depth += 1;
                    self.line(&format!("int64_t _l = {l};"));
                    self.fault_check();
                    self.line(&format!(
                        "if (!ctx->alloc(ctx, {arr}, {}, _l)) goto taco_abort;",
                        ty_code(*ty)
                    ));
                    self.depth -= 1;
                    self.line("}");
                } else {
                    self.line(&format!(
                        "if (!ctx->alloc(ctx, {arr}, {}, {l})) goto taco_abort;",
                        ty_code(*ty)
                    ));
                }
                self.refresh(*arr);
            }
            RStmt::Realloc(arr, len) => {
                let l = self.iexpr(len);
                if ifaults(len) {
                    self.line("{");
                    self.depth += 1;
                    self.line(&format!("int64_t _l = {l};"));
                    self.fault_check();
                    self.line(&format!("if (!ctx->grow(ctx, {arr}, _l)) goto taco_abort;"));
                    self.depth -= 1;
                    self.line("}");
                } else {
                    self.line(&format!("if (!ctx->grow(ctx, {arr}, {l})) goto taco_abort;"));
                }
                self.refresh(*arr);
            }
            RStmt::Sort(arr, lo, hi) => {
                let (l, h) = (self.iexpr(lo), self.iexpr(hi));
                if ifaults(lo) || ifaults(hi) {
                    self.line("{");
                    self.depth += 1;
                    self.line(&format!("int64_t _l = {l};"));
                    self.line(&format!("int64_t _h = {h};"));
                    self.fault_check();
                    self.line(&format!(
                        "if (!taco_sort_range(ctx, {arr}, _l, _h)) goto taco_abort;"
                    ));
                    self.depth -= 1;
                    self.line("}");
                } else {
                    self.line(&format!(
                        "if (!taco_sort_range(ctx, {arr}, {l}, {h})) goto taco_abort;"
                    ));
                }
            }
            RStmt::MapInit(map, kind, cap) => {
                let m = &self.plan.maps[*map];
                let (ks, vs) = (m.keys_slot, m.vals_slot);
                let tag = match kind {
                    WorkspaceKind::Hash => "TACO_WS_HASH",
                    WorkspaceKind::CoordList => "TACO_WS_COORDLIST",
                    WorkspaceKind::Dense => "TACO_WS_DENSE",
                };
                let c = self.iexpr(cap);
                if ifaults(cap) {
                    self.line("{");
                    self.depth += 1;
                    self.line(&format!("int64_t _c = {c};"));
                    self.fault_check();
                    self.line(&format!(
                        "if (!taco_map_init(ctx, {map}, {ks}, {vs}, {tag}, _c)) goto taco_abort;"
                    ));
                    self.depth -= 1;
                    self.line("}");
                } else {
                    self.line(&format!(
                        "if (!taco_map_init(ctx, {map}, {ks}, {vs}, {tag}, {c})) goto taco_abort;"
                    ));
                }
            }
            RStmt::MapScatter(map, key, val, add) => {
                let m = &self.plan.maps[*map];
                let (ks, vs) = (m.keys_slot, m.vals_slot);
                let add = i32::from(*add);
                let k = self.iexpr(key);
                let v = self.fexpr(val);
                if ifaults(key) || ffaults(val) {
                    self.line("{");
                    self.depth += 1;
                    self.line(&format!("int64_t _k = {k};"));
                    self.line(&format!("double _w = {v};"));
                    self.fault_check();
                    self.line(&format!(
                        "if (!taco_map_scatter(ctx, {map}, {ks}, {vs}, _k, _w, {add})) goto taco_abort;"
                    ));
                    self.depth -= 1;
                    self.line("}");
                } else {
                    self.line(&format!(
                        "if (!taco_map_scatter(ctx, {map}, {ks}, {vs}, {k}, {v}, {add})) goto taco_abort;"
                    ));
                }
            }
            RStmt::MapDrainSorted(map, key_slot, val_slot, body) => {
                let m = &self.plan.maps[*map];
                let (ks, vs) = (m.keys_slot, m.vals_slot);
                self.line("{");
                self.depth += 1;
                self.line(&format!("int64_t _n = ctx->maps[{map}].len;"));
                self.line(&format!("ctx->maps[{map}].len = 0;"));
                self.line(&format!("const int64_t* _ks = (const int64_t*)ctx->arr[{ks}];"));
                self.line(&format!("const double* _vs = (const double*)ctx->arr[{vs}];"));
                self.line("for (int64_t _di = 0; _di < _n; _di++) {");
                self.depth += 1;
                self.line("TACO_TICK(ctx);");
                self.line(&format!("i{key_slot} = _ks[_di];"));
                self.line(&format!("f{val_slot} = _vs[_di];"));
                self.block(body);
                self.depth -= 1;
                self.line("}");
                self.depth -= 1;
                self.line("}");
            }
        }
    }

    fn memset(&mut self, arr: usize, ty: &str, val: String, faults: bool) {
        self.line("{");
        self.depth += 1;
        self.line(&format!("{ty} _v = {val};"));
        if faults {
            self.fault_check();
        }
        self.line(&format!("for (int64_t _mi = 0; _mi < a{arr}_n; _mi++) a{arr}[_mi] = _v;"));
        self.depth -= 1;
        self.line("}");
    }

    fn block_nested(&mut self, body: &[RStmt]) {
        self.depth += 1;
        self.block(body);
        self.depth -= 1;
    }
}

fn cmp_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        other => unreachable!("non-comparison op {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Expr, Kernel, Param, Stmt};

    fn scale_kernel() -> Executable {
        let kernel = Kernel::new("scale")
            .scalar_param("n")
            .array_param(Param::input("x", ArrayTy::F64))
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![Stmt::for_(
                "i",
                Expr::int(0),
                Expr::var("n"),
                vec![Stmt::store(
                    "out",
                    Expr::var("i"),
                    Expr::float(2.0) * Expr::load("x", Expr::var("i")),
                )],
            )]);
        Executable::compile(&kernel).unwrap()
    }

    #[test]
    fn emits_entry_and_abi_symbols() {
        let src = emit_native(&scale_kernel()).unwrap();
        assert!(src.c_source.contains("int32_t taco_kernel_entry(taco_ctx* ctx"));
        assert!(src.c_source.contains("int32_t taco_abi_version(void)"));
        assert!(src.c_source.contains("TACO_TICK(ctx);"));
        // Input arrays are const, outputs are not.
        assert!(src.c_source.contains("const double* restrict a0"));
        assert!(src.c_source.contains("double* restrict a1"));
        assert_eq!(src.plan.scalar_params.len(), 1);
        assert_eq!(src.plan.arrays.len(), 2);
        assert!(src.plan.maps.is_empty());
    }

    #[test]
    fn kernel_local_arrays_take_their_alloc_type() {
        // A double workspace materialized by Alloc (no parameter carries
        // its type): the slot must be declared double*, not the Int
        // default — an int64_t* declaration would type-pun every access.
        let kernel = Kernel::new("ws")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::Alloc { arr: "w".into(), ty: ArrayTy::F64, len: Expr::var("n") },
                Stmt::Alloc { arr: "seen".into(), ty: ArrayTy::Bool, len: Expr::var("n") },
                Stmt::store("w", Expr::int(0), Expr::float(1.5)),
                Stmt::store("out", Expr::int(0), Expr::load("w", Expr::int(0))),
            ]);
        let exe = Executable::compile(&kernel).unwrap();
        let src = emit_native(&exe).unwrap();
        let w = src.plan.arrays.iter().find(|a| a.name == "w").unwrap();
        assert_eq!(w.ty, ArrayTy::F64);
        let seen = src.plan.arrays.iter().find(|a| a.name == "seen").unwrap();
        assert_eq!(seen.ty, ArrayTy::Bool);
        assert!(src.c_source.contains("double* restrict a1"), "{}", src.c_source);
        assert!(src.c_source.contains("bool* restrict a2"), "{}", src.c_source);
    }

    #[test]
    fn rejects_parallel_for() {
        let kernel = Kernel::new("par")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![Stmt::ParallelFor {
                var: "i".into(),
                lo: Expr::int(0),
                hi: Expr::var("n"),
                threads: 0,
                private: vec![],
                append: None,
                body: vec![Stmt::store("out", Expr::var("i"), Expr::float(1.0))],
            }]);
        let exe = Executable::compile(&kernel).unwrap();
        let err = emit_native(&exe).unwrap_err();
        assert!(matches!(err, NativeEmitError::Unsupported(_)));
    }

    #[test]
    fn map_workspace_gets_hidden_backing_slots() {
        let kernel = Kernel::new("ws")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::MapInit {
                    map: "w".into(),
                    kind: WorkspaceKind::Hash,
                    capacity: Expr::int(0),
                },
                Stmt::MapScatter {
                    map: "w".into(),
                    key: Expr::int(3),
                    val: Expr::float(1.5),
                    add: true,
                },
                Stmt::MapDrainSorted {
                    map: "w".into(),
                    key: "k".into(),
                    val: "v".into(),
                    body: vec![Stmt::store("out", Expr::var("k"), Expr::var("v"))],
                },
            ]);
        let exe = Executable::compile(&kernel).unwrap();
        let src = emit_native(&exe).unwrap();
        assert_eq!(src.plan.maps.len(), 1);
        let m = &src.plan.maps[0];
        assert_eq!(m.keys_slot, 1);
        assert_eq!(m.vals_slot, 2);
        assert!(src.plan.arrays[m.keys_slot].map_backing);
        assert!(src.c_source.contains("taco_map_scatter(ctx, 0, 1, 2, 3LL, 1.5, 1)"));
    }
}

#[cfg(test)]
mod cc_tests {
    use super::*;
    use crate::{Expr, Kernel, Param, Stmt};

    /// Compiles an emitted TU with the system C compiler when one is
    /// present; prints a visible skip marker otherwise.
    fn syntax_check(name: &str, src: &NativeSource) {
        let cc = std::env::var("CC").unwrap_or_else(|_| "cc".to_string());
        let dir = std::env::temp_dir().join(format!("taco-cgen-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let c_path = dir.join(format!("{name}.c"));
        std::fs::write(&c_path, &src.c_source).unwrap();
        let out = std::process::Command::new(&cc)
            .args(["-std=c11", "-fsyntax-only", "-Wall", "-Werror"])
            .arg(&c_path)
            .output();
        match out {
            Ok(o) if o.status.success() => {}
            Ok(o) => panic!(
                "emitted C for `{name}` failed to parse:\n{}\n--- source ---\n{}",
                String::from_utf8_lossy(&o.stderr),
                src.c_source
            ),
            Err(_) => eprintln!("SKIPPED: no C compiler (`{cc}`) on PATH; syntax check not run"),
        }
    }

    #[test]
    fn emitted_c_parses_with_system_compiler() {
        // A kernel exercising every statement family the emitter handles:
        // loops, while, if, stores, memset, alloc/realloc/sort, and a map
        // workspace with scatter + drain.
        let kernel = Kernel::new("allstmt")
            .scalar_param("n")
            .array_param(Param::input("x", ArrayTy::F64))
            .array_param(Param::input("xi", ArrayTy::Int))
            .array_param(Param::input("g", ArrayTy::Bool))
            .array_param(Param::input("h", ArrayTy::F32))
            .array_param(Param::output("out", ArrayTy::F64))
            .scalar_output("nnz")
            .body(vec![
                Stmt::DeclInt("nnz".into(), Expr::int(0)),
                Stmt::Alloc {
                    arr: "w".into(),
                    ty: ArrayTy::F64,
                    len: Expr::var("n"),
                },
                Stmt::Memset { arr: "w".into(), val: Expr::float(0.0) },
                Stmt::MapInit {
                    map: "m".into(),
                    kind: WorkspaceKind::CoordList,
                    capacity: Expr::int(4),
                },
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![
                        Stmt::if_(
                            Expr::load("g", Expr::var("i")),
                            vec![
                                Stmt::store(
                                    "w",
                                    Expr::var("i"),
                                    Expr::load("x", Expr::var("i"))
                                        + Expr::load("h", Expr::var("i")),
                                ),
                                Stmt::MapScatter {
                                    map: "m".into(),
                                    key: Expr::var("i")
                                        % (Expr::var("n") + Expr::int(1)),
                                    val: Expr::load("x", Expr::var("i")),
                                    add: true,
                                },
                            ],
                        ),
                        Stmt::store_add(
                            "out",
                            Expr::var("i"),
                            Expr::load("w", Expr::var("i")),
                        ),
                    ],
                ),
                Stmt::Realloc { arr: "w".into(), len: Expr::var("n") * Expr::int(2) },
                Stmt::Alloc { arr: "order".into(), ty: ArrayTy::Int, len: Expr::var("n") },
                Stmt::Sort { arr: "order".into(), lo: Expr::int(0), hi: Expr::var("n") },
                Stmt::MapDrainSorted {
                    map: "m".into(),
                    key: "k".into(),
                    val: "v".into(),
                    body: vec![
                        Stmt::store_add("out", Expr::var("k"), Expr::var("v")),
                        Stmt::Assign("nnz".into(), Expr::var("nnz") + Expr::int(1)),
                    ],
                },
                Stmt::while_(
                    Expr::var("nnz").gt(Expr::int(100)),
                    vec![Stmt::Assign(
                        "nnz".into(),
                        Expr::var("nnz") - Expr::int(1),
                    )],
                ),
            ]);
        let exe = Executable::compile(&kernel).unwrap();
        let src = emit_native(&exe).unwrap();
        syntax_check("allstmt", &src);
    }
}
