//! C source pretty-printing of kernels, in the style of the paper's listings
//! (Figures 1c, 1d, 4, 5, 7, 8, 9, 10).

use crate::{ArrayTy, BinOp, Expr, Kernel, Stmt, UnOp};
use std::fmt::Write;

impl Kernel {
    /// Renders the kernel as C source.
    ///
    /// The output is the paper-style display dialect: `int32_t` indices,
    /// `#pragma omp` parallel loops, and `taco_ws_map` workspaces. Prepended
    /// with the [`crate::TACO_KERNEL_H`] prelude it compiles as C11 — the
    /// round-trip tests syntax-check every enumerated candidate with the
    /// system C compiler. Native execution does not reuse this text: the
    /// dlopen backend emits its own translation unit from the resolved IR
    /// ([`crate::emit_native`]), and the portable path interprets
    /// [`crate::Executable`] directly.
    ///
    /// # Example
    ///
    /// ```
    /// use taco_llir::{ArrayTy, Expr, Kernel, Param, Stmt};
    ///
    /// let k = Kernel::new("zero")
    ///     .scalar_param("n")
    ///     .array_param(Param::output("x", ArrayTy::F64))
    ///     .body(vec![Stmt::Memset { arr: "x".into(), val: Expr::float(0.0) }]);
    /// assert!(k.to_c().contains("memset(x, 0,"));
    /// ```
    pub fn to_c(&self) -> String {
        let mut out = String::new();
        let mut params: Vec<String> =
            self.scalar_params.iter().map(|s| format!("int {s}")).collect();
        // Each array parameter travels with its element count so `Len`
        // expressions and whole-array fills are compilable C.
        params.extend(self.array_params.iter().map(|p| {
            format!("{}* restrict {}, int32_t {}_size", c_ty(p.ty), p.name, p.name)
        }));
        let _ = writeln!(out, "void {}({}) {{", self.name, params.join(", "));
        for s in &self.body {
            print_stmt(&mut out, s, 1);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Renders a single statement as one line of C (nested bodies elided as
/// `{ ... }`), for diagnostics that point at a statement.
pub fn stmt_to_c(s: &Stmt) -> String {
    let mut out = String::new();
    print_stmt(&mut out, s, 0);
    let first = out.lines().next().unwrap_or("").trim().to_string();
    match s {
        Stmt::For { .. }
        | Stmt::ParallelFor { .. }
        | Stmt::While { .. }
        | Stmt::If { .. }
        | Stmt::MapDrainSorted { .. } => {
            format!("{} ... }}", first)
        }
        _ => first,
    }
}

fn c_ty(ty: ArrayTy) -> &'static str {
    match ty {
        ArrayTy::Int => "int32_t",
        ArrayTy::F64 => "double",
        ArrayTy::F32 => "float",
        ArrayTy::Bool => "bool",
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_block(out: &mut String, body: &[Stmt], level: usize) {
    for s in body {
        print_stmt(out, s, level);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::DeclInt(name, init) => {
            let _ = writeln!(out, "int32_t {name} = {};", print_expr(init));
        }
        Stmt::DeclFloat(name, init) => {
            let _ = writeln!(out, "double {name} = {};", print_expr(init));
        }
        Stmt::DeclBool(name, init) => {
            let _ = writeln!(out, "bool {name} = {};", print_expr(init));
        }
        Stmt::Assign(name, val) => {
            // Render `x = x + 1` as the idiomatic `x++`.
            if let Expr::Bin(BinOp::Add, a, b) = val {
                if matches!(&**a, Expr::Var(v) if v == name)
                    && matches!(&**b, Expr::Int(1))
                {
                    let _ = writeln!(out, "{name}++;");
                    return;
                }
            }
            let _ = writeln!(out, "{name} = {};", print_expr(val));
        }
        Stmt::Store { arr, idx, val } => {
            let _ = writeln!(out, "{arr}[{}] = {};", print_expr(idx), print_expr(val));
        }
        Stmt::StoreAdd { arr, idx, val } => {
            let _ = writeln!(out, "{arr}[{}] += {};", print_expr(idx), print_expr(val));
        }
        Stmt::For { var, lo, hi, body } => {
            let _ = writeln!(
                out,
                "for (int32_t {var} = {}; {var} < {}; {var}++) {{",
                print_expr(lo),
                print_expr(hi)
            );
            print_block(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::ParallelFor { var, lo, hi, threads, private, body, .. } => {
            let mut pragma = String::from("#pragma omp parallel for schedule(static)");
            if *threads > 0 {
                let _ = write!(pragma, " num_threads({threads})");
            }
            if !private.is_empty() {
                let _ = write!(pragma, " private({})", private.join(", "));
            }
            let _ = writeln!(out, "{pragma}");
            indent(out, level);
            let _ = writeln!(
                out,
                "for (int32_t {var} = {}; {var} < {}; {var}++) {{",
                print_expr(lo),
                print_expr(hi)
            );
            print_block(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::If { cond, then, els } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(out, then, level + 1);
            indent(out, level);
            if els.is_empty() {
                let _ = writeln!(out, "}}");
            } else {
                let _ = writeln!(out, "}} else {{");
                print_block(out, els, level + 1);
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::Memset { arr, val } => {
            if is_zero(val) {
                let _ = writeln!(out, "memset({arr}, 0, {arr}_size * sizeof(*{arr}));");
            } else {
                let _ = writeln!(
                    out,
                    "for (int32_t p = 0; p < {arr}_size; p++) {arr}[p] = {};",
                    print_expr(val)
                );
            }
        }
        Stmt::Alloc { arr, ty, len } => {
            let t = c_ty(*ty);
            let l = print_expr(len);
            let _ = writeln!(out, "{t}* restrict {arr} = ({t}*)calloc({l}, sizeof({t}));");
            indent(out, level);
            let _ = writeln!(out, "int32_t {arr}_size = {l};");
        }
        Stmt::Realloc { arr, len } => {
            let l = print_expr(len);
            let _ = writeln!(out, "{arr} = realloc({arr}, ({l}) * sizeof(*{arr}));");
            indent(out, level);
            let _ = writeln!(out, "{arr}_size = {l};");
        }
        Stmt::Sort { arr, lo, hi } => {
            let _ = writeln!(out, "taco_sort_i32({arr}, {}, {});", print_expr(lo), print_expr(hi));
        }
        Stmt::MapInit { map, kind, capacity } => {
            let tag = match kind {
                crate::WorkspaceKind::Hash => "TACO_WS_HASH",
                crate::WorkspaceKind::CoordList => "TACO_WS_COORDLIST",
                crate::WorkspaceKind::Dense => "TACO_WS_DENSE",
            };
            let _ = writeln!(
                out,
                "taco_ws_map* restrict {map} = taco_ws_map_init({tag}, {});",
                print_expr(capacity)
            );
        }
        Stmt::MapScatter { map, key, val, add } => {
            let f = if *add { "taco_ws_map_accum" } else { "taco_ws_map_put" };
            let _ = writeln!(out, "{f}({map}, {}, {});", print_expr(key), print_expr(val));
        }
        Stmt::MapDrainSorted { map, key, val, body } => {
            let _ = writeln!(
                out,
                "for (taco_ws_iter {map}_it = taco_ws_drain_sorted({map}); \
                 taco_ws_iter_next(&{map}_it);) {{"
            );
            indent(out, level + 1);
            let _ = writeln!(out, "int32_t {key} = (int32_t){map}_it.key;");
            indent(out, level + 1);
            let _ = writeln!(out, "double {val} = {map}_it.val;");
            print_block(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::Comment(text) => {
            let _ = writeln!(out, "// {text}");
        }
    }
}

fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::Int(0)) || matches!(e, Expr::Float(v) if *v == 0.0)
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Min | BinOp::Max => unreachable!("min/max printed as calls"),
    }
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Eq | BinOp::Ne => 2,
        BinOp::And => 1,
        BinOp::Or => 0,
        BinOp::Min | BinOp::Max => 6,
    }
}

fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn print_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Bool(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Load(arr, idx) => format!("{arr}[{}]", print_expr(idx)),
        Expr::Len(arr) => format!("{arr}_size"),
        Expr::Un(UnOp::Neg, inner) => format!("-{}", print_prec(inner, 6)),
        Expr::Un(UnOp::Not, inner) => format!("!{}", print_prec(inner, 6)),
        Expr::Bin(BinOp::Min, a, b) => {
            format!("min({}, {})", print_expr(a), print_expr(b))
        }
        Expr::Bin(BinOp::Max, a, b) => {
            format!("max({}, {})", print_expr(a), print_expr(b))
        }
        Expr::Bin(op, a, b) => {
            let p = prec(*op);
            let s = format!("{} {} {}", print_prec(a, p), op_str(*op), print_prec(b, p + 1));
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Param;

    #[test]
    fn prints_gustavson_style_loop() {
        let k = Kernel::new("spmm")
            .scalar_param("m")
            .array_param(Param::input("B_pos", ArrayTy::Int))
            .array_param(Param::input("B_crd", ArrayTy::Int))
            .array_param(Param::input("B", ArrayTy::F64))
            .array_param(Param::output("A", ArrayTy::F64))
            .body(vec![Stmt::for_(
                "i",
                Expr::int(0),
                Expr::var("m"),
                vec![Stmt::for_(
                    "pB",
                    Expr::load("B_pos", Expr::var("i")),
                    Expr::load("B_pos", Expr::var("i") + Expr::int(1)),
                    vec![
                        Stmt::DeclInt("k".into(), Expr::load("B_crd", Expr::var("pB"))),
                        Stmt::store_add("A", Expr::var("k"), Expr::load("B", Expr::var("pB"))),
                    ],
                )],
            )]);
        let c = k.to_c();
        assert!(c.contains("void spmm(int m, int32_t* restrict B_pos"));
        assert!(c.contains("for (int32_t pB = B_pos[i]; pB < B_pos[i + 1]; pB++) {"));
        assert!(c.contains("int32_t k = B_crd[pB];"));
        assert!(c.contains("A[k] += B[pB];"));
    }

    #[test]
    fn min_and_comparisons_render() {
        let e = Expr::var("jB").min(Expr::var("jC"));
        assert_eq!(print_expr(&e), "min(jB, jC)");
        let c = Expr::var("a").eq(Expr::var("j")).and(Expr::var("b").eq(Expr::var("j")));
        assert_eq!(print_expr(&c), "a == j && b == j");
    }

    #[test]
    fn precedence_parenthesizes() {
        let e = (Expr::var("a") + Expr::var("b")) * Expr::var("c");
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e2 = Expr::var("a") + Expr::var("b") * Expr::var("c");
        assert_eq!(print_expr(&e2), "a + b * c");
    }

    #[test]
    fn increment_renders_as_plus_plus() {
        let mut out = String::new();
        print_stmt(&mut out, &Stmt::incr("pA2"), 0);
        assert_eq!(out, "pA2++;\n");
    }

    #[test]
    fn memset_and_sort_render() {
        let mut out = String::new();
        print_stmt(&mut out, &Stmt::Memset { arr: "w".into(), val: Expr::float(0.0) }, 0);
        assert!(out.contains("memset(w, 0, w_size * sizeof(*w));"));
        let mut out2 = String::new();
        print_stmt(
            &mut out2,
            &Stmt::Sort { arr: "rowlist".into(), lo: Expr::int(0), hi: Expr::var("n") },
            0,
        );
        assert!(out2.contains("taco_sort_i32(rowlist, 0, n);"));
    }
}
