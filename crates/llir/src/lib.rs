//! Low-level imperative IR for sparse tensor kernels.
//!
//! This crate is the bottom of the compiler stack in Figure 6 of
//! *Tensor Algebra Compilation with Workspaces* (CGO 2019): concrete index
//! notation is lowered (by `taco-lower`) into this C-like imperative IR,
//! which can then be
//!
//! * pretty-printed as C source ([`Kernel::to_c`]) — the listings in
//!   Figures 1, 4, 5, 7, 8, 9 and 10 of the paper are programs of this IR, and
//! * compiled into an executable form ([`Executable::compile`]) in which
//!   every variable and array reference is resolved to a dense slot, then run
//!   against bound buffers ([`Executable::run`]).
//!
//! # Example
//!
//! ```
//! use taco_llir::{ArrayTy, Binding, Executable, Expr, Kernel, Param, Stmt};
//!
//! // out[i] = 2 * x[i]  for i in 0..n
//! let kernel = Kernel::new("scale")
//!     .scalar_param("n")
//!     .array_param(Param::input("x", ArrayTy::F64))
//!     .array_param(Param::output("out", ArrayTy::F64))
//!     .body(vec![Stmt::for_(
//!         "i",
//!         Expr::int(0),
//!         Expr::var("n"),
//!         vec![Stmt::store("out", Expr::var("i"), Expr::float(2.0) * Expr::load("x", Expr::var("i")))],
//!     )]);
//!
//! let exe = Executable::compile(&kernel)?;
//! let mut b = Binding::new();
//! b.set_scalar("n", 3);
//! b.set_f64("x", vec![1.0, 2.0, 3.0]);
//! b.set_f64("out", vec![0.0; 3]);
//! exe.run(&mut b)?;
//! assert_eq!(b.f64_array("out").unwrap(), &[2.0, 4.0, 6.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod alloc;
mod budget;
mod cgen;
mod error;
mod exec;
mod ir;
mod printer;
mod simplify;
mod supervise;

pub use alloc::{elem_bytes, AllocSink, BudgetMeter};
pub use budget::{BudgetEnvError, BudgetResource, ResourceBudget};
pub use cgen::{
    emit_native, AbiArray, AbiMap, AbiPlan, NativeEmitError, NativeSource, ABI_VERSION,
    ABI_VERSION_SYMBOL, ENTRY_SYMBOL, TACO_KERNEL_H,
};
pub use error::{CompileError, RunError};
pub use exec::{ArrayVal, Binding, Executable, SUPERVISION_STRIDE};
pub use ir::{AppendMerge, ArrayTy, BinOp, Expr, Kernel, Param, ParamKind, Stmt, UnOp, WorkspaceKind};
pub use printer::stmt_to_c;
pub use supervise::{
    Aborted, AbortReason, CancelToken, ExecReport, ExecSession, HeartbeatSample, Progress,
    Supervisor,
};
