/* taco_kernel.h — runtime prelude for kernels emitted by taco-llir.
 *
 * Two dialects of C share this header:
 *
 *  1. The *display* dialect produced by Kernel::to_c(): paper-style
 *     listings (int32_t indices, #pragma omp, taco_ws_map workspaces).
 *     The prelude makes those listings parse and compile as C99.
 *
 *  2. The *native* dialect produced by the native-backend emitter: a
 *     single `taco_kernel_entry` function against the table-based
 *     `taco_ctx` ABI below, compiled to a shared object and dlopen'd by
 *     taco-native. All memory is host-owned; the kernel asks the host to
 *     (re)allocate through callbacks so budget accounting stays on the
 *     host side of the boundary.
 */
#ifndef TACO_KERNEL_H
#define TACO_KERNEL_H

#include <stdint.h>
#include <stdbool.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* ------------------------------------------------------------------ */
/* Display dialect: paper-style listings                              */
/* ------------------------------------------------------------------ */

#ifndef min
#define min(a, b) (((a) < (b)) ? (a) : (b))
#endif
#ifndef max
#define max(a, b) (((a) > (b)) ? (a) : (b))
#endif

static inline int taco_cmp_i32_(const void* a, const void* b) {
    int32_t x = *(const int32_t*)a, y = *(const int32_t*)b;
    return (x > y) - (x < y);
}

/* sort of an index range, as `Stmt::Sort` prints it */
static inline void taco_sort_i32(int32_t* a, int32_t lo, int32_t hi) {
    qsort(a + lo, (size_t)(hi - lo), sizeof(int32_t), taco_cmp_i32_);
}

#define TACO_WS_DENSE 0
#define TACO_WS_HASH 1
#define TACO_WS_COORDLIST 2

/* A sparse map workspace for the display dialect: a sorted coordinate
 * list (both the hash and coord-list kinds drain in ascending key order,
 * so one ordered backing reproduces either). */
typedef struct {
    int32_t kind;
    int64_t len;
    int64_t cap;
    int64_t* keys;
    double* vals;
} taco_ws_map;

static inline taco_ws_map* taco_ws_map_init(int32_t kind, int64_t capacity) {
    taco_ws_map* m = (taco_ws_map*)malloc(sizeof(taco_ws_map));
    if (!m) return NULL;
    if (capacity < 8) capacity = 8;
    m->kind = kind;
    m->len = 0;
    m->cap = capacity;
    m->keys = (int64_t*)malloc((size_t)capacity * sizeof(int64_t));
    m->vals = (double*)malloc((size_t)capacity * sizeof(double));
    return m;
}

static inline int64_t taco_ws_find_(const taco_ws_map* m, int64_t key) {
    int64_t lo = 0, hi = m->len;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (m->keys[mid] < key) lo = mid + 1; else hi = mid;
    }
    return lo;
}

static inline void taco_ws_insert_(taco_ws_map* m, int64_t at, int64_t key, double val) {
    if (m->len == m->cap) {
        m->cap *= 2;
        m->keys = (int64_t*)realloc(m->keys, (size_t)m->cap * sizeof(int64_t));
        m->vals = (double*)realloc(m->vals, (size_t)m->cap * sizeof(double));
    }
    memmove(m->keys + at + 1, m->keys + at, (size_t)(m->len - at) * sizeof(int64_t));
    memmove(m->vals + at + 1, m->vals + at, (size_t)(m->len - at) * sizeof(double));
    m->keys[at] = key;
    m->vals[at] = val;
    m->len += 1;
}

static inline void taco_ws_map_put(taco_ws_map* m, int64_t key, double val) {
    int64_t at = taco_ws_find_(m, key);
    if (at < m->len && m->keys[at] == key) m->vals[at] = val;
    else taco_ws_insert_(m, at, key, val);
}

static inline void taco_ws_map_accum(taco_ws_map* m, int64_t key, double val) {
    int64_t at = taco_ws_find_(m, key);
    if (at < m->len && m->keys[at] == key) m->vals[at] += val;
    else taco_ws_insert_(m, at, key, val);
}

/* Ascending-key drain cursor; the map is emptied as iteration starts. */
typedef struct {
    taco_ws_map* m;
    int64_t i;
    int64_t n;
    int64_t key;
    double val;
} taco_ws_iter;

static inline taco_ws_iter taco_ws_drain_sorted(taco_ws_map* m) {
    taco_ws_iter it;
    it.m = m;
    it.i = 0;
    it.n = m->len;
    it.key = 0;
    it.val = 0.0;
    m->len = 0;
    return it;
}

static inline bool taco_ws_iter_next(taco_ws_iter* it) {
    if (it->i >= it->n) return false;
    it->key = it->m->keys[it->i];
    it->val = it->m->vals[it->i];
    it->i += 1;
    return true;
}

/* ------------------------------------------------------------------ */
/* Native dialect: the taco_ctx table ABI                             */
/* ------------------------------------------------------------------ */

/* Bump on any change to taco_ctx, taco_map_state, the status codes, or
 * the entry signature. The host refuses shared objects whose exported
 * taco_abi_version() disagrees. */
#define TACO_ABI_VERSION 1

#define TACO_OK 0
#define TACO_ERR_HOST 1 /* a host callback recorded the error */
#define TACO_ERR_DIV0 2
#define TACO_ERR_OOB 3
#define TACO_ERR_MAP_NEG_LEN 4

/* Element-type codes for the alloc callback. */
#define TACO_TY_INT 0
#define TACO_TY_F64 1
#define TACO_TY_F32 2
#define TACO_TY_BOOL 3

typedef struct taco_ctx taco_ctx;

/* Per-map bookkeeping. Entry storage lives in two host-owned array
 * slots (keys: int64, vals: double), kept sorted by key so both the
 * hash and coord-list workspace kinds drain identically to the
 * interpreter. `charged` is the entry capacity already charged against
 * the byte budget — the budget model, not the physical capacity. */
typedef struct {
    int64_t len;
    int64_t charged;
    int32_t kind;
    int32_t pad_;
} taco_map_state;

struct taco_ctx {
    void* host; /* opaque host state for callbacks */
    void** arr; /* array buffers, indexed by array slot */
    int64_t* arr_size; /* element counts, indexed by array slot */
    const int64_t* scalars; /* scalar params, declaration order */
    int64_t* scalar_out; /* scalar outputs, declaration order */
    taco_map_state* maps; /* map workspaces, indexed by map slot */
    int64_t ticks_left; /* loop iterations before the next poll */
    int32_t status; /* sticky fault code, TACO_OK while healthy */
    int32_t pad_;
    /* Host callbacks. Allocation/charge callbacks return 0 on failure
     * after recording a typed error host-side; the kernel must then
     * jump to its abort label. */
    int32_t (*alloc)(taco_ctx* ctx, int64_t slot, int32_t ty, int64_t len);
    int32_t (*grow)(taco_ctx* ctx, int64_t slot, int64_t len);
    int32_t (*poll)(taco_ctx* ctx);
    int32_t (*map_charge)(taco_ctx* ctx, int64_t map_slot, int64_t footprint_bytes,
                          int64_t delta_bytes);
    void (*fault)(taco_ctx* ctx, int32_t code, int64_t slot, int64_t a, int64_t b);
};

/* One loop back-edge: burn a tick, poll the host every stride. The host
 * charges the iteration fuse in batches and checks cancel + deadline,
 * so supervision latency matches the interpreter's stride. */
#define TACO_TICK(ctx) \
    do { \
        if (--(ctx)->ticks_left < 0) { \
            if ((ctx)->poll(ctx)) goto taco_abort; \
        } \
    } while (0)

static inline int64_t taco_min_i64(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t taco_max_i64(int64_t a, int64_t b) { return a > b ? a : b; }

/* Wrapping i64 division matching the interpreter: divide-by-zero is a
 * sticky fault (the emitter aborts at the next statement boundary), and
 * INT64_MIN / -1 wraps instead of trapping. */
static inline int64_t taco_div_i64(taco_ctx* ctx, int64_t x, int64_t y) {
    if (y == 0) {
        ctx->fault(ctx, TACO_ERR_DIV0, -1, x, 0);
        return 0;
    }
    if (y == -1) return (int64_t)(0ULL - (uint64_t)x);
    return x / y;
}

static inline int64_t taco_rem_i64(taco_ctx* ctx, int64_t x, int64_t y) {
    if (y == 0) {
        ctx->fault(ctx, TACO_ERR_DIV0, -1, x, 0);
        return 0;
    }
    if (y == -1) return 0;
    return x % y;
}

static inline int taco_cmp_i64_(const void* a, const void* b) {
    int64_t x = *(const int64_t*)a, y = *(const int64_t*)b;
    return (x > y) - (x < y);
}

/* Bounds-checked range sort of an int64 array slot, mirroring the
 * interpreter's Sort semantics (error payload: idx = hi, len). */
static inline int32_t taco_sort_range(taco_ctx* ctx, int64_t slot, int64_t lo, int64_t hi) {
    int64_t len = ctx->arr_size[slot];
    if (lo < 0 || hi < lo || hi > len) {
        ctx->fault(ctx, TACO_ERR_OOB, slot, hi, len);
        return 0;
    }
    qsort((int64_t*)ctx->arr[slot] + lo, (size_t)(hi - lo), sizeof(int64_t), taco_cmp_i64_);
    return 1;
}

/* Map workspaces: sorted-pair backing on the hidden key/val slots. The
 * *budget* model follows the declared kind (hash entries charge 24
 * bytes, coord-list 16), exactly like the interpreter. */
static inline int64_t taco_map_entry_bytes(int32_t kind) {
    return kind == TACO_WS_HASH ? 24 : 16;
}

static inline int32_t taco_map_init(taco_ctx* ctx, int64_t m, int64_t ks, int64_t vs,
                                    int32_t kind, int64_t cap) {
    int64_t per;
    if (cap < 0) {
        ctx->fault(ctx, TACO_ERR_MAP_NEG_LEN, m, cap, 0);
        return 0;
    }
    per = taco_map_entry_bytes(kind);
    if (!ctx->map_charge(ctx, m, cap * per, cap * per)) return 0;
    ctx->maps[m].len = 0;
    ctx->maps[m].charged = cap;
    ctx->maps[m].kind = kind;
    if (cap > ctx->arr_size[ks]) {
        if (!ctx->grow(ctx, ks, cap)) return 0;
        if (!ctx->grow(ctx, vs, cap)) return 0;
    }
    return 1;
}

static inline int32_t taco_map_scatter(taco_ctx* ctx, int64_t m, int64_t ks, int64_t vs,
                                       int64_t key, double val, int add) {
    taco_map_state* st = &ctx->maps[m];
    int64_t* keys = (int64_t*)ctx->arr[ks];
    double* vals = (double*)ctx->arr[vs];
    int64_t lo = 0, hi = st->len;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (keys[mid] < key) lo = mid + 1; else hi = mid;
    }
    if (lo < st->len && keys[lo] == key) {
        if (add) vals[lo] += val; else vals[lo] = val;
        return 1;
    }
    /* New key: charge doubled capacity first, exactly like the
     * interpreter's charge_map_growth. */
    if (st->len + 1 > st->charged) {
        int64_t per = taco_map_entry_bytes(st->kind);
        int64_t ncap = st->charged * 2;
        if (ncap < st->len + 1) ncap = st->len + 1;
        if (ncap < 8) ncap = 8;
        if (!ctx->map_charge(ctx, m, ncap * per, (ncap - st->charged) * per)) return 0;
        st->charged = ncap;
    }
    if (st->len + 1 > ctx->arr_size[ks]) {
        int64_t pcap = ctx->arr_size[ks] * 2;
        if (pcap < st->len + 1) pcap = st->len + 1;
        if (pcap < 8) pcap = 8;
        if (!ctx->grow(ctx, ks, pcap)) return 0;
        if (!ctx->grow(ctx, vs, pcap)) return 0;
        keys = (int64_t*)ctx->arr[ks];
        vals = (double*)ctx->arr[vs];
    }
    memmove(keys + lo + 1, keys + lo, (size_t)(st->len - lo) * sizeof(int64_t));
    memmove(vals + lo + 1, vals + lo, (size_t)(st->len - lo) * sizeof(double));
    keys[lo] = key;
    vals[lo] = val;
    st->len += 1;
    return 1;
}

#endif /* TACO_KERNEL_H */
