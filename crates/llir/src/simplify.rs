//! Peephole expression simplification: constant folding and algebraic
//! identities (`0 + x`, `0 * x`, `x * 1`, ...). Keeps generated kernels
//! readable (the paper's listings write `B1_pos[0]`, not
//! `B1_pos[0 * m + 0]`) and saves interpreter work in inner loops.

use crate::{BinOp, Expr, Kernel, Stmt, UnOp};

impl Expr {
    /// Returns a simplified copy of the expression.
    pub fn simplified(&self) -> Expr {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Var(_) | Expr::Len(_) => {
                self.clone()
            }
            Expr::Load(arr, idx) => Expr::Load(arr.clone(), Box::new(idx.simplified())),
            Expr::Un(op, a) => {
                let a = a.simplified();
                match (op, &a) {
                    // checked_neg: folding `-i64::MIN` would otherwise abort
                    // debug builds; leave such expressions for the executor,
                    // whose wrapping semantics handle them.
                    (UnOp::Neg, Expr::Int(v)) if v.checked_neg().is_some() => Expr::Int(-v),
                    (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                    (UnOp::Not, Expr::Bool(v)) => Expr::Bool(!v),
                    _ => Expr::Un(*op, Box::new(a)),
                }
            }
            Expr::Bin(op, a, b) => {
                let a = a.simplified();
                let b = b.simplified();
                match (op, &a, &b) {
                    // Integer constant folding. Overflowing folds are left
                    // unsimplified rather than aborting debug builds; the
                    // executor evaluates them with wrapping semantics.
                    (BinOp::Add, Expr::Int(x), Expr::Int(y)) if x.checked_add(*y).is_some() => {
                        Expr::Int(x + y)
                    }
                    (BinOp::Sub, Expr::Int(x), Expr::Int(y)) if x.checked_sub(*y).is_some() => {
                        Expr::Int(x - y)
                    }
                    (BinOp::Mul, Expr::Int(x), Expr::Int(y)) if x.checked_mul(*y).is_some() => {
                        Expr::Int(x * y)
                    }
                    (BinOp::Min, Expr::Int(x), Expr::Int(y)) => Expr::Int(*x.min(y)),
                    (BinOp::Max, Expr::Int(x), Expr::Int(y)) => Expr::Int(*x.max(y)),
                    // Additive and multiplicative identities.
                    (BinOp::Add, Expr::Int(0), _) => b,
                    (BinOp::Add, _, Expr::Int(0)) => a,
                    (BinOp::Sub, _, Expr::Int(0)) => a,
                    (BinOp::Mul, Expr::Int(0), _) | (BinOp::Mul, _, Expr::Int(0)) => Expr::Int(0),
                    (BinOp::Mul, Expr::Int(1), _) => b,
                    (BinOp::Mul, _, Expr::Int(1)) => a,
                    (BinOp::Add, Expr::Float(z), _) if *z == 0.0 => b,
                    (BinOp::Add, _, Expr::Float(z)) if *z == 0.0 => a,
                    (BinOp::Mul, Expr::Float(o), _) if *o == 1.0 => b,
                    (BinOp::Mul, _, Expr::Float(o)) if *o == 1.0 => a,
                    // Logical identities.
                    (BinOp::And, Expr::Bool(true), _) => b,
                    (BinOp::And, _, Expr::Bool(true)) => a,
                    (BinOp::And, Expr::Bool(false), _) | (BinOp::And, _, Expr::Bool(false)) => {
                        Expr::Bool(false)
                    }
                    (BinOp::Or, Expr::Bool(false), _) => b,
                    (BinOp::Or, _, Expr::Bool(false)) => a,
                    _ => Expr::Bin(*op, Box::new(a), Box::new(b)),
                }
            }
        }
    }
}

fn simplify_block(body: &mut [Stmt]) {
    for s in body {
        simplify_stmt(s);
    }
}

fn simplify_stmt(s: &mut Stmt) {
    match s {
        Stmt::DeclInt(_, e) | Stmt::DeclFloat(_, e) | Stmt::DeclBool(_, e) | Stmt::Assign(_, e) => {
            *e = e.simplified();
        }
        Stmt::Store { idx, val, .. } | Stmt::StoreAdd { idx, val, .. } => {
            *idx = idx.simplified();
            *val = val.simplified();
        }
        Stmt::For { lo, hi, body, .. } | Stmt::ParallelFor { lo, hi, body, .. } => {
            *lo = lo.simplified();
            *hi = hi.simplified();
            simplify_block(body);
        }
        Stmt::While { cond, body } => {
            *cond = cond.simplified();
            simplify_block(body);
        }
        Stmt::If { cond, then, els } => {
            *cond = cond.simplified();
            simplify_block(then);
            simplify_block(els);
        }
        Stmt::Memset { val, .. } => *val = val.simplified(),
        Stmt::Alloc { len, .. } | Stmt::Realloc { len, .. } => *len = len.simplified(),
        Stmt::Sort { lo, hi, .. } => {
            *lo = lo.simplified();
            *hi = hi.simplified();
        }
        Stmt::MapInit { capacity, .. } => *capacity = capacity.simplified(),
        Stmt::MapScatter { key, val, .. } => {
            *key = key.simplified();
            *val = val.simplified();
        }
        Stmt::MapDrainSorted { body, .. } => simplify_block(body),
        Stmt::Comment(_) => {}
    }
}

impl Kernel {
    /// Simplifies every expression in the kernel body in place.
    pub fn simplify(&mut self) {
        simplify_block(&mut self.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_zero_offsets() {
        let e = (Expr::int(0) * Expr::var("m") + Expr::var("i")) + Expr::int(1);
        assert_eq!(e.simplified(), Expr::var("i") + Expr::int(1));
    }

    #[test]
    fn folds_constants() {
        let e = Expr::int(0) + Expr::int(1);
        assert_eq!(e.simplified(), Expr::Int(1));
        let e2 = (Expr::int(2) * Expr::int(3)).min(Expr::int(5));
        assert_eq!(e2.simplified(), Expr::Int(5));
    }

    #[test]
    fn overflowing_folds_are_left_alone() {
        let e = Expr::int(i64::MAX) + Expr::int(1);
        assert_eq!(e.simplified(), Expr::int(i64::MAX) + Expr::int(1));
        let m = Expr::int(i64::MAX) * Expr::int(2);
        assert_eq!(m.simplified(), Expr::int(i64::MAX) * Expr::int(2));
        let n = Expr::Un(UnOp::Neg, Box::new(Expr::int(i64::MIN)));
        assert_eq!(n.simplified(), Expr::Un(UnOp::Neg, Box::new(Expr::int(i64::MIN))));
        let s = Expr::int(i64::MIN) - Expr::int(1);
        assert_eq!(s.simplified(), Expr::int(i64::MIN) - Expr::int(1));
    }

    #[test]
    fn simplifies_inside_statements() {
        let mut k = Kernel::new("k").body(vec![Stmt::for_(
            "i",
            Expr::int(0) + Expr::int(0),
            Expr::int(1) * Expr::var("n"),
            vec![Stmt::store("x", Expr::int(0) * Expr::var("d") + Expr::var("i"), Expr::float(0.0))],
        )]);
        k.simplify();
        match &k.body[0] {
            Stmt::For { lo, hi, body, .. } => {
                assert_eq!(*lo, Expr::Int(0));
                assert_eq!(*hi, Expr::var("n"));
                match &body[0] {
                    Stmt::Store { idx, .. } => assert_eq!(*idx, Expr::var("i")),
                    other => panic!("expected store, got {other:?}"),
                }
            }
            other => panic!("expected for, got {other:?}"),
        }
    }
}
