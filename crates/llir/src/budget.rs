//! Resource budgets for kernel execution.
//!
//! The workspace transformation (paper §IV) trades memory for speed: a dense
//! workspace allocates a full dimension regardless of how sparse the data is,
//! and assembly kernels grow result arrays by repeated doubling. When the
//! compiler runs untrusted expressions over untrusted tensors, both are
//! unbounded resource sinks, and corrupted `pos` arrays can additionally drive
//! merge loops effectively forever. A [`ResourceBudget`] bounds all of these
//! at the executor level, turning would-be OOMs and hangs into structured
//! [`RunError::BudgetExceeded`](crate::RunError::BudgetExceeded) errors.

/// A budget environment variable that was set but did not parse.
///
/// Returned by [`ResourceBudget::try_from_env`]; the lenient
/// [`ResourceBudget::from_env`] logs this error to stderr instead of
/// silently defaulting, so a fat-fingered `TACO_BUDGET_BYTES=12kb` leaves a
/// trace rather than an unlimited budget nobody asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetEnvError {
    /// The environment variable that was malformed.
    pub var: &'static str,
    /// Its raw value.
    pub value: String,
    /// Why it did not parse (rendered from the integer parser).
    pub reason: String,
}

impl std::fmt::Display for BudgetEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed {}={:?}: {} (expected a byte count, e.g. `12000`); \
             running with an unlimited budget",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for BudgetEnvError {}

/// Which budgeted resource a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetResource {
    /// A single allocation (workspace or result buffer) was too large.
    WorkspaceBytes,
    /// Cumulative bytes allocated across the whole run.
    TotalBytes,
    /// Total loop iterations executed (the iteration fuse).
    LoopIterations,
    /// Times a single array was grown by `Realloc`.
    ReallocDoublings,
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetResource::WorkspaceBytes => write!(f, "workspace bytes"),
            BudgetResource::TotalBytes => write!(f, "total allocated bytes"),
            BudgetResource::LoopIterations => write!(f, "loop iterations"),
            BudgetResource::ReallocDoublings => write!(f, "realloc doublings"),
        }
    }
}

/// Execution resource limits enforced by [`Executable::run_with_budget`]
/// (crate::Executable::run_with_budget).
///
/// Every limit is optional; `None` means unbounded, and
/// [`ResourceBudget::unlimited`] (also the `Default`) disables everything so
/// existing callers keep their behavior.
///
/// # Example
///
/// ```
/// use taco_llir::ResourceBudget;
///
/// let budget = ResourceBudget::unlimited()
///     .with_max_workspace_bytes(1 << 20)
///     .with_max_loop_iterations(10_000_000);
/// assert_eq!(budget.max_workspace_bytes, Some(1 << 20));
/// assert_eq!(budget.max_total_bytes, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Largest single allocation, in bytes. This is what a dense workspace
    /// must fit into.
    pub max_workspace_bytes: Option<u64>,
    /// Cumulative allocation ceiling for one run, in bytes. `Realloc` growth
    /// counts the delta.
    pub max_total_bytes: Option<u64>,
    /// Loop-iteration fuse: total `For`/`While` body executions before the
    /// run is aborted. Guards against hangs from corrupted `pos` arrays.
    pub max_loop_iterations: Option<u64>,
    /// How many times any single array may be grown by `Realloc`. Lowered
    /// assembly kernels double capacity each time, so `k` doublings bound an
    /// array at `initial * 2^k` elements.
    pub max_realloc_doublings: Option<u32>,
}

impl ResourceBudget {
    /// No limits — execution behaves exactly as without a budget.
    pub fn unlimited() -> Self {
        ResourceBudget::default()
    }

    /// The budget the `TACO_BUDGET_BYTES` environment variable asks for:
    /// its value (bytes) becomes the single-allocation / dense-workspace
    /// ceiling, which is what CI's low-budget matrix tightens to force the
    /// sparse-workspace fallback rungs. Unset means unlimited; a set but
    /// malformed value is a typed [`BudgetEnvError`].
    pub fn try_from_env() -> Result<Self, BudgetEnvError> {
        const VAR: &str = "TACO_BUDGET_BYTES";
        match std::env::var(VAR) {
            Ok(raw) => match raw.trim().parse::<u64>() {
                Ok(bytes) => Ok(ResourceBudget::unlimited().with_max_workspace_bytes(bytes)),
                Err(e) => {
                    Err(BudgetEnvError { var: VAR, value: raw, reason: e.to_string() })
                }
            },
            Err(_) => Ok(ResourceBudget::unlimited()),
        }
    }

    /// Lenient form of [`ResourceBudget::try_from_env`] for binaries that
    /// must start regardless: a malformed `TACO_BUDGET_BYTES` is logged to
    /// stderr (with the offending value and parse reason) and the budget
    /// defaults to unlimited instead of failing silently.
    pub fn from_env() -> Self {
        match ResourceBudget::try_from_env() {
            Ok(budget) => budget,
            Err(e) => {
                eprintln!("warning: {e}");
                ResourceBudget::unlimited()
            }
        }
    }

    /// Sets the single-allocation (dense workspace) ceiling.
    pub fn with_max_workspace_bytes(mut self, bytes: u64) -> Self {
        self.max_workspace_bytes = Some(bytes);
        self
    }

    /// Sets the cumulative allocation ceiling.
    pub fn with_max_total_bytes(mut self, bytes: u64) -> Self {
        self.max_total_bytes = Some(bytes);
        self
    }

    /// Sets the loop-iteration fuse.
    pub fn with_max_loop_iterations(mut self, iterations: u64) -> Self {
        self.max_loop_iterations = Some(iterations);
        self
    }

    /// Sets the per-array realloc-doubling cap.
    pub fn with_max_realloc_doublings(mut self, doublings: u32) -> Self {
        self.max_realloc_doublings = Some(doublings);
        self
    }

    /// Combines two budgets, taking the tighter limit for each resource.
    /// Used when a kernel's compile-time budget and a supervisor's run-time
    /// budget both apply to one run.
    pub fn min_with(&self, other: &ResourceBudget) -> ResourceBudget {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            }
        }
        ResourceBudget {
            max_workspace_bytes: tighter(self.max_workspace_bytes, other.max_workspace_bytes),
            max_total_bytes: tighter(self.max_total_bytes, other.max_total_bytes),
            max_loop_iterations: tighter(self.max_loop_iterations, other.max_loop_iterations),
            max_realloc_doublings: tighter(
                self.max_realloc_doublings,
                other.max_realloc_doublings,
            ),
        }
    }

    /// True if no limit is set on any resource.
    pub fn is_unlimited(&self) -> bool {
        self.max_workspace_bytes.is_none()
            && self.max_total_bytes.is_none()
            && self.max_loop_iterations.is_none()
            && self.max_realloc_doublings.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(ResourceBudget::default().is_unlimited());
        assert!(ResourceBudget::unlimited().is_unlimited());
    }

    #[test]
    fn min_with_takes_tighter_limits() {
        let a = ResourceBudget::unlimited().with_max_workspace_bytes(100).with_max_total_bytes(500);
        let b = ResourceBudget::unlimited().with_max_workspace_bytes(50).with_max_loop_iterations(9);
        let m = a.min_with(&b);
        assert_eq!(m.max_workspace_bytes, Some(50));
        assert_eq!(m.max_total_bytes, Some(500));
        assert_eq!(m.max_loop_iterations, Some(9));
        assert_eq!(m.max_realloc_doublings, None);
        assert_eq!(ResourceBudget::unlimited().min_with(&ResourceBudget::unlimited()), ResourceBudget::unlimited());
    }

    #[test]
    fn env_budget_parses_or_fails_typed() {
        // One test function: set/unset of a process-global env var must not
        // race a parallel test thread.
        std::env::remove_var("TACO_BUDGET_BYTES");
        assert!(ResourceBudget::try_from_env().unwrap().is_unlimited());

        std::env::set_var("TACO_BUDGET_BYTES", " 12000 ");
        assert_eq!(
            ResourceBudget::try_from_env().unwrap().max_workspace_bytes,
            Some(12_000),
            "whitespace-padded value must parse"
        );

        std::env::set_var("TACO_BUDGET_BYTES", "12kb");
        let err = ResourceBudget::try_from_env().unwrap_err();
        assert_eq!(err.var, "TACO_BUDGET_BYTES");
        assert_eq!(err.value, "12kb");
        let msg = err.to_string();
        assert!(msg.contains("TACO_BUDGET_BYTES") && msg.contains("12kb"), "{msg}");
        // The lenient form still starts (unlimited), but only after the
        // typed error existed to be logged.
        assert!(ResourceBudget::from_env().is_unlimited());

        std::env::remove_var("TACO_BUDGET_BYTES");
    }

    #[test]
    fn builders_set_fields() {
        let b = ResourceBudget::unlimited()
            .with_max_workspace_bytes(100)
            .with_max_total_bytes(200)
            .with_max_loop_iterations(300)
            .with_max_realloc_doublings(4);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_workspace_bytes, Some(100));
        assert_eq!(b.max_total_bytes, Some(200));
        assert_eq!(b.max_loop_iterations, Some(300));
        assert_eq!(b.max_realloc_doublings, Some(4));
    }
}
