//! Supervised kernel execution: deadlines, cooperative cancellation,
//! transactional outputs, and progress heartbeats.
//!
//! [`Executable::run`] is fire-and-forget: a pathological input (a dense row
//! that explodes a Gustavson workspace, a corrupted `pos` array that drives a
//! merge loop forever) can run unbounded wall-clock, and a mid-flight error
//! leaves output arrays half-written. A [`Supervisor`] wraps a run with
//!
//! * a **wall-clock deadline** and a cooperative [`CancelToken`], both
//!   checked at loop back-edges alongside the iteration fuse;
//! * a **transactional output guarantee** — writable parameter arrays are
//!   snapshotted before the run and restored on any error, cancel or
//!   deadline, so the caller-visible [`Binding`] is byte-identical to its
//!   pre-run state whenever [`ExecSession::run`] returns [`Aborted`];
//! * a **progress heartbeat** — loop-iteration and allocated-byte counters
//!   published by the interpreter and sampled by an optional watchdog
//!   thread, exposed as an [`ExecReport`].
//!
//! The state machine is `running → committed | aborted`: a run either
//! commits all its outputs (including scalar outputs) or none of them.

use crate::{Binding, BudgetResource, Executable, ResourceBudget, RunError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// A cooperative cancellation flag shared between a running kernel and any
/// number of controller threads.
///
/// Cloning the token shares the flag; calling [`CancelToken::cancel`] from
/// any clone makes the interpreter abort at the next loop back-edge with
/// [`RunError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The raw flag behind this token, for alternate execution backends
    /// (e.g. native-compiled kernels) that poll cancellation outside an
    /// [`ExecSession`]. The borrow is tied to this clone; hold the token
    /// alive for as long as the flag is observed.
    pub fn as_atomic(&self) -> &AtomicBool {
        &self.0
    }

    pub(crate) fn flag(&self) -> &AtomicBool {
        &self.0
    }
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of how far a run has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Progress {
    /// Loop iterations executed so far (the same count the iteration fuse
    /// meters).
    pub iterations: u64,
    /// Bytes allocated by `Alloc`/`Realloc` so far.
    pub allocated_bytes: u64,
    /// Largest single array allocation charged so far (the high-water mark
    /// the static cost analysis must dominate).
    pub peak_single_bytes: u64,
    /// Largest map-workspace footprint (capacity × entry bytes, doubling
    /// included) charged so far.
    pub peak_map_bytes: u64,
    /// Largest worker-thread count any parallel loop of the run used so far
    /// (0 when no parallel loop has executed).
    pub workers: u64,
}

impl Progress {
    /// The largest single resident allocation the run has needed so far —
    /// the maximum of the array and map high-water marks. This is the
    /// observable a [`crate::ResourceBudget::max_workspace_bytes`] limit
    /// polices and the one the static cost bound must be ≥ of.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_single_bytes.max(self.peak_map_bytes)
    }
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} iterations, {} bytes allocated", self.iterations, self.allocated_bytes)?;
        if self.workers > 0 {
            write!(f, ", {} workers", self.workers)?;
        }
        Ok(())
    }
}

/// Shared counters the interpreter publishes at loop back-edges and the
/// watchdog thread samples concurrently.
#[derive(Debug, Default)]
pub(crate) struct SharedProgress {
    pub(crate) iterations: AtomicU64,
    pub(crate) allocated_bytes: AtomicU64,
    pub(crate) peak_single_bytes: AtomicU64,
    pub(crate) peak_map_bytes: AtomicU64,
    pub(crate) workers: AtomicU64,
}

impl SharedProgress {
    fn snapshot(&self) -> Progress {
        Progress {
            iterations: self.iterations.load(Ordering::Relaxed),
            allocated_bytes: self.allocated_bytes.load(Ordering::Relaxed),
            peak_single_bytes: self.peak_single_bytes.load(Ordering::Relaxed),
            peak_map_bytes: self.peak_map_bytes.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
        }
    }

    /// Records the worker count of a parallel loop, keeping the maximum
    /// observed across the run.
    pub(crate) fn note_workers(&self, n: u64) {
        self.workers.fetch_max(n, Ordering::Relaxed);
    }

    /// Publishes the allocation high-water marks, keeping the maxima
    /// observed across the run (workers publish concurrently).
    pub(crate) fn note_peaks(&self, peak_single: u64, peak_map: u64) {
        self.peak_single_bytes.fetch_max(peak_single, Ordering::Relaxed);
        self.peak_map_bytes.fetch_max(peak_map, Ordering::Relaxed);
    }
}

/// One watchdog observation of a running kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatSample {
    /// Time since the run started.
    pub at: Duration,
    /// Progress counters at that instant.
    pub progress: Progress,
}

/// What a committed run reports back: wall-clock time, final progress
/// counters, and any heartbeat samples the watchdog collected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Final progress counters.
    pub progress: Progress,
    /// Watchdog samples, oldest first. Empty unless a heartbeat interval
    /// was configured with [`Supervisor::with_heartbeat`].
    pub samples: Vec<HeartbeatSample>,
}

impl ExecReport {
    /// A one-line human-readable account of the run, e.g. for examples and
    /// bench output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "committed in {:.3} ms ({})",
            self.elapsed.as_secs_f64() * 1e3,
            self.progress
        );
        if !self.samples.is_empty() {
            s.push_str(&format!(", {} heartbeat samples", self.samples.len()));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Abort
// ---------------------------------------------------------------------------

/// Why a supervised run was rolled back.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AbortReason {
    /// A [`CancelToken`] was triggered.
    Cancelled,
    /// The wall-clock deadline expired.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Elapsed wall-clock time when the overrun was detected.
        elapsed: Duration,
    },
    /// A [`ResourceBudget`] limit was exceeded mid-run.
    BudgetExceeded {
        /// Which limit was violated.
        resource: BudgetResource,
        /// The configured ceiling.
        limit: u64,
        /// What the kernel tried to use.
        requested: u64,
        /// The array involved, when the violation is tied to one.
        array: Option<String>,
    },
    /// Any other runtime failure (out-of-bounds access, missing binding,
    /// division by zero, ...).
    Failed(RunError),
}

impl AbortReason {
    /// True for aborts that a degraded schedule might avoid (deadline and
    /// budget overruns). Cancellation and genuine runtime failures are not
    /// retried.
    pub fn is_retryable(&self) -> bool {
        matches!(self, AbortReason::DeadlineExceeded { .. } | AbortReason::BudgetExceeded { .. })
    }

    /// Classifies a [`RunError`] as an abort reason. Public so alternate
    /// execution backends (the native backend) can report aborts through
    /// the same taxonomy as the interpreter's supervised sessions.
    pub fn from_run_error(e: RunError) -> AbortReason {
        match e {
            RunError::Cancelled => AbortReason::Cancelled,
            RunError::DeadlineExceeded { deadline_ms, elapsed_ms } => {
                AbortReason::DeadlineExceeded {
                    deadline: Duration::from_millis(deadline_ms),
                    elapsed: Duration::from_millis(elapsed_ms),
                }
            }
            RunError::BudgetExceeded { resource, limit, requested, array } => {
                AbortReason::BudgetExceeded { resource, limit, requested, array }
            }
            other => AbortReason::Failed(other),
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Cancelled => write!(f, "cancelled by caller"),
            AbortReason::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "deadline of {:.1} ms exceeded after {:.1} ms",
                deadline.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3
            ),
            AbortReason::BudgetExceeded { resource, limit, requested, array } => {
                write!(f, "{resource} budget exceeded: limit {limit}, needed {requested}")?;
                if let Some(name) = array {
                    write!(f, " (array `{name}`)")?;
                }
                Ok(())
            }
            AbortReason::Failed(e) => write!(f, "runtime failure: {e}"),
        }
    }
}

/// A supervised run that was rolled back. The binding the run was given is
/// byte-identical to its pre-run state.
#[derive(Debug, Clone, PartialEq)]
pub struct Aborted {
    /// Why the run was rolled back.
    pub reason: AbortReason,
    /// How far the run had progressed when it was stopped.
    pub progress: Progress,
    /// Wall-clock time spent before the rollback.
    pub elapsed: Duration,
}

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "aborted after {:.3} ms ({}): {}; outputs rolled back",
            self.elapsed.as_secs_f64() * 1e3,
            self.progress,
            self.reason
        )
    }
}

impl std::error::Error for Aborted {}

// ---------------------------------------------------------------------------
// Supervisor / ExecSession
// ---------------------------------------------------------------------------

/// Configuration for supervised execution: deadline, cancellation token,
/// resource budget and heartbeat interval.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use taco_llir::{ArrayTy, Binding, Executable, Expr, Kernel, Param, Stmt, Supervisor};
///
/// let kernel = Kernel::new("scale")
///     .scalar_param("n")
///     .array_param(Param::input("x", ArrayTy::F64))
///     .array_param(Param::output("out", ArrayTy::F64))
///     .body(vec![Stmt::for_(
///         "i",
///         Expr::int(0),
///         Expr::var("n"),
///         vec![Stmt::store("out", Expr::var("i"), Expr::float(2.0) * Expr::load("x", Expr::var("i")))],
///     )]);
/// let exe = Executable::compile(&kernel)?;
/// let mut b = Binding::new();
/// b.set_scalar("n", 3);
/// b.set_f64("x", vec![1.0, 2.0, 3.0]);
/// b.set_f64("out", vec![0.0; 3]);
///
/// let supervisor = Supervisor::new().with_deadline(Duration::from_secs(5));
/// let report = supervisor.run(&exe, &mut b).expect("well within deadline");
/// assert_eq!(b.f64_array("out").unwrap(), &[2.0, 4.0, 6.0]);
/// assert!(report.elapsed < Duration::from_secs(5));
/// # Ok::<(), taco_llir::CompileError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    deadline: Option<Duration>,
    deadline_at: Option<Instant>,
    budget: ResourceBudget,
    cancel: CancelToken,
    heartbeat: Option<Duration>,
}

impl Supervisor {
    /// A supervisor with no deadline, no budget, and a fresh cancel token.
    pub fn new() -> Supervisor {
        Supervisor::default()
    }

    /// Sets the wall-clock deadline for each supervised run.
    pub fn with_deadline(mut self, deadline: Duration) -> Supervisor {
        self.deadline = Some(deadline);
        self
    }

    /// Sets an *absolute* deadline instant, the form a deadline-scheduling
    /// server hands down: time a request spent queued counts against it,
    /// unlike [`Supervisor::with_deadline`] whose budget starts at run
    /// start. When both are set, whichever expires first wins. An instant
    /// already in the past aborts the run at the first supervision check.
    pub fn with_deadline_at(mut self, at: Instant) -> Supervisor {
        self.deadline_at = Some(at);
        self
    }

    /// Sets the resource budget enforced during each supervised run.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Supervisor {
        self.budget = budget;
        self
    }

    /// Shares an externally controlled cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Supervisor {
        self.cancel = token;
        self
    }

    /// Enables the watchdog thread, sampling progress at `interval`.
    pub fn with_heartbeat(mut self, interval: Duration) -> Supervisor {
        self.heartbeat = Some(interval);
        self
    }

    /// The cancellation token runs under this supervisor observe.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The configured budget.
    pub fn budget(&self) -> ResourceBudget {
        self.budget
    }

    /// The configured relative deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured absolute deadline instant, if any.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.deadline_at
    }

    /// Prepares a supervised session for one executable.
    pub fn session<'e>(&self, exe: &'e Executable) -> ExecSession<'e> {
        ExecSession { exe, config: self.clone() }
    }

    /// Runs `exe` against `binding` under this supervisor's limits; see
    /// [`ExecSession::run`].
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] — with the binding rolled back — on deadline,
    /// cancellation, budget exhaustion, or any runtime error.
    pub fn run(&self, exe: &Executable, binding: &mut Binding) -> Result<ExecReport, Aborted> {
        self.session(exe).run(binding)
    }
}

/// One executable prepared to run under supervision. Obtain from
/// [`Supervisor::session`]; cancel concurrent runs through
/// [`ExecSession::cancel_token`].
#[derive(Debug)]
pub struct ExecSession<'e> {
    exe: &'e Executable,
    config: Supervisor,
}

/// Watchdog thread handle: samples shared progress until told to stop.
struct Watchdog {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<HeartbeatSample>>>,
    handle: std::thread::JoinHandle<()>,
}

impl Watchdog {
    fn spawn(interval: Duration, shared: Arc<SharedProgress>, start: Instant) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let (stop2, samples2) = (Arc::clone(&stop), Arc::clone(&samples));
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let sample = HeartbeatSample { at: start.elapsed(), progress: shared.snapshot() };
                if let Ok(mut s) = samples2.lock() {
                    s.push(sample);
                }
            }
        });
        Watchdog { stop, samples, handle }
    }

    fn finish(self) -> Vec<HeartbeatSample> {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        match self.samples.lock() {
            Ok(mut s) => std::mem::take(&mut *s),
            Err(_) => Vec::new(),
        }
    }
}

impl ExecSession<'_> {
    /// The token that cancels runs of this session.
    pub fn cancel_token(&self) -> CancelToken {
        self.config.cancel.clone()
    }

    /// Runs the kernel transactionally: on success every output (arrays and
    /// scalar outputs) is committed to `binding` and an [`ExecReport`] is
    /// returned; on *any* failure — deadline, cancellation, budget, or
    /// runtime error — writable arrays are restored from their pre-run
    /// snapshot so `binding` is byte-identical to its pre-run state.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] carrying the typed reason and the progress
    /// counters at the moment the run was stopped.
    pub fn run(&self, binding: &mut Binding) -> Result<ExecReport, Aborted> {
        // Stage 1: snapshot. Lowered kernels only ever store into output and
        // inout parameters (input arrays are read-only by construction), so
        // snapshotting the writable parameters is enough for byte-identical
        // restoration.
        let snapshot = binding.snapshot(self.exe.writable_arrays());

        let shared = Arc::new(SharedProgress::default());
        let start = Instant::now();
        let watchdog =
            self.config.heartbeat.map(|iv| Watchdog::spawn(iv, Arc::clone(&shared), start));

        // An absolute deadline is folded into the (start, duration) pair the
        // interpreter checks; an instant already in the past becomes a zero
        // allowance, aborting at the first supervision check.
        let remaining_abs =
            self.config.deadline_at.map(|at| at.saturating_duration_since(start));
        let deadline = match (self.config.deadline, remaining_abs) {
            (Some(rel), Some(abs)) => Some(rel.min(abs)),
            (rel, abs) => rel.or(abs),
        };
        let result = self.exe.run_controlled(
            binding,
            &self.config.budget,
            crate::exec::RunControls {
                cancel: Some(self.config.cancel.flag()),
                deadline: deadline.map(|d| (start, d)),
                shared: Some(&shared),
            },
        );

        let elapsed = start.elapsed();
        let samples = watchdog.map(Watchdog::finish).unwrap_or_default();

        match result {
            Ok(()) => Ok(ExecReport { elapsed, progress: shared.snapshot(), samples }),
            Err(e) => {
                // Stage 2: rollback. `run_controlled` has already moved the
                // parameter arrays back into the binding; overwrite the
                // writable ones with their snapshots.
                binding.restore(snapshot);
                Err(Aborted {
                    reason: AbortReason::from_run_error(e),
                    progress: shared.snapshot(),
                    elapsed,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayTy, Expr, Kernel, Param, Stmt};

    /// out[0..n] = x[0..n] * 2, with a spin loop of `spin` iterations first.
    fn spin_then_scale() -> Kernel {
        Kernel::new("spin_scale")
            .scalar_param("n")
            .scalar_param("spin")
            .array_param(Param::input("x", ArrayTy::F64))
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::for_("s", Expr::int(0), Expr::var("spin"), vec![]),
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::store(
                        "out",
                        Expr::var("i"),
                        Expr::float(2.0) * Expr::load("x", Expr::var("i")),
                    )],
                ),
            ])
    }

    fn binding(spin: i64) -> Binding {
        let mut b = Binding::new();
        b.set_scalar("n", 3).set_scalar("spin", spin);
        b.set_f64("x", vec![1.0, 2.0, 3.0]);
        b.set_f64("out", vec![-1.0, -2.0, -3.0]);
        b
    }

    #[test]
    fn commits_outputs_and_reports_progress() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        let mut b = binding(10);
        let report = Supervisor::new().run(&exe, &mut b).expect("commits");
        assert_eq!(b.f64_array("out").unwrap(), &[2.0, 4.0, 6.0]);
        assert_eq!(report.progress.iterations, 13);
    }

    #[test]
    fn precancelled_token_rolls_back_before_any_visible_write() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        let supervisor = Supervisor::new();
        supervisor.cancel_token().cancel();
        let mut b = binding(10);
        let before = b.clone();
        let err = supervisor.run(&exe, &mut b).unwrap_err();
        assert_eq!(err.reason, AbortReason::Cancelled);
        assert_eq!(b, before, "binding must be byte-identical after an abort");
    }

    #[test]
    fn cancel_from_another_thread_stops_a_long_run() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        let supervisor = Supervisor::new();
        let token = supervisor.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        });
        let mut b = binding(i64::MAX);
        let before = b.clone();
        let err = supervisor.run(&exe, &mut b).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err.reason, AbortReason::Cancelled);
        assert_eq!(b, before);
        assert!(err.progress.iterations > 0, "made progress before the cancel");
    }

    #[test]
    fn deadline_aborts_and_rolls_back() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        let supervisor = Supervisor::new().with_deadline(Duration::from_millis(30));
        let mut b = binding(i64::MAX);
        let before = b.clone();
        let err = supervisor.run(&exe, &mut b).unwrap_err();
        match err.reason {
            AbortReason::DeadlineExceeded { deadline, elapsed } => {
                assert_eq!(deadline, Duration::from_millis(30));
                assert!(elapsed >= deadline);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(b, before);
    }

    #[test]
    fn absolute_deadline_counts_time_spent_before_the_run() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        // A deadline instant already behind us: the run must abort at the
        // first supervision check with the binding untouched, exactly as a
        // zero relative deadline would.
        let supervisor = Supervisor::new().with_deadline_at(Instant::now());
        let mut b = binding(i64::MAX);
        let before = b.clone();
        let err = supervisor.run(&exe, &mut b).unwrap_err();
        assert!(
            matches!(err.reason, AbortReason::DeadlineExceeded { .. }),
            "expected DeadlineExceeded, got {:?}",
            err.reason
        );
        assert_eq!(b, before);

        // A generous absolute deadline commits; the tighter of (relative,
        // absolute) governs, so pairing it with a tiny relative one aborts.
        let mut ok = binding(10);
        Supervisor::new()
            .with_deadline_at(Instant::now() + Duration::from_secs(60))
            .run(&exe, &mut ok)
            .expect("well within the absolute deadline");
        let mut both = binding(i64::MAX);
        let err = Supervisor::new()
            .with_deadline_at(Instant::now() + Duration::from_secs(60))
            .with_deadline(Duration::from_millis(20))
            .run(&exe, &mut both)
            .unwrap_err();
        assert!(matches!(err.reason, AbortReason::DeadlineExceeded { .. }));
    }

    #[test]
    fn budget_abort_is_transactional_too() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        let supervisor = Supervisor::new()
            .with_budget(ResourceBudget::unlimited().with_max_loop_iterations(5));
        let mut b = binding(1000);
        let before = b.clone();
        let err = supervisor.run(&exe, &mut b).unwrap_err();
        assert!(matches!(err.reason, AbortReason::BudgetExceeded { .. }));
        assert!(err.reason.is_retryable());
        assert_eq!(b, before);
    }

    #[test]
    fn runtime_failure_rolls_back_partial_writes() {
        // Writes out[0] then faults on out[99]: the write to out[0] must not
        // be visible after the abort.
        let k = Kernel::new("partial")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::store("out", Expr::int(0), Expr::float(7.0)),
                Stmt::store("out", Expr::int(99), Expr::float(8.0)),
            ]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        b.set_f64("out", vec![0.0; 3]);
        let before = b.clone();
        let err = Supervisor::new().run(&exe, &mut b).unwrap_err();
        assert!(matches!(err.reason, AbortReason::Failed(RunError::OutOfBounds { .. })));
        assert!(!err.reason.is_retryable());
        assert_eq!(b, before, "partial store must be rolled back");
    }

    #[test]
    fn plain_run_still_exposes_partial_state() {
        // The unsupervised path intentionally keeps partial outputs for
        // debugging; the supervised path is the transactional one.
        let k = Kernel::new("partial")
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::store("out", Expr::int(0), Expr::float(7.0)),
                Stmt::store("out", Expr::int(99), Expr::float(8.0)),
            ]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        b.set_f64("out", vec![0.0; 3]);
        assert!(exe.run(&mut b).is_err());
        assert_eq!(b.f64_array("out").unwrap(), &[7.0, 0.0, 0.0]);
    }

    #[test]
    fn heartbeat_watchdog_samples_a_long_run() {
        let exe = Executable::compile(&spin_then_scale()).unwrap();
        let supervisor = Supervisor::new()
            .with_deadline(Duration::from_millis(80))
            .with_heartbeat(Duration::from_millis(5));
        let mut b = binding(i64::MAX);
        let err = supervisor.run(&exe, &mut b).unwrap_err();
        assert!(matches!(err.reason, AbortReason::DeadlineExceeded { .. }));
        // The watchdog samples are only exposed on commit; spin fast enough
        // to commit and observe them instead.
        let mut b2 = binding(2_000_000);
        let report = Supervisor::new()
            .with_heartbeat(Duration::from_millis(1))
            .run(&exe, &mut b2)
            .expect("no deadline, commits");
        assert!(
            report.samples.windows(2).all(|w| w[0].at <= w[1].at
                && w[0].progress.iterations <= w[1].progress.iterations),
            "samples are monotone"
        );
        assert_eq!(report.progress.iterations, 2_000_000 + 3);
    }

    #[test]
    fn report_summary_and_abort_display_are_human_readable() {
        let report = ExecReport {
            elapsed: Duration::from_millis(12),
            progress: Progress {
                iterations: 42,
                allocated_bytes: 1024,
                ..Progress::default()
            },
            samples: vec![],
        };
        let s = report.summary();
        assert!(s.contains("42 iterations") && s.contains("1024 bytes"), "{s}");

        let aborted = Aborted {
            reason: AbortReason::DeadlineExceeded {
                deadline: Duration::from_millis(50),
                elapsed: Duration::from_millis(61),
            },
            progress: Progress { iterations: 9, ..Progress::default() },
            elapsed: Duration::from_millis(61),
        };
        let s = aborted.to_string();
        assert!(s.contains("deadline") && s.contains("rolled back"), "{s}");
        assert!(AbortReason::Cancelled.to_string().contains("cancel"));
    }
}
