//! Compilation of kernels to a slot-resolved executable form, and execution.
//!
//! [`Executable::compile`] walks a [`Kernel`], checks types, and resolves
//! every scalar variable and array name to a dense slot index. The resulting
//! typed statement tree is then interpreted by [`Executable::run`] with no
//! name lookups in any inner loop — this plays the role of the paper's
//! "target code" stage (Figure 6) in a pure-Rust setting.

use crate::alloc::{elem_bytes, AllocSink, BudgetMeter};
use crate::supervise::SharedProgress;
use crate::{
    ArrayTy, BinOp, BudgetResource, CompileError, Expr, Kernel, ParamKind, ResourceBudget,
    RunError, Stmt, UnOp, WorkspaceKind,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A buffer bound to (or allocated by) a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayVal {
    /// 64-bit integer buffer.
    Int(Vec<i64>),
    /// Double-precision buffer.
    F64(Vec<f64>),
    /// Single-precision buffer.
    F32(Vec<f32>),
    /// Boolean buffer.
    Bool(Vec<bool>),
}

impl ArrayVal {
    fn ty(&self) -> ArrayTy {
        match self {
            ArrayVal::Int(_) => ArrayTy::Int,
            ArrayVal::F64(_) => ArrayTy::F64,
            ArrayVal::F32(_) => ArrayTy::F32,
            ArrayVal::Bool(_) => ArrayTy::Bool,
        }
    }

    fn empty(ty: ArrayTy) -> ArrayVal {
        match ty {
            ArrayTy::Int => ArrayVal::Int(Vec::new()),
            ArrayTy::F64 => ArrayVal::F64(Vec::new()),
            ArrayTy::F32 => ArrayVal::F32(Vec::new()),
            ArrayTy::Bool => ArrayVal::Bool(Vec::new()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrayVal::Int(v) => v.len(),
            ArrayVal::F64(v) => v.len(),
            ArrayVal::F32(v) => v.len(),
            ArrayVal::Bool(v) => v.len(),
        }
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Resolved (typed, slot-addressed) IR
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) enum IExpr {
    Lit(i64),
    Var(usize),
    Load(usize, Box<IExpr>),
    Len(usize),
    Bin(BinOp, Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
}

#[derive(Debug, Clone)]
pub(crate) enum FExpr {
    Lit(f64),
    Var(usize),
    LoadF64(usize, Box<IExpr>),
    LoadF32(usize, Box<IExpr>),
    Bin(BinOp, Box<FExpr>, Box<FExpr>),
    Neg(Box<FExpr>),
    FromInt(Box<IExpr>),
}

#[derive(Debug, Clone)]
pub(crate) enum BExpr {
    Lit(bool),
    Var(usize),
    Load(usize, Box<IExpr>),
    CmpI(BinOp, Box<IExpr>, Box<IExpr>),
    CmpF(BinOp, Box<FExpr>, Box<FExpr>),
    Bin(BinOp, Box<BExpr>, Box<BExpr>),
    Not(Box<BExpr>),
}

#[derive(Debug, Clone)]
pub(crate) enum RStmt {
    AssignI(usize, IExpr),
    AssignF(usize, FExpr),
    AssignB(usize, BExpr),
    StoreI(usize, IExpr, IExpr),
    StoreF64(usize, IExpr, FExpr),
    StoreF32(usize, IExpr, FExpr),
    StoreB(usize, IExpr, BExpr),
    StoreAddI(usize, IExpr, IExpr),
    StoreAddF64(usize, IExpr, FExpr),
    StoreAddF32(usize, IExpr, FExpr),
    For(usize, IExpr, IExpr, Vec<RStmt>),
    ParallelFor(Box<RParFor>),
    While(BExpr, Vec<RStmt>),
    If(BExpr, Vec<RStmt>, Vec<RStmt>),
    MemsetI(usize, IExpr),
    MemsetF64(usize, FExpr),
    MemsetF32(usize, FExpr),
    MemsetB(usize, BExpr),
    Alloc(usize, ArrayTy, IExpr),
    Realloc(usize, IExpr),
    Sort(usize, IExpr, IExpr),
    MapInit(usize, WorkspaceKind, IExpr),
    MapScatter(usize, IExpr, FExpr, bool),
    MapDrainSorted(usize, usize, usize, Vec<RStmt>),
}

/// A slot-resolved [`Stmt::ParallelFor`]: a counting loop whose iterations
/// are distributed over worker threads in contiguous chunks and whose
/// per-worker state is merged back deterministically (boxed to keep the
/// common `RStmt` variants small).
#[derive(Debug, Clone)]
pub(crate) struct RParFor {
    /// Loop-variable int slot.
    pub(crate) var: usize,
    pub(crate) lo: IExpr,
    pub(crate) hi: IExpr,
    /// Worker count baked in at lowering; 0 resolves at run time.
    pub(crate) threads: usize,
    /// Array slots private to each worker (per-thread workspaces): workers
    /// run on clones, and the parent's pristine copies survive the loop.
    pub(crate) private: Vec<usize>,
    pub(crate) append: Option<RAppend>,
    pub(crate) body: Vec<RStmt>,
}

/// Slot-resolved [`AppendMerge`](crate::AppendMerge).
#[derive(Debug, Clone)]
pub(crate) struct RAppend {
    /// Int slot of the append counter scalar.
    pub(crate) counter: usize,
    /// Array slots appended to at counter positions.
    pub(crate) data: Vec<usize>,
    /// Slot of the result `pos` array whose per-row entries need rebasing.
    pub(crate) pos: Option<usize>,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalarTy {
    Int,
    Float,
    Bool,
}

enum Typed {
    I(IExpr),
    F(FExpr),
    B(BExpr),
}

struct Compiler {
    scopes: Vec<HashMap<String, (ScalarTy, usize)>>,
    arrays: HashMap<String, (usize, ArrayTy)>,
    array_names: Vec<String>,
    maps: HashMap<String, usize>,
    map_names: Vec<String>,
    n_int: usize,
    n_float: usize,
    n_bool: usize,
}

impl Compiler {
    fn lookup_var(&self, name: &str) -> Option<(ScalarTy, usize)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: ScalarTy) -> Result<usize, CompileError> {
        if self.scopes.last().expect("scope stack nonempty").contains_key(name) {
            return Err(CompileError::Duplicate(name.to_string()));
        }
        let slot = match ty {
            ScalarTy::Int => {
                self.n_int += 1;
                self.n_int - 1
            }
            ScalarTy::Float => {
                self.n_float += 1;
                self.n_float - 1
            }
            ScalarTy::Bool => {
                self.n_bool += 1;
                self.n_bool - 1
            }
        };
        self.scopes.last_mut().unwrap().insert(name.to_string(), (ty, slot));
        Ok(slot)
    }

    fn array(&mut self, name: &str) -> Result<(usize, ArrayTy), CompileError> {
        self.arrays
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::UnknownArray(name.to_string()))
    }

    fn map(&mut self, name: &str) -> Result<usize, CompileError> {
        self.maps.get(name).copied().ok_or_else(|| CompileError::UnknownArray(name.to_string()))
    }

    fn declare_map(&mut self, name: &str) -> Result<usize, CompileError> {
        if let Some(&slot) = self.maps.get(name) {
            return Ok(slot);
        }
        if self.arrays.contains_key(name) {
            return Err(CompileError::Duplicate(name.to_string()));
        }
        let slot = self.map_names.len();
        self.map_names.push(name.to_string());
        self.maps.insert(name.to_string(), slot);
        Ok(slot)
    }

    fn declare_array(&mut self, name: &str, ty: ArrayTy) -> Result<usize, CompileError> {
        if let Some(&(slot, prev)) = self.arrays.get(name) {
            if prev != ty {
                return Err(CompileError::TypeMismatch {
                    context: format!("array `{name}` reallocated with a different type"),
                });
            }
            return Ok(slot);
        }
        let slot = self.array_names.len();
        self.array_names.push(name.to_string());
        self.arrays.insert(name.to_string(), (slot, ty));
        Ok(slot)
    }

    fn expr(&mut self, e: &Expr) -> Result<Typed, CompileError> {
        Ok(match e {
            Expr::Int(v) => Typed::I(IExpr::Lit(*v)),
            Expr::Float(v) => Typed::F(FExpr::Lit(*v)),
            Expr::Bool(v) => Typed::B(BExpr::Lit(*v)),
            Expr::Var(name) => {
                let (ty, slot) =
                    self.lookup_var(name).ok_or_else(|| CompileError::UnknownVar(name.clone()))?;
                match ty {
                    ScalarTy::Int => Typed::I(IExpr::Var(slot)),
                    ScalarTy::Float => Typed::F(FExpr::Var(slot)),
                    ScalarTy::Bool => Typed::B(BExpr::Var(slot)),
                }
            }
            Expr::Load(arr, idx) => {
                let (slot, ty) = self.array(arr)?;
                let idx = self.int_expr(idx)?;
                match ty {
                    ArrayTy::Int => Typed::I(IExpr::Load(slot, Box::new(idx))),
                    ArrayTy::F64 => Typed::F(FExpr::LoadF64(slot, Box::new(idx))),
                    ArrayTy::F32 => Typed::F(FExpr::LoadF32(slot, Box::new(idx))),
                    ArrayTy::Bool => Typed::B(BExpr::Load(slot, Box::new(idx))),
                }
            }
            Expr::Len(arr) => {
                let (slot, _) = self.array(arr)?;
                Typed::I(IExpr::Len(slot))
            }
            Expr::Un(UnOp::Neg, inner) => match self.expr(inner)? {
                Typed::I(i) => Typed::I(IExpr::Neg(Box::new(i))),
                Typed::F(f) => Typed::F(FExpr::Neg(Box::new(f))),
                Typed::B(_) => {
                    return Err(CompileError::TypeMismatch {
                        context: "arithmetic negation of a boolean".into(),
                    })
                }
            },
            Expr::Un(UnOp::Not, inner) => {
                let b = self.bool_expr(inner)?;
                Typed::B(BExpr::Not(Box::new(b)))
            }
            Expr::Bin(op, a, b) => self.bin(*op, a, b)?,
        })
    }

    fn bin(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Typed, CompileError> {
        use BinOp::*;
        let ta = self.expr(a)?;
        let tb = self.expr(b)?;
        let arithmetic = matches!(op, Add | Sub | Mul | Div | Rem | Min | Max);
        let comparison = matches!(op, Eq | Ne | Lt | Le | Gt | Ge);
        let logical = matches!(op, And | Or);
        match (ta, tb) {
            (Typed::I(x), Typed::I(y)) if arithmetic => {
                Ok(Typed::I(IExpr::Bin(op, Box::new(x), Box::new(y))))
            }
            (Typed::I(x), Typed::I(y)) if comparison => {
                Ok(Typed::B(BExpr::CmpI(op, Box::new(x), Box::new(y))))
            }
            (Typed::B(x), Typed::B(y)) if logical => {
                Ok(Typed::B(BExpr::Bin(op, Box::new(x), Box::new(y))))
            }
            (x @ (Typed::I(_) | Typed::F(_)), y @ (Typed::I(_) | Typed::F(_)))
                if arithmetic || comparison =>
            {
                let fx = Self::promote(x);
                let fy = Self::promote(y);
                if arithmetic {
                    Ok(Typed::F(FExpr::Bin(op, Box::new(fx), Box::new(fy))))
                } else {
                    Ok(Typed::B(BExpr::CmpF(op, Box::new(fx), Box::new(fy))))
                }
            }
            _ => Err(CompileError::TypeMismatch { context: format!("operator {op:?}") }),
        }
    }

    fn promote(t: Typed) -> FExpr {
        match t {
            Typed::F(f) => f,
            Typed::I(i) => FExpr::FromInt(Box::new(i)),
            Typed::B(_) => unreachable!("bool operands rejected before promotion"),
        }
    }

    fn int_expr(&mut self, e: &Expr) -> Result<IExpr, CompileError> {
        match self.expr(e)? {
            Typed::I(i) => Ok(i),
            _ => Err(CompileError::TypeMismatch { context: format!("expected integer: {e:?}") }),
        }
    }

    fn float_expr(&mut self, e: &Expr) -> Result<FExpr, CompileError> {
        match self.expr(e)? {
            Typed::F(f) => Ok(f),
            Typed::I(i) => Ok(FExpr::FromInt(Box::new(i))),
            _ => Err(CompileError::TypeMismatch { context: format!("expected float: {e:?}") }),
        }
    }

    fn bool_expr(&mut self, e: &Expr) -> Result<BExpr, CompileError> {
        match self.expr(e)? {
            Typed::B(b) => Ok(b),
            _ => Err(CompileError::TypeMismatch { context: format!("expected boolean: {e:?}") }),
        }
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<Vec<RStmt>, CompileError> {
        self.scopes.push(HashMap::new());
        let out = self.block_in_current_scope(stmts);
        self.scopes.pop();
        out
    }

    fn block_in_current_scope(&mut self, stmts: &[Stmt]) -> Result<Vec<RStmt>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            if let Some(r) = self.stmt(s)? {
                out.push(r);
            }
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Option<RStmt>, CompileError> {
        Ok(Some(match s {
            Stmt::DeclInt(name, init) => {
                let e = self.int_expr(init)?;
                let slot = self.declare(name, ScalarTy::Int)?;
                RStmt::AssignI(slot, e)
            }
            Stmt::DeclFloat(name, init) => {
                let e = self.float_expr(init)?;
                let slot = self.declare(name, ScalarTy::Float)?;
                RStmt::AssignF(slot, e)
            }
            Stmt::DeclBool(name, init) => {
                let e = self.bool_expr(init)?;
                let slot = self.declare(name, ScalarTy::Bool)?;
                RStmt::AssignB(slot, e)
            }
            Stmt::Assign(name, val) => {
                let (ty, slot) =
                    self.lookup_var(name).ok_or_else(|| CompileError::UnknownVar(name.clone()))?;
                match ty {
                    ScalarTy::Int => RStmt::AssignI(slot, self.int_expr(val)?),
                    ScalarTy::Float => RStmt::AssignF(slot, self.float_expr(val)?),
                    ScalarTy::Bool => RStmt::AssignB(slot, self.bool_expr(val)?),
                }
            }
            Stmt::Store { arr, idx, val } => {
                let (slot, ty) = self.array(arr)?;
                let idx = self.int_expr(idx)?;
                match ty {
                    ArrayTy::Int => RStmt::StoreI(slot, idx, self.int_expr(val)?),
                    ArrayTy::F64 => RStmt::StoreF64(slot, idx, self.float_expr(val)?),
                    ArrayTy::F32 => RStmt::StoreF32(slot, idx, self.float_expr(val)?),
                    ArrayTy::Bool => RStmt::StoreB(slot, idx, self.bool_expr(val)?),
                }
            }
            Stmt::StoreAdd { arr, idx, val } => {
                let (slot, ty) = self.array(arr)?;
                let idx = self.int_expr(idx)?;
                match ty {
                    ArrayTy::Int => RStmt::StoreAddI(slot, idx, self.int_expr(val)?),
                    ArrayTy::F64 => RStmt::StoreAddF64(slot, idx, self.float_expr(val)?),
                    ArrayTy::F32 => RStmt::StoreAddF32(slot, idx, self.float_expr(val)?),
                    ArrayTy::Bool => {
                        return Err(CompileError::TypeMismatch {
                            context: format!("accumulating store into boolean array `{arr}`"),
                        })
                    }
                }
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self.int_expr(lo)?;
                let hi = self.int_expr(hi)?;
                self.scopes.push(HashMap::new());
                let slot = self.declare(var, ScalarTy::Int)?;
                let body = self.block_in_current_scope(body)?;
                self.scopes.pop();
                RStmt::For(slot, lo, hi, body)
            }
            Stmt::ParallelFor { var, lo, hi, threads, private, append, body } => {
                let lo = self.int_expr(lo)?;
                let hi = self.int_expr(hi)?;
                let private = private
                    .iter()
                    .map(|n| self.array(n).map(|(slot, _)| slot))
                    .collect::<Result<Vec<_>, _>>()?;
                let append = match append {
                    Some(a) => {
                        let counter = match self.lookup_var(&a.counter) {
                            Some((ScalarTy::Int, slot)) => slot,
                            _ => return Err(CompileError::UnknownVar(a.counter.clone())),
                        };
                        let data = a
                            .data
                            .iter()
                            .map(|n| self.array(n).map(|(slot, _)| slot))
                            .collect::<Result<Vec<_>, _>>()?;
                        let pos = match &a.pos {
                            Some(p) => Some(self.array(p)?.0),
                            None => None,
                        };
                        Some(RAppend { counter, data, pos })
                    }
                    None => None,
                };
                self.scopes.push(HashMap::new());
                let slot = self.declare(var, ScalarTy::Int)?;
                let body = self.block_in_current_scope(body)?;
                self.scopes.pop();
                RStmt::ParallelFor(Box::new(RParFor {
                    var: slot,
                    lo,
                    hi,
                    threads: *threads,
                    private,
                    append,
                    body,
                }))
            }
            Stmt::While { cond, body } => {
                let cond = self.bool_expr(cond)?;
                let body = self.block(body)?;
                RStmt::While(cond, body)
            }
            Stmt::If { cond, then, els } => {
                let cond = self.bool_expr(cond)?;
                let then = self.block(then)?;
                let els = self.block(els)?;
                RStmt::If(cond, then, els)
            }
            Stmt::Memset { arr, val } => {
                let (slot, ty) = self.array(arr)?;
                match ty {
                    ArrayTy::Int => RStmt::MemsetI(slot, self.int_expr(val)?),
                    ArrayTy::F64 => RStmt::MemsetF64(slot, self.float_expr(val)?),
                    ArrayTy::F32 => RStmt::MemsetF32(slot, self.float_expr(val)?),
                    ArrayTy::Bool => RStmt::MemsetB(slot, self.bool_expr(val)?),
                }
            }
            Stmt::Alloc { arr, ty, len } => {
                let len = self.int_expr(len)?;
                let slot = self.declare_array(arr, *ty)?;
                RStmt::Alloc(slot, *ty, len)
            }
            Stmt::Realloc { arr, len } => {
                let (slot, _) = self.array(arr)?;
                let len = self.int_expr(len)?;
                RStmt::Realloc(slot, len)
            }
            Stmt::Sort { arr, lo, hi } => {
                let (slot, ty) = self.array(arr)?;
                if ty != ArrayTy::Int {
                    return Err(CompileError::SortNonInt(arr.clone()));
                }
                RStmt::Sort(slot, self.int_expr(lo)?, self.int_expr(hi)?)
            }
            Stmt::MapInit { map, kind, capacity } => {
                if *kind == WorkspaceKind::Dense {
                    return Err(CompileError::TypeMismatch {
                        context: format!("map workspace `{map}` initialized with dense kind"),
                    });
                }
                let cap = self.int_expr(capacity)?;
                let slot = self.declare_map(map)?;
                RStmt::MapInit(slot, *kind, cap)
            }
            Stmt::MapScatter { map, key, val, add } => {
                let slot = self.map(map)?;
                let key = self.int_expr(key)?;
                let val = self.float_expr(val)?;
                RStmt::MapScatter(slot, key, val, *add)
            }
            Stmt::MapDrainSorted { map, key, val, body } => {
                let slot = self.map(map)?;
                self.scopes.push(HashMap::new());
                let key_slot = self.declare(key, ScalarTy::Int)?;
                let val_slot = self.declare(val, ScalarTy::Float)?;
                let body = self.block_in_current_scope(body)?;
                self.scopes.pop();
                RStmt::MapDrainSorted(slot, key_slot, val_slot, body)
            }
            Stmt::Comment(_) => return Ok(None),
        }))
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// Per-run budget accounting lives in [`crate::alloc::BudgetMeter`], shared
// with the native backend so both report byte-identical budget aborts.

/// How often (in loop iterations) the interpreter performs the expensive
/// supervision checks: reading the clock, the cancel flag, and publishing
/// progress counters. Back-edges between checks cost one countdown decrement.
///
/// Public so supervision consumers (the serving daemon, soak tests) can
/// bound how late a deadline or cancellation can be observed: at most one
/// stride of loop iterations after the event.
pub const SUPERVISION_STRIDE: u32 = 1024;

/// Supervision hooks threaded into one run by
/// [`ExecSession::run`](crate::ExecSession::run). All-`None` (the `Default`)
/// runs unsupervised with zero overhead beyond the stride countdown.
#[derive(Default, Clone, Copy)]
pub(crate) struct RunControls<'a> {
    /// Cooperative cancellation flag, checked at loop back-edges.
    pub(crate) cancel: Option<&'a AtomicBool>,
    /// Wall-clock deadline as (run start, allowed duration).
    pub(crate) deadline: Option<(Instant, Duration)>,
    /// Progress counters published for the watchdog thread.
    pub(crate) shared: Option<&'a SharedProgress>,
}

/// Bytes charged per map-workspace entry: key and value, plus slot overhead
/// for the open-addressing hash variant.
pub(crate) fn map_entry_bytes(kind: WorkspaceKind) -> u64 {
    kind.entry_bytes()
}

/// A sparse map workspace: kernel-local machine state keyed by integer
/// coordinates. Never part of a [`Binding`], so supervised snapshot/rollback
/// is unaffected by map contents.
#[derive(Debug, Clone)]
enum MapStore {
    /// Hash-map backing: unordered accumulate, sorted on drain.
    Hash(HashMap<i64, f64>),
    /// Coordinate-list backing: ordered insert with dedup, drained in place.
    Sorted(Vec<(i64, f64)>),
}

#[derive(Debug, Clone)]
struct MapWs {
    store: MapStore,
    /// Entry capacity already charged against the byte budget; grows by
    /// doubling as entries are inserted, like `Realloc`.
    charged_entries: u64,
}

impl Default for MapWs {
    fn default() -> MapWs {
        MapWs { store: MapStore::Hash(HashMap::new()), charged_entries: 0 }
    }
}

impl MapWs {
    fn kind(&self) -> WorkspaceKind {
        match self.store {
            MapStore::Hash(_) => WorkspaceKind::Hash,
            MapStore::Sorted(_) => WorkspaceKind::CoordList,
        }
    }

    fn len(&self) -> usize {
        match &self.store {
            MapStore::Hash(m) => m.len(),
            MapStore::Sorted(v) => v.len(),
        }
    }

    /// Removes all entries in ascending key order.
    fn drain_sorted(&mut self) -> Vec<(i64, f64)> {
        match &mut self.store {
            MapStore::Hash(m) => {
                let mut entries: Vec<(i64, f64)> = m.drain().collect();
                entries.sort_unstable_by_key(|&(k, _)| k);
                entries
            }
            MapStore::Sorted(v) => std::mem::take(v),
        }
    }
}

struct Mach<'a> {
    ints: Vec<i64>,
    floats: Vec<f64>,
    bools: Vec<bool>,
    arrays: Vec<ArrayVal>,
    array_names: Arc<Vec<String>>,
    maps: Vec<MapWs>,
    map_names: Arc<Vec<String>>,
    budget: BudgetMeter,
    ctl: RunControls<'a>,
    /// Iterations until the next supervision check.
    check_countdown: u32,
    /// True inside a worker thread of a parallel loop: nested
    /// `ParallelFor`s then run serially instead of spawning again.
    in_parallel: bool,
}

impl Mach<'_> {
    #[inline]
    fn oob(&self, arr: usize, idx: i64, len: usize) -> RunError {
        RunError::OutOfBounds { name: self.array_names[arr].clone(), idx, len }
    }

    #[inline]
    fn check(&self, arr: usize, idx: i64, len: usize) -> Result<usize, RunError> {
        if idx < 0 || idx as usize >= len {
            Err(self.oob(arr, idx, len))
        } else {
            Ok(idx as usize)
        }
    }

    /// Burns one unit of the loop-iteration fuse and, every
    /// [`SUPERVISION_STRIDE`] back-edges, performs the supervision checks
    /// (deadline, cancellation, progress publication).
    #[inline]
    fn consume_iteration(&mut self) -> Result<(), RunError> {
        match self.budget.iterations_left.checked_sub(1) {
            Some(left) => {
                self.budget.iterations_left = left;
                if self.check_countdown == 0 {
                    self.check_countdown = SUPERVISION_STRIDE;
                    self.supervision_check()
                } else {
                    self.check_countdown -= 1;
                    Ok(())
                }
            }
            None => Err(RunError::BudgetExceeded {
                resource: BudgetResource::LoopIterations,
                limit: self.budget.max_iterations,
                requested: self.budget.max_iterations.saturating_add(1),
                array: None,
            }),
        }
    }

    /// Iterations executed so far, recovered from the fuse without an extra
    /// hot-path counter.
    fn iterations_done(&self) -> u64 {
        self.budget.max_iterations - self.budget.iterations_left
    }

    /// The expensive periodic checks: publish progress, observe the cancel
    /// flag, compare the clock against the deadline.
    #[cold]
    #[inline(never)]
    fn supervision_check(&mut self) -> Result<(), RunError> {
        if let Some(shared) = self.ctl.shared {
            shared.iterations.store(self.iterations_done(), Ordering::Relaxed);
            shared.allocated_bytes.store(self.budget.total_bytes, Ordering::Relaxed);
            shared.note_peaks(self.budget.peak_single_bytes, self.budget.peak_map_bytes);
        }
        if let Some(flag) = self.ctl.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(RunError::Cancelled);
            }
        }
        if let Some((start, limit)) = self.ctl.deadline {
            let elapsed = start.elapsed();
            if elapsed >= limit {
                return Err(RunError::DeadlineExceeded {
                    deadline_ms: limit.as_millis() as u64,
                    elapsed_ms: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Charges `new_bytes` of growth for `arr` against the single-allocation
    /// and cumulative byte limits.
    fn charge_bytes(&mut self, arr: usize, new_bytes: u64) -> Result<(), RunError> {
        self.budget.charge_array_bytes(&self.array_names[arr], new_bytes)
    }

    /// Charges map-workspace growth: the map's whole footprint must fit the
    /// single-workspace limit (so a hash workspace that outgrows
    /// `max_workspace_bytes` aborts retryably, like an oversized `Alloc`),
    /// and the growth delta counts toward the cumulative total.
    fn charge_map_bytes(
        &mut self,
        map: usize,
        footprint: u64,
        delta: u64,
    ) -> Result<(), RunError> {
        self.budget.charge_map_bytes(&self.map_names[map], footprint, delta)
    }

    /// Grows the charged capacity of a map (by doubling) when an insert
    /// pushes its entry count past what has been paid for.
    fn charge_map_growth(&mut self, map: usize) -> Result<(), RunError> {
        let ws = &self.maps[map];
        let needed = ws.len() as u64 + 1;
        if needed <= ws.charged_entries {
            return Ok(());
        }
        let per = map_entry_bytes(ws.kind());
        let new_cap = (ws.charged_entries * 2).max(needed).max(8);
        let delta = (new_cap - ws.charged_entries).saturating_mul(per);
        self.charge_map_bytes(map, new_cap.saturating_mul(per), delta)?;
        self.maps[map].charged_entries = new_cap;
        Ok(())
    }

    /// Counts one `Realloc` growth of `arr` against the doubling cap.
    fn charge_realloc(&mut self, arr: usize) -> Result<(), RunError> {
        self.budget.charge_realloc_doubling(arr, &self.array_names[arr])
    }

    fn eval_i(&self, e: &IExpr) -> Result<i64, RunError> {
        Ok(match e {
            IExpr::Lit(v) => *v,
            IExpr::Var(s) => self.ints[*s],
            IExpr::Load(arr, idx) => {
                let i = self.eval_i(idx)?;
                match &self.arrays[*arr] {
                    ArrayVal::Int(v) => v[self.check(*arr, i, v.len())?],
                    _ => unreachable!("typed at compile time"),
                }
            }
            IExpr::Len(arr) => self.arrays[*arr].len() as i64,
            IExpr::Bin(op, a, b) => {
                let x = self.eval_i(a)?;
                let y = self.eval_i(b)?;
                // Wrapping semantics match C integer arithmetic and keep
                // hostile index expressions from aborting the process in
                // debug builds; division errors out instead of trapping.
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RunError::DivisionByZero);
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(RunError::DivisionByZero);
                        }
                        x.wrapping_rem(y)
                    }
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    // Invariant: `Compiler::bin` only builds `IExpr::Bin` for
                    // the arithmetic operators matched above.
                    _ => unreachable!("non-arithmetic op in integer expression"),
                }
            }
            IExpr::Neg(a) => self.eval_i(a)?.wrapping_neg(),
        })
    }

    fn eval_f(&self, e: &FExpr) -> Result<f64, RunError> {
        Ok(match e {
            FExpr::Lit(v) => *v,
            FExpr::Var(s) => self.floats[*s],
            FExpr::LoadF64(arr, idx) => {
                let i = self.eval_i(idx)?;
                match &self.arrays[*arr] {
                    ArrayVal::F64(v) => v[self.check(*arr, i, v.len())?],
                    _ => unreachable!("typed at compile time"),
                }
            }
            FExpr::LoadF32(arr, idx) => {
                let i = self.eval_i(idx)?;
                match &self.arrays[*arr] {
                    ArrayVal::F32(v) => v[self.check(*arr, i, v.len())?] as f64,
                    _ => unreachable!("typed at compile time"),
                }
            }
            FExpr::Bin(op, a, b) => {
                let x = self.eval_f(a)?;
                let y = self.eval_f(b)?;
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Rem => x % y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    _ => unreachable!("non-arithmetic op in float expression"),
                }
            }
            FExpr::Neg(a) => -self.eval_f(a)?,
            FExpr::FromInt(a) => self.eval_i(a)? as f64,
        })
    }

    fn eval_b(&self, e: &BExpr) -> Result<bool, RunError> {
        Ok(match e {
            BExpr::Lit(v) => *v,
            BExpr::Var(s) => self.bools[*s],
            BExpr::Load(arr, idx) => {
                let i = self.eval_i(idx)?;
                match &self.arrays[*arr] {
                    ArrayVal::Bool(v) => v[self.check(*arr, i, v.len())?],
                    _ => unreachable!("typed at compile time"),
                }
            }
            BExpr::CmpI(op, a, b) => {
                let x = self.eval_i(a)?;
                let y = self.eval_i(b)?;
                cmp(*op, &x, &y)
            }
            BExpr::CmpF(op, a, b) => {
                let x = self.eval_f(a)?;
                let y = self.eval_f(b)?;
                cmp(*op, &x, &y)
            }
            BExpr::Bin(BinOp::And, a, b) => self.eval_b(a)? && self.eval_b(b)?,
            BExpr::Bin(BinOp::Or, a, b) => self.eval_b(a)? || self.eval_b(b)?,
            BExpr::Bin(op, ..) => unreachable!("non-logical op {op:?} in boolean expression"),
            BExpr::Not(a) => !self.eval_b(a)?,
        })
    }

    fn exec_block(&mut self, stmts: &[RStmt]) -> Result<(), RunError> {
        for s in stmts {
            self.exec(s)?;
        }
        Ok(())
    }

    fn exec(&mut self, s: &RStmt) -> Result<(), RunError> {
        match s {
            RStmt::AssignI(slot, e) => {
                self.ints[*slot] = self.eval_i(e)?;
            }
            RStmt::AssignF(slot, e) => {
                self.floats[*slot] = self.eval_f(e)?;
            }
            RStmt::AssignB(slot, e) => {
                self.bools[*slot] = self.eval_b(e)?;
            }
            RStmt::StoreI(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_i(val)?;
                let len = self.arrays[*arr].len();
                if i < 0 || i as usize >= len {
                    return Err(self.oob(*arr, i, len));
                }
                if let ArrayVal::Int(a) = &mut self.arrays[*arr] {
                    a[i as usize] = v;
                }
            }
            RStmt::StoreF64(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_f(val)?;
                self.store_f64(*arr, i, v, false)?;
            }
            RStmt::StoreF32(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_f(val)?;
                self.store_f32(*arr, i, v, false)?;
            }
            RStmt::StoreB(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_b(val)?;
                let len = self.arrays[*arr].len();
                if i < 0 || i as usize >= len {
                    return Err(self.oob(*arr, i, len));
                }
                if let ArrayVal::Bool(a) = &mut self.arrays[*arr] {
                    a[i as usize] = v;
                }
            }
            RStmt::StoreAddI(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_i(val)?;
                let len = self.arrays[*arr].len();
                if i < 0 || i as usize >= len {
                    return Err(self.oob(*arr, i, len));
                }
                if let ArrayVal::Int(a) = &mut self.arrays[*arr] {
                    a[i as usize] += v;
                }
            }
            RStmt::StoreAddF64(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_f(val)?;
                self.store_f64(*arr, i, v, true)?;
            }
            RStmt::StoreAddF32(arr, idx, val) => {
                let i = self.eval_i(idx)?;
                let v = self.eval_f(val)?;
                self.store_f32(*arr, i, v, true)?;
            }
            RStmt::For(slot, lo, hi, body) => {
                let lo = self.eval_i(lo)?;
                let hi = self.eval_i(hi)?;
                let mut iv = lo;
                while iv < hi {
                    self.consume_iteration()?;
                    self.ints[*slot] = iv;
                    self.exec_block(body)?;
                    iv += 1;
                }
            }
            RStmt::ParallelFor(pf) => {
                self.exec_parallel_for(pf)?;
            }
            RStmt::While(cond, body) => {
                while self.eval_b(cond)? {
                    self.consume_iteration()?;
                    self.exec_block(body)?;
                }
            }
            RStmt::If(cond, then, els) => {
                if self.eval_b(cond)? {
                    self.exec_block(then)?;
                } else {
                    self.exec_block(els)?;
                }
            }
            RStmt::MemsetI(arr, val) => {
                let v = self.eval_i(val)?;
                if let ArrayVal::Int(a) = &mut self.arrays[*arr] {
                    a.fill(v);
                }
            }
            RStmt::MemsetF64(arr, val) => {
                let v = self.eval_f(val)?;
                if let ArrayVal::F64(a) = &mut self.arrays[*arr] {
                    a.fill(v);
                }
            }
            RStmt::MemsetF32(arr, val) => {
                let v = self.eval_f(val)?;
                if let ArrayVal::F32(a) = &mut self.arrays[*arr] {
                    a.fill(v as f32);
                }
            }
            RStmt::MemsetB(arr, val) => {
                let v = self.eval_b(val)?;
                if let ArrayVal::Bool(a) = &mut self.arrays[*arr] {
                    a.fill(v);
                }
            }
            RStmt::Alloc(arr, ty, len) => {
                let len = self.eval_i(len)?;
                if len < 0 {
                    return Err(RunError::NegativeLength {
                        name: self.array_names[*arr].clone(),
                        len,
                    });
                }
                self.charge_bytes(*arr, len as u64 * elem_bytes(*ty))?;
                self.arrays[*arr] = match ty {
                    ArrayTy::Int => ArrayVal::Int(vec![0; len as usize]),
                    ArrayTy::F64 => ArrayVal::F64(vec![0.0; len as usize]),
                    ArrayTy::F32 => ArrayVal::F32(vec![0.0; len as usize]),
                    ArrayTy::Bool => ArrayVal::Bool(vec![false; len as usize]),
                };
            }
            RStmt::Realloc(arr, len) => {
                let len = self.eval_i(len)?;
                if len < 0 {
                    return Err(RunError::NegativeLength {
                        name: self.array_names[*arr].clone(),
                        len,
                    });
                }
                let len = len as usize;
                let old_len = self.arrays[*arr].len();
                if len > old_len {
                    let ty = self.arrays[*arr].ty();
                    self.charge_bytes(*arr, (len - old_len) as u64 * elem_bytes(ty))?;
                    self.charge_realloc(*arr)?;
                }
                match &mut self.arrays[*arr] {
                    ArrayVal::Int(a) if len > a.len() => a.resize(len, 0),
                    ArrayVal::F64(a) if len > a.len() => a.resize(len, 0.0),
                    ArrayVal::F32(a) if len > a.len() => a.resize(len, 0.0),
                    ArrayVal::Bool(a) if len > a.len() => a.resize(len, false),
                    _ => {}
                }
            }
            RStmt::Sort(arr, lo, hi) => {
                let lo = self.eval_i(lo)?;
                let hi = self.eval_i(hi)?;
                let len = self.arrays[*arr].len();
                if lo < 0 || hi < lo || hi as usize > len {
                    return Err(self.oob(*arr, hi, len));
                }
                if let ArrayVal::Int(a) = &mut self.arrays[*arr] {
                    a[lo as usize..hi as usize].sort_unstable();
                }
            }
            RStmt::MapInit(map, kind, cap) => {
                let cap = self.eval_i(cap)?;
                if cap < 0 {
                    return Err(RunError::NegativeLength {
                        name: self.map_names[*map].clone(),
                        len: cap,
                    });
                }
                let per = map_entry_bytes(*kind);
                self.charge_map_bytes(*map, cap as u64 * per, cap as u64 * per)?;
                let store = match kind {
                    WorkspaceKind::Hash => {
                        MapStore::Hash(HashMap::with_capacity(cap as usize))
                    }
                    _ => MapStore::Sorted(Vec::with_capacity(cap as usize)),
                };
                self.maps[*map] = MapWs { store, charged_entries: cap as u64 };
            }
            RStmt::MapScatter(map, key, val, add) => {
                let k = self.eval_i(key)?;
                let v = self.eval_f(val)?;
                match &self.maps[*map].store {
                    MapStore::Hash(m) if !m.contains_key(&k) => self.charge_map_growth(*map)?,
                    MapStore::Sorted(s) if s.binary_search_by_key(&k, |e| e.0).is_err() => {
                        self.charge_map_growth(*map)?
                    }
                    _ => {}
                }
                match &mut self.maps[*map].store {
                    MapStore::Hash(m) => {
                        let slot = m.entry(k).or_insert(0.0);
                        if *add {
                            *slot += v;
                        } else {
                            *slot = v;
                        }
                    }
                    MapStore::Sorted(s) => match s.binary_search_by_key(&k, |e| e.0) {
                        Ok(i) => {
                            if *add {
                                s[i].1 += v;
                            } else {
                                s[i].1 = v;
                            }
                        }
                        Err(i) => s.insert(i, (k, v)),
                    },
                }
            }
            RStmt::MapDrainSorted(map, key_slot, val_slot, body) => {
                let entries = self.maps[*map].drain_sorted();
                for (k, v) in entries {
                    self.consume_iteration()?;
                    self.ints[*key_slot] = k;
                    self.floats[*val_slot] = v;
                    self.exec_block(body)?;
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn store_f64(&mut self, arr: usize, i: i64, v: f64, accumulate: bool) -> Result<(), RunError> {
        let len = self.arrays[arr].len();
        if i < 0 || i as usize >= len {
            return Err(self.oob(arr, i, len));
        }
        if let ArrayVal::F64(a) = &mut self.arrays[arr] {
            if accumulate {
                a[i as usize] += v;
            } else {
                a[i as usize] = v;
            }
        }
        Ok(())
    }

    #[inline]
    fn store_f32(&mut self, arr: usize, i: i64, v: f64, accumulate: bool) -> Result<(), RunError> {
        let len = self.arrays[arr].len();
        if i < 0 || i as usize >= len {
            return Err(self.oob(arr, i, len));
        }
        if let ArrayVal::F32(a) = &mut self.arrays[arr] {
            if accumulate {
                a[i as usize] += v as f32;
            } else {
                a[i as usize] = v as f32;
            }
        }
        Ok(())
    }

    /// Executes `[clo, chi)` of a parallel loop body serially — the chunk a
    /// worker runs, and also the whole-range fallback when only one thread
    /// is available.
    fn exec_chunk(&mut self, pf: &RParFor, clo: i64, chi: i64) -> Result<(), RunError> {
        let mut iv = clo;
        while iv < chi {
            self.consume_iteration()?;
            self.ints[pf.var] = iv;
            self.exec_block(&pf.body)?;
            iv += 1;
        }
        Ok(())
    }

    fn exec_parallel_for(&mut self, pf: &RParFor) -> Result<(), RunError> {
        let lo = self.eval_i(&pf.lo)?;
        let hi = self.eval_i(&pf.hi)?;
        if hi <= lo {
            return Ok(());
        }
        let trip = (hi - lo) as usize;
        let threads = if self.in_parallel { 1 } else { resolved_threads(pf.threads).min(trip) };
        if let Some(shared) = self.ctl.shared {
            shared.note_workers(threads.max(1) as u64);
        }
        if threads <= 1 {
            return self.exec_chunk(pf, lo, hi);
        }
        self.run_workers(pf, lo, hi, threads)
    }

    /// The multi-threaded path: iterations are split into `threads`
    /// contiguous chunks (OpenMP `schedule(static)`), each worker interprets
    /// its chunk on a full private clone of the machine state, and the
    /// per-worker states are merged back in chunk order so the parent ends
    /// byte-identical to a serial run. Shared arrays merge by bitwise diff
    /// against the pre-loop state (legal schedules write disjoint regions);
    /// private (workspace) arrays are discarded; append-style output (sparse
    /// coordinate lists) is stitched by explicit segment rebasing.
    #[cold]
    #[inline(never)]
    fn run_workers(&mut self, pf: &RParFor, lo: i64, hi: i64, threads: usize) -> Result<(), RunError> {
        let trip = (hi - lo) as usize;
        let per = trip / threads;
        let extra = trip % threads;
        let mut chunks: Vec<(i64, i64)> = Vec::with_capacity(threads);
        let mut start = lo;
        for w in 0..threads {
            let len = (per + usize::from(w < extra)) as i64;
            chunks.push((start, start + len));
            start += len;
        }

        let cancel = self.ctl.cancel;
        let deadline = self.ctl.deadline;
        let parent_bytes = self.budget.total_bytes;

        let results: Vec<Result<WorkerOut, RunError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(clo, chi)| {
                    let mut m = Mach {
                        ints: self.ints.clone(),
                        floats: self.floats.clone(),
                        bools: self.bools.clone(),
                        arrays: self.arrays.clone(),
                        array_names: self.array_names.clone(),
                        // Map workspaces are per-thread by construction: each
                        // worker scatters into and drains its own clone, and
                        // worker maps are discarded at the join (the verifier
                        // denies parallel bodies that scatter without
                        // draining in the same iteration).
                        maps: self.maps.clone(),
                        map_names: self.map_names.clone(),
                        budget: BudgetMeter {
                            iterations_left: self.budget.iterations_left,
                            // Start the fuse at the parent's remaining count
                            // so `iterations_done()` reports exactly what
                            // this worker consumed.
                            max_iterations: self.budget.iterations_left,
                            max_single_bytes: self.budget.max_single_bytes,
                            max_total_bytes: self.budget.max_total_bytes,
                            total_bytes: self.budget.total_bytes,
                            peak_single_bytes: self.budget.peak_single_bytes,
                            peak_map_bytes: self.budget.peak_map_bytes,
                            max_doublings: self.budget.max_doublings,
                            realloc_counts: self.budget.realloc_counts.clone(),
                        },
                        ctl: RunControls { cancel, deadline, shared: None },
                        check_countdown: 0,
                        in_parallel: true,
                    };
                    scope.spawn(move || -> Result<WorkerOut, RunError> {
                        m.exec_chunk(pf, clo, chi)?;
                        Ok(WorkerOut {
                            iterations: m.iterations_done(),
                            grown_bytes: m.budget.total_bytes - parent_bytes,
                            peak_single_bytes: m.budget.peak_single_bytes,
                            peak_map_bytes: m.budget.peak_map_bytes,
                            realloc_counts: m.budget.realloc_counts,
                            ints: m.ints,
                            floats: m.floats,
                            bools: m.bools,
                            arrays: m.arrays,
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });

        // The first error in chunk order wins, matching the serial run's
        // error for deterministic failures; the parent state is untouched
        // (workers ran on clones), so supervised rollback works unchanged.
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(results.len());
        for r in results {
            outs.push(r?);
        }

        // Charge the combined budget use before mutating any parent state.
        let consumed: u64 = outs.iter().map(|o| o.iterations).sum();
        match self.budget.iterations_left.checked_sub(consumed) {
            Some(left) => self.budget.iterations_left = left,
            None => {
                return Err(RunError::BudgetExceeded {
                    resource: BudgetResource::LoopIterations,
                    limit: self.budget.max_iterations,
                    requested: self.iterations_done().saturating_add(consumed),
                    array: None,
                })
            }
        }
        let grown: u64 = outs.iter().map(|o| o.grown_bytes).sum();
        let total = self.budget.total_bytes.saturating_add(grown);
        if total > self.budget.max_total_bytes {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::TotalBytes,
                limit: self.budget.max_total_bytes,
                requested: total,
                array: None,
            });
        }
        self.budget.total_bytes = total;
        for o in &outs {
            self.budget.peak_single_bytes = self.budget.peak_single_bytes.max(o.peak_single_bytes);
            self.budget.peak_map_bytes = self.budget.peak_map_bytes.max(o.peak_map_bytes);
        }
        for o in &outs {
            for (i, &c) in o.realloc_counts.iter().enumerate() {
                let delta = c.saturating_sub(self.budget.realloc_counts[i]);
                // Deltas accumulate without a post-hoc cap check: each
                // worker already enforced the doubling limit individually.
                self.budget.realloc_counts[i] =
                    self.budget.realloc_counts[i].saturating_add(delta);
            }
        }
        self.supervision_check()?;

        // Scalar merge in chunk order: later chunks overwrite, matching the
        // serial run where the last iteration's writes survive. The append
        // counter is excluded — it accumulates across chunks and is rebased
        // below.
        let counter_slot = pf.append.as_ref().map(|a| a.counter);
        let c0 = counter_slot.map(|s| self.ints[s]).unwrap_or(0);
        let int_snap = self.ints.clone();
        let float_snap = self.floats.clone();
        let bool_snap = self.bools.clone();
        for o in &outs {
            for (i, &v) in o.ints.iter().enumerate() {
                if Some(i) != counter_slot && int_snap[i] != v {
                    self.ints[i] = v;
                }
            }
            for (i, &v) in o.floats.iter().enumerate() {
                if float_snap[i].to_bits() != v.to_bits() {
                    self.floats[i] = v;
                }
            }
            for (i, &v) in o.bools.iter().enumerate() {
                if bool_snap[i] != v {
                    self.bools[i] = v;
                }
            }
        }

        // Shared-array merge: bitwise diff against the pre-loop snapshot,
        // applied in chunk order. Private workspaces keep the parent's
        // pristine copies; append arrays are handled by rebasing below.
        let mut skip: Vec<bool> = vec![false; self.arrays.len()];
        for &s in &pf.private {
            skip[s] = true;
        }
        if let Some(a) = &pf.append {
            for &s in &a.data {
                skip[s] = true;
            }
            if let Some(p) = a.pos {
                skip[p] = true;
            }
        }
        let snapshot: Vec<Option<ArrayVal>> = self
            .arrays
            .iter()
            .enumerate()
            .map(|(i, a)| if skip[i] { None } else { Some(a.clone()) })
            .collect();
        for o in &outs {
            for (i, worker) in o.arrays.iter().enumerate() {
                if let Some(snap) = &snapshot[i] {
                    merge_shared(&mut self.arrays[i], snap, worker);
                }
            }
        }

        // Append merge (sparse result rows): worker `w`'s segment
        // `[c0, counter_w)` lands after the segments of workers `0..w`, its
        // `pos` entries shift by the same offset, and the parent counter
        // ends at the total — exactly the serial values.
        if let Some(ap) = &pf.append {
            let mut base = c0;
            for (w, o) in outs.iter().enumerate() {
                let wc = o.ints[ap.counter];
                if wc > c0 {
                    let (src_lo, src_hi) = (c0 as usize, wc as usize);
                    let dst = base as usize;
                    for &slot in &ap.data {
                        append_copy(&mut self.arrays[slot], &o.arrays[slot], src_lo, src_hi, dst);
                    }
                }
                // Rebase the worker's `pos` entries even when it appended
                // nothing: its rows still closed at (its view of) the
                // counter, which maps to `base` in the stitched output.
                if let Some(pos_slot) = ap.pos {
                    let shift = base - c0;
                    let (clo, chi) = chunks[w];
                    if let (ArrayVal::Int(p), ArrayVal::Int(wv)) =
                        (&mut self.arrays[pos_slot], &o.arrays[pos_slot])
                    {
                        for j in (clo + 1)..=chi {
                            let j = j as usize;
                            if j < p.len() && j < wv.len() {
                                p[j] = wv[j] + shift;
                            }
                        }
                    }
                }
                base += (wc - c0).max(0);
            }
            self.ints[ap.counter] = base;
        }
        Ok(())
    }
}

/// What one parallel-loop worker hands back for the merge.
struct WorkerOut {
    iterations: u64,
    grown_bytes: u64,
    peak_single_bytes: u64,
    peak_map_bytes: u64,
    realloc_counts: Vec<u32>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    bools: Vec<bool>,
    arrays: Vec<ArrayVal>,
}

/// Resolves the worker-thread count for a parallel loop: an explicit
/// schedule choice wins, then the `TACO_THREADS` environment variable, then
/// the machine's available parallelism.
fn resolved_threads(explicit: usize) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if let Ok(s) = std::env::var("TACO_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies one worker's writes to a shared array: every element whose bits
/// differ from the pre-loop snapshot was written by that worker and
/// overwrites the parent's. Arrays a worker grew extend the parent first.
fn merge_shared(parent: &mut ArrayVal, snap: &ArrayVal, worker: &ArrayVal) {
    match (parent, snap, worker) {
        (ArrayVal::Int(p), ArrayVal::Int(s), ArrayVal::Int(w)) => {
            if w.len() > p.len() {
                p.resize(w.len(), 0);
            }
            for (i, &wv) in w.iter().enumerate() {
                if s.get(i).copied().unwrap_or(0) != wv {
                    p[i] = wv;
                }
            }
        }
        (ArrayVal::F64(p), ArrayVal::F64(s), ArrayVal::F64(w)) => {
            if w.len() > p.len() {
                p.resize(w.len(), 0.0);
            }
            for (i, &wv) in w.iter().enumerate() {
                if s.get(i).copied().unwrap_or(0.0).to_bits() != wv.to_bits() {
                    p[i] = wv;
                }
            }
        }
        (ArrayVal::F32(p), ArrayVal::F32(s), ArrayVal::F32(w)) => {
            if w.len() > p.len() {
                p.resize(w.len(), 0.0);
            }
            for (i, &wv) in w.iter().enumerate() {
                if s.get(i).copied().unwrap_or(0.0).to_bits() != wv.to_bits() {
                    p[i] = wv;
                }
            }
        }
        (ArrayVal::Bool(p), ArrayVal::Bool(s), ArrayVal::Bool(w)) => {
            if w.len() > p.len() {
                p.resize(w.len(), false);
            }
            for (i, &wv) in w.iter().enumerate() {
                if s.get(i).copied().unwrap_or(false) != wv {
                    p[i] = wv;
                }
            }
        }
        _ => {}
    }
}

/// Copies `worker[src_lo..src_hi]` to `parent[dst..]`, growing the parent as
/// needed — one worker's appended segment of a coordinate or value array.
fn append_copy(parent: &mut ArrayVal, worker: &ArrayVal, src_lo: usize, src_hi: usize, dst: usize) {
    let src_hi = src_hi.min(worker.len());
    if src_hi <= src_lo {
        return;
    }
    let n = src_hi - src_lo;
    match (parent, worker) {
        (ArrayVal::Int(p), ArrayVal::Int(w)) => {
            if p.len() < dst + n {
                p.resize(dst + n, 0);
            }
            p[dst..dst + n].copy_from_slice(&w[src_lo..src_hi]);
        }
        (ArrayVal::F64(p), ArrayVal::F64(w)) => {
            if p.len() < dst + n {
                p.resize(dst + n, 0.0);
            }
            p[dst..dst + n].copy_from_slice(&w[src_lo..src_hi]);
        }
        (ArrayVal::F32(p), ArrayVal::F32(w)) => {
            if p.len() < dst + n {
                p.resize(dst + n, 0.0);
            }
            p[dst..dst + n].copy_from_slice(&w[src_lo..src_hi]);
        }
        (ArrayVal::Bool(p), ArrayVal::Bool(w)) => {
            if p.len() < dst + n {
                p.resize(dst + n, false);
            }
            p[dst..dst + n].copy_from_slice(&w[src_lo..src_hi]);
        }
        _ => {}
    }
}

fn cmp<T: PartialOrd>(op: BinOp, x: &T, y: &T) -> bool {
    match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => unreachable!("non-comparison op in cmp"),
    }
}

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

/// Buffers and scalar inputs bound to a kernel before [`Executable::run`],
/// and outputs read back afterwards.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Binding {
    arrays: HashMap<String, ArrayVal>,
    scalars: HashMap<String, i64>,
    scalar_outputs: HashMap<String, i64>,
}

impl Binding {
    /// Creates an empty binding.
    pub fn new() -> Binding {
        Binding::default()
    }

    /// Binds an integer scalar parameter.
    pub fn set_scalar(&mut self, name: impl Into<String>, v: i64) -> &mut Self {
        self.scalars.insert(name.into(), v);
        self
    }

    /// Binds a double-precision array.
    pub fn set_f64(&mut self, name: impl Into<String>, v: Vec<f64>) -> &mut Self {
        self.arrays.insert(name.into(), ArrayVal::F64(v));
        self
    }

    /// Binds a single-precision array.
    pub fn set_f32(&mut self, name: impl Into<String>, v: Vec<f32>) -> &mut Self {
        self.arrays.insert(name.into(), ArrayVal::F32(v));
        self
    }

    /// Binds an integer array.
    pub fn set_int(&mut self, name: impl Into<String>, v: Vec<i64>) -> &mut Self {
        self.arrays.insert(name.into(), ArrayVal::Int(v));
        self
    }

    /// Binds an integer array from `usize` values (tensor `pos`/`crd`).
    pub fn set_usize(&mut self, name: impl Into<String>, v: &[usize]) -> &mut Self {
        self.arrays.insert(name.into(), ArrayVal::Int(v.iter().map(|x| *x as i64).collect()));
        self
    }

    /// Binds a boolean array.
    pub fn set_bool(&mut self, name: impl Into<String>, v: Vec<bool>) -> &mut Self {
        self.arrays.insert(name.into(), ArrayVal::Bool(v));
        self
    }

    /// Reads back a double-precision array.
    pub fn f64_array(&self, name: &str) -> Option<&[f64]> {
        match self.arrays.get(name) {
            Some(ArrayVal::F64(v)) => Some(v),
            _ => None,
        }
    }

    /// Reads back a single-precision array.
    pub fn f32_array(&self, name: &str) -> Option<&[f32]> {
        match self.arrays.get(name) {
            Some(ArrayVal::F32(v)) => Some(v),
            _ => None,
        }
    }

    /// Reads back an integer array.
    pub fn int_array(&self, name: &str) -> Option<&[i64]> {
        match self.arrays.get(name) {
            Some(ArrayVal::Int(v)) => Some(v),
            _ => None,
        }
    }

    /// Reads back an integer array as `usize` values.
    ///
    /// Returns `None` if the array is missing, has the wrong type, or holds a
    /// negative value (a malformed kernel output, never a valid `pos`/`crd`).
    ///
    /// Unlike the other accessors this returns an owned `Vec`: integer
    /// buffers are stored as `i64` and a `usize` view cannot be borrowed
    /// from them. Hot paths should use [`Binding::int_array`] and convert
    /// elements as they are consumed instead of materializing a copy.
    pub fn usize_array(&self, name: &str) -> Option<Vec<usize>> {
        self.int_array(name)?.iter().map(|x| usize::try_from(*x).ok()).collect()
    }

    /// Reads the final value of a kernel scalar output.
    pub fn scalar_output(&self, name: &str) -> Option<i64> {
        self.scalar_outputs.get(name).copied()
    }

    /// Removes and returns a bound array.
    pub fn take(&mut self, name: &str) -> Option<ArrayVal> {
        self.arrays.remove(name)
    }

    /// Borrows a bound array of any element type. Execution backends
    /// outside this crate (the native backend's marshalling layer) use
    /// this to move buffers without committing to an element type.
    pub fn array(&self, name: &str) -> Option<&ArrayVal> {
        self.arrays.get(name)
    }

    /// Binds (or replaces) an array of any element type.
    pub fn set_array(&mut self, name: impl Into<String>, v: ArrayVal) -> &mut Self {
        self.arrays.insert(name.into(), v);
        self
    }

    /// Reads a bound scalar parameter.
    pub fn scalar(&self, name: &str) -> Option<i64> {
        self.scalars.get(name).copied()
    }

    /// Iterates every bound scalar parameter as `(name, value)` pairs.
    /// Cost-model consumers use this to build a concrete evaluation
    /// environment for symbolic bounds at bind time.
    pub fn scalar_entries(&self) -> impl Iterator<Item = (&str, i64)> {
        self.scalars.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates every bound array as `(name, length)` pairs, regardless of
    /// element type. Pairs with [`Binding::scalar_entries`] for bind-time
    /// evaluation of symbolic cost bounds that mention `len(array)` atoms.
    pub fn array_len_entries(&self) -> impl Iterator<Item = (&str, usize)> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), v.len()))
    }

    /// Commits a kernel scalar output, as a successful run does. External
    /// execution backends publish their scalar results through this.
    pub fn set_scalar_output(&mut self, name: impl Into<String>, v: i64) -> &mut Self {
        self.scalar_outputs.insert(name.into(), v);
        self
    }

    /// Records the pre-run state of the named arrays (present or absent)
    /// for transactional rollback.
    pub(crate) fn snapshot<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
    ) -> Vec<(String, Option<ArrayVal>)> {
        names.map(|n| (n.to_string(), self.arrays.get(n).cloned())).collect()
    }

    /// Restores a snapshot taken by [`Binding::snapshot`], byte-identically.
    pub(crate) fn restore(&mut self, snapshot: Vec<(String, Option<ArrayVal>)>) {
        for (name, val) in snapshot {
            match val {
                Some(v) => {
                    self.arrays.insert(name, v);
                }
                None => {
                    self.arrays.remove(&name);
                }
            }
        }
    }
}

/// A compiled kernel ready to run against a [`Binding`].
///
/// The compiled statement tree and metadata tables are reference-counted
/// (`Arc`), so cloning an `Executable` is cheap and the same compiled kernel
/// can be shared across threads — `Executable` is `Send + Sync`, and a run
/// borrows it immutably.
#[derive(Debug, Clone)]
pub struct Executable {
    pub(crate) name: String,
    pub(crate) scalar_params: Arc<Vec<(String, usize)>>,
    pub(crate) array_params: Arc<Vec<(String, usize, ArrayTy, ParamKind)>>,
    pub(crate) scalar_outputs: Arc<Vec<(String, usize)>>,
    pub(crate) array_names: Arc<Vec<String>>,
    pub(crate) map_names: Arc<Vec<String>>,
    pub(crate) n_int: usize,
    pub(crate) n_float: usize,
    pub(crate) n_bool: usize,
    pub(crate) body: Arc<Vec<RStmt>>,
}

impl Executable {
    /// Type-checks and slot-resolves a kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for unknown names, duplicate declarations,
    /// or type mismatches.
    pub fn compile(kernel: &Kernel) -> Result<Executable, CompileError> {
        let mut c = Compiler {
            scopes: vec![HashMap::new()],
            arrays: HashMap::new(),
            array_names: Vec::new(),
            maps: HashMap::new(),
            map_names: Vec::new(),
            n_int: 0,
            n_float: 0,
            n_bool: 0,
        };

        let mut scalar_params = Vec::new();
        for p in &kernel.scalar_params {
            let slot = c.declare(p, ScalarTy::Int)?;
            scalar_params.push((p.clone(), slot));
        }
        let mut array_params = Vec::new();
        for p in &kernel.array_params {
            if c.arrays.contains_key(&p.name) {
                return Err(CompileError::Duplicate(p.name.clone()));
            }
            let slot = c.declare_array(&p.name, p.ty)?;
            array_params.push((p.name.clone(), slot, p.ty, p.kind));
        }

        // The kernel body shares the top-level scope so that scalar outputs
        // declared there remain visible to the caller.
        let body = c.block_in_current_scope(&kernel.body)?;

        let mut scalar_outputs = Vec::new();
        for name in &kernel.scalar_outputs {
            match c.scopes[0].get(name) {
                Some((ScalarTy::Int, slot)) => scalar_outputs.push((name.clone(), *slot)),
                _ => return Err(CompileError::BadScalarOutput(name.clone())),
            }
        }

        Ok(Executable {
            name: kernel.name.clone(),
            scalar_params: Arc::new(scalar_params),
            array_params: Arc::new(array_params),
            scalar_outputs: Arc::new(scalar_outputs),
            array_names: Arc::new(c.array_names),
            map_names: Arc::new(c.map_names),
            n_int: c.n_int,
            n_float: c.n_float,
            n_bool: c.n_bool,
            body: Arc::new(body),
        })
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the array parameters the kernel may write (`Output` and
    /// `InOut`); the arrays a transactional run must snapshot. Lowered
    /// kernels never store into `Input` parameters.
    pub fn writable_arrays(&self) -> impl Iterator<Item = &str> {
        self.array_params
            .iter()
            .filter(|(_, _, _, kind)| *kind != ParamKind::Input)
            .map(|(name, ..)| name.as_str())
    }

    /// Runs the kernel against bound buffers. Parameter arrays are moved
    /// into the machine and moved back afterwards, so repeated runs against
    /// the same binding do not reallocate. Scalar outputs become readable
    /// via [`Binding::scalar_output`].
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] for missing/mistyped bindings, out-of-bounds
    /// accesses or negative allocation lengths.
    pub fn run(&self, binding: &mut Binding) -> Result<(), RunError> {
        self.run_with_budget(binding, &ResourceBudget::unlimited())
    }

    /// Runs the kernel like [`Executable::run`], but enforces `budget`:
    /// allocations, realloc growth and loop iterations are metered, and the
    /// first violation aborts the run with [`RunError::BudgetExceeded`].
    pub fn run_with_budget(
        &self,
        binding: &mut Binding,
        budget: &ResourceBudget,
    ) -> Result<(), RunError> {
        self.run_controlled(binding, budget, RunControls::default())
    }

    /// The full-featured run loop: budget metering plus the supervision
    /// hooks (cancel flag, deadline, progress publication) used by
    /// [`ExecSession`](crate::ExecSession).
    ///
    /// Binding errors (missing or mistyped parameters) are detected before
    /// any array is moved out of the binding, so they leave it untouched.
    pub(crate) fn run_controlled(
        &self,
        binding: &mut Binding,
        budget: &ResourceBudget,
        ctl: RunControls<'_>,
    ) -> Result<(), RunError> {
        let mut mach = Mach {
            ints: vec![0; self.n_int],
            floats: vec![0.0; self.n_float],
            bools: vec![false; self.n_bool],
            arrays: self.array_names.iter().map(|_| ArrayVal::empty(ArrayTy::Int)).collect(),
            array_names: self.array_names.clone(),
            maps: self.map_names.iter().map(|_| MapWs::default()).collect(),
            map_names: self.map_names.clone(),
            budget: BudgetMeter::new(budget, self.array_names.len()),
            ctl,
            check_countdown: 0,
            in_parallel: false,
        };
        for (name, slot) in self.scalar_params.iter() {
            let v = *binding
                .scalars
                .get(name)
                .ok_or_else(|| RunError::MissingScalar(name.clone()))?;
            mach.ints[*slot] = v;
        }
        // Validate every array parameter before moving any of them, so a
        // missing or mistyped binding fails with the binding fully intact.
        for (name, _, ty, _) in self.array_params.iter() {
            match binding.arrays.get(name) {
                None => return Err(RunError::MissingArray(name.clone())),
                Some(v) if v.ty() != *ty => {
                    return Err(RunError::WrongArrayType { name: name.clone(), expected: *ty })
                }
                Some(_) => {}
            }
        }
        for (name, slot, _, _) in self.array_params.iter() {
            let v = binding.arrays.remove(name).expect("validated above");
            mach.arrays[*slot] = v;
        }

        let result = mach.exec_block(&self.body);

        // Return parameter arrays to the binding even on error so callers
        // can inspect partial state (supervised runs roll writable arrays
        // back from a snapshot on top of this).
        for (name, slot, _, _) in self.array_params.iter() {
            let v = std::mem::replace(&mut mach.arrays[*slot], ArrayVal::empty(ArrayTy::Int));
            binding.arrays.insert(name.clone(), v);
        }
        // Publish final counters so reports reflect the whole run.
        if let Some(shared) = mach.ctl.shared {
            shared.iterations.store(mach.iterations_done(), Ordering::Relaxed);
            shared.allocated_bytes.store(mach.budget.total_bytes, Ordering::Relaxed);
            shared.note_peaks(mach.budget.peak_single_bytes, mach.budget.peak_map_bytes);
        }
        result?;

        for (name, slot) in self.scalar_outputs.iter() {
            binding.scalar_outputs.insert(name.clone(), mach.ints[*slot]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Param;

    fn run_kernel(k: &Kernel, b: &mut Binding) {
        let exe = Executable::compile(k).expect("compiles");
        exe.run(b).expect("runs");
    }

    #[test]
    fn dot_product() {
        let k = Kernel::new("dot")
            .scalar_param("n")
            .array_param(Param::input("x", ArrayTy::F64))
            .array_param(Param::input("y", ArrayTy::F64))
            .array_param(Param::output("out", ArrayTy::F64))
            .body(vec![
                Stmt::store("out", Expr::int(0), Expr::float(0.0)),
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::store_add(
                        "out",
                        Expr::int(0),
                        Expr::load("x", Expr::var("i")) * Expr::load("y", Expr::var("i")),
                    )],
                ),
            ]);
        let mut b = Binding::new();
        b.set_scalar("n", 3);
        b.set_f64("x", vec![1.0, 2.0, 3.0]);
        b.set_f64("y", vec![4.0, 5.0, 6.0]);
        b.set_f64("out", vec![0.0]);
        run_kernel(&k, &mut b);
        assert_eq!(b.f64_array("out").unwrap(), &[32.0]);
    }

    #[test]
    fn while_and_if_merge_two_sorted_lists() {
        // Count common elements of two sorted int arrays — the shape of a
        // coiteration merge loop.
        let k = Kernel::new("merge")
            .scalar_param("na")
            .scalar_param("nb")
            .array_param(Param::input("a", ArrayTy::Int))
            .array_param(Param::input("b", ArrayTy::Int))
            .array_param(Param::output("count", ArrayTy::Int))
            .body(vec![
                Stmt::DeclInt("pa".into(), Expr::int(0)),
                Stmt::DeclInt("pb".into(), Expr::int(0)),
                Stmt::store("count", Expr::int(0), Expr::int(0)),
                Stmt::while_(
                    Expr::var("pa").lt(Expr::var("na")).and(Expr::var("pb").lt(Expr::var("nb"))),
                    vec![
                        Stmt::DeclInt("va".into(), Expr::load("a", Expr::var("pa"))),
                        Stmt::DeclInt("vb".into(), Expr::load("b", Expr::var("pb"))),
                        Stmt::DeclInt("v".into(), Expr::var("va").min(Expr::var("vb"))),
                        Stmt::if_(
                            Expr::var("va").eq(Expr::var("v")).and(Expr::var("vb").eq(Expr::var("v"))),
                            vec![Stmt::store_add("count", Expr::int(0), Expr::int(1))],
                        ),
                        Stmt::if_(
                            Expr::var("va").eq(Expr::var("v")),
                            vec![Stmt::incr("pa")],
                        ),
                        Stmt::if_(
                            Expr::var("vb").eq(Expr::var("v")),
                            vec![Stmt::incr("pb")],
                        ),
                    ],
                ),
            ]);
        let mut b = Binding::new();
        b.set_scalar("na", 4).set_scalar("nb", 3);
        b.set_int("a", vec![1, 3, 5, 7]);
        b.set_int("b", vec![3, 4, 7]);
        b.set_int("count", vec![0]);
        run_kernel(&k, &mut b);
        assert_eq!(b.int_array("count").unwrap(), &[2]);
    }

    #[test]
    fn alloc_realloc_sort_and_scalar_output() {
        let k = Kernel::new("assemble")
            .array_param(Param::input("src", ArrayTy::Int))
            .array_param(Param::inout("dst", ArrayTy::Int))
            .scalar_param("n")
            .scalar_output("size")
            .body(vec![
                Stmt::DeclInt("size".into(), Expr::int(0)),
                Stmt::Alloc { arr: "tmp".into(), ty: ArrayTy::Int, len: Expr::int(2) },
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![
                        Stmt::if_(
                            Expr::len("tmp").le(Expr::var("size")),
                            vec![Stmt::Realloc {
                                arr: "tmp".into(),
                                len: Expr::var("size") * Expr::int(2),
                            }],
                        ),
                        Stmt::store("tmp", Expr::var("size"), Expr::load("src", Expr::var("i"))),
                        Stmt::incr("size"),
                    ],
                ),
                Stmt::Sort { arr: "tmp".into(), lo: Expr::int(0), hi: Expr::var("size") },
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("size"),
                    vec![Stmt::store("dst", Expr::var("i"), Expr::load("tmp", Expr::var("i")))],
                ),
            ]);
        let mut b = Binding::new();
        b.set_scalar("n", 5);
        b.set_int("src", vec![5, 1, 4, 2, 3]);
        b.set_int("dst", vec![0; 5]);
        run_kernel(&k, &mut b);
        assert_eq!(b.int_array("dst").unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(b.scalar_output("size"), Some(5));
    }

    #[test]
    fn f32_workspace_mixed_precision() {
        let k = Kernel::new("mixed")
            .array_param(Param::input("x", ArrayTy::F64))
            .array_param(Param::inout("w", ArrayTy::F32))
            .array_param(Param::output("y", ArrayTy::F64))
            .scalar_param("n")
            .body(vec![
                Stmt::Memset { arr: "w".into(), val: Expr::float(0.0) },
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::store_add("w", Expr::var("i"), Expr::load("x", Expr::var("i")))],
                ),
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::store("y", Expr::var("i"), Expr::load("w", Expr::var("i")))],
                ),
            ]);
        let mut b = Binding::new();
        b.set_scalar("n", 2);
        b.set_f64("x", vec![1.5, 2.5]);
        b.set_f32("w", vec![9.0, 9.0]);
        b.set_f64("y", vec![0.0, 0.0]);
        run_kernel(&k, &mut b);
        assert_eq!(b.f64_array("y").unwrap(), &[1.5, 2.5]);
    }

    #[test]
    fn shadowing_in_sibling_scopes() {
        // Two sibling loops both declare `j`.
        let k = Kernel::new("shadow")
            .array_param(Param::output("out", ArrayTy::Int))
            .body(vec![
                Stmt::for_("j", Expr::int(0), Expr::int(3), vec![Stmt::store(
                    "out",
                    Expr::int(0),
                    Expr::var("j"),
                )]),
                Stmt::for_("j", Expr::int(5), Expr::int(7), vec![Stmt::store(
                    "out",
                    Expr::int(1),
                    Expr::var("j"),
                )]),
            ]);
        let mut b = Binding::new();
        b.set_int("out", vec![0, 0]);
        run_kernel(&k, &mut b);
        assert_eq!(b.int_array("out").unwrap(), &[2, 6]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let k = Kernel::new("oob")
            .array_param(Param::output("x", ArrayTy::F64))
            .body(vec![Stmt::store("x", Expr::int(7), Expr::float(1.0))]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        b.set_f64("x", vec![0.0; 3]);
        let err = exe.run(&mut b).unwrap_err();
        assert_eq!(err, RunError::OutOfBounds { name: "x".into(), idx: 7, len: 3 });
    }

    #[test]
    fn type_errors_are_reported() {
        // float + bool is a type error
        let k = Kernel::new("bad").body(vec![Stmt::DeclFloat(
            "x".into(),
            Expr::float(1.0) + Expr::bool(true),
        )]);
        assert!(matches!(
            Executable::compile(&k),
            Err(CompileError::TypeMismatch { .. })
        ));

        // unknown variable
        let k2 = Kernel::new("bad2").body(vec![Stmt::assign("nope", Expr::int(0))]);
        assert_eq!(Executable::compile(&k2).unwrap_err(), CompileError::UnknownVar("nope".into()));

        // unknown array
        let k3 = Kernel::new("bad3").body(vec![Stmt::store("m", Expr::int(0), Expr::int(0))]);
        assert_eq!(Executable::compile(&k3).unwrap_err(), CompileError::UnknownArray("m".into()));
    }

    #[test]
    fn missing_binding_is_reported() {
        let k = Kernel::new("k")
            .scalar_param("n")
            .array_param(Param::input("x", ArrayTy::F64));
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        assert_eq!(exe.run(&mut b).unwrap_err(), RunError::MissingScalar("n".into()));
        b.set_scalar("n", 0);
        assert_eq!(exe.run(&mut b).unwrap_err(), RunError::MissingArray("x".into()));
        b.set_int("x", vec![]);
        assert_eq!(
            exe.run(&mut b).unwrap_err(),
            RunError::WrongArrayType { name: "x".into(), expected: ArrayTy::F64 }
        );
    }

    #[test]
    fn iteration_fuse_stops_infinite_loop() {
        let k = Kernel::new("spin").body(vec![
            Stmt::DeclInt("i".into(), Expr::int(0)),
            Stmt::while_(Expr::var("i").ge(Expr::int(0)), vec![Stmt::incr("i")]),
        ]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        let budget = ResourceBudget::unlimited().with_max_loop_iterations(1000);
        let err = exe.run_with_budget(&mut b, &budget).unwrap_err();
        assert_eq!(
            err,
            RunError::BudgetExceeded {
                resource: BudgetResource::LoopIterations,
                limit: 1000,
                requested: 1001,
                array: None,
            }
        );
    }

    #[test]
    fn fuse_counts_nested_for_iterations() {
        let k = Kernel::new("nest").body(vec![Stmt::for_(
            "i",
            Expr::int(0),
            Expr::int(10),
            vec![Stmt::for_("j", Expr::int(0), Expr::int(10), vec![])],
        )]);
        let exe = Executable::compile(&k).unwrap();
        // 10 outer + 100 inner iterations: a fuse of 110 just fits.
        let mut b = Binding::new();
        exe.run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_loop_iterations(110))
            .expect("exactly at the fuse");
        let err = exe
            .run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_loop_iterations(109))
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::BudgetExceeded { resource: BudgetResource::LoopIterations, .. }
        ));
    }

    #[test]
    fn workspace_byte_limit_blocks_large_alloc() {
        let k = Kernel::new("big").body(vec![Stmt::Alloc {
            arr: "w".into(),
            ty: ArrayTy::F64,
            len: Expr::int(1000),
        }]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        exe.run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_workspace_bytes(8000))
            .expect("8000 bytes fit exactly");
        let err = exe
            .run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_workspace_bytes(7999))
            .unwrap_err();
        assert_eq!(
            err,
            RunError::BudgetExceeded {
                resource: BudgetResource::WorkspaceBytes,
                limit: 7999,
                requested: 8000,
                array: Some("w".into()),
            }
        );
    }

    #[test]
    fn total_byte_limit_sums_allocations() {
        let k = Kernel::new("two").body(vec![
            Stmt::Alloc { arr: "a".into(), ty: ArrayTy::Int, len: Expr::int(100) },
            Stmt::Alloc { arr: "b".into(), ty: ArrayTy::Int, len: Expr::int(100) },
        ]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        exe.run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_total_bytes(1600))
            .expect("both allocations fit");
        let err = exe
            .run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_total_bytes(1200))
            .unwrap_err();
        assert_eq!(
            err,
            RunError::BudgetExceeded {
                resource: BudgetResource::TotalBytes,
                limit: 1200,
                requested: 1600,
                array: Some("b".into()),
            }
        );
    }

    #[test]
    fn realloc_doubling_cap() {
        // Doubles `w` from 1 element 5 times: reallocs to 2, 4, 8, 16, 32.
        let k = Kernel::new("grow").body(vec![
            Stmt::Alloc { arr: "w".into(), ty: ArrayTy::Int, len: Expr::int(1) },
            Stmt::for_(
                "i",
                Expr::int(0),
                Expr::int(5),
                vec![Stmt::Realloc { arr: "w".into(), len: Expr::len("w") * Expr::int(2) }],
            ),
        ]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        exe.run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_realloc_doublings(5))
            .expect("five doublings allowed");
        let err = exe
            .run_with_budget(&mut b, &ResourceBudget::unlimited().with_max_realloc_doublings(4))
            .unwrap_err();
        assert_eq!(
            err,
            RunError::BudgetExceeded {
                resource: BudgetResource::ReallocDoublings,
                limit: 4,
                requested: 5,
                array: Some("w".into()),
            }
        );
    }

    #[test]
    fn unlimited_budget_matches_run() {
        let k = Kernel::new("sum")
            .scalar_param("n")
            .array_param(Param::output("out", ArrayTy::Int))
            .body(vec![
                Stmt::store("out", Expr::int(0), Expr::int(0)),
                Stmt::for_(
                    "i",
                    Expr::int(0),
                    Expr::var("n"),
                    vec![Stmt::store_add("out", Expr::int(0), Expr::var("i"))],
                ),
            ]);
        let exe = Executable::compile(&k).unwrap();
        let mut b1 = Binding::new();
        b1.set_scalar("n", 100).set_int("out", vec![0]);
        exe.run(&mut b1).unwrap();
        let mut b2 = Binding::new();
        b2.set_scalar("n", 100).set_int("out", vec![0]);
        exe.run_with_budget(&mut b2, &ResourceBudget::unlimited()).unwrap();
        assert_eq!(b1.int_array("out"), b2.int_array("out"));
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_panic() {
        let k = Kernel::new("div")
            .scalar_param("d")
            .array_param(Param::output("out", ArrayTy::Int))
            .body(vec![Stmt::store("out", Expr::int(0), Expr::int(1) / Expr::var("d"))]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        b.set_scalar("d", 0).set_int("out", vec![0]);
        assert_eq!(exe.run(&mut b).unwrap_err(), RunError::DivisionByZero);
    }

    #[test]
    fn integer_overflow_wraps_instead_of_panicking() {
        let k = Kernel::new("wrap")
            .scalar_param("x")
            .array_param(Param::output("out", ArrayTy::Int))
            .body(vec![Stmt::store("out", Expr::int(0), Expr::var("x") + Expr::var("x"))]);
        let exe = Executable::compile(&k).unwrap();
        let mut b = Binding::new();
        b.set_scalar("x", i64::MAX).set_int("out", vec![0]);
        exe.run(&mut b).unwrap();
        assert_eq!(b.int_array("out").unwrap(), &[i64::MAX.wrapping_add(i64::MAX)]);
    }

    #[test]
    fn negative_usize_array_returns_none() {
        let mut b = Binding::new();
        b.set_int("p", vec![0, 3, -1]);
        assert_eq!(b.usize_array("p"), None);
        b.set_int("q", vec![0, 3, 7]);
        assert_eq!(b.usize_array("q"), Some(vec![0, 3, 7]));
    }

    #[test]
    fn int_float_promotion() {
        let k = Kernel::new("promote")
            .array_param(Param::output("y", ArrayTy::F64))
            .body(vec![Stmt::store(
                "y",
                Expr::int(0),
                Expr::int(3) * Expr::float(1.5),
            )]);
        let mut b = Binding::new();
        b.set_f64("y", vec![0.0]);
        run_kernel(&k, &mut b);
        assert_eq!(b.f64_array("y").unwrap(), &[4.5]);
    }
}
